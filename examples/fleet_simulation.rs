//! The paper's 100 000-machine deployment simulation (Figures 10–11).
//!
//! Runs every protocol of §4.3 against the sound-clustering scenario
//! (20 clusters × 5 000 machines, one prevalent problem at 15 % of the
//! fleet, two non-prevalent ones) and prints the per-cluster latency
//! CDFs plus the upgrade-overhead comparison.
//!
//! Run with: `cargo run --release --example fleet_simulation`

use mirage::scenarios::deployment::{figure10, figure11, problematic_machines};

fn main() {
    println!("Figure 10 — sound clustering, 100,000 machines, 20 clusters");
    println!("(download 5, test 10, fix 500 time units; threshold 100%)\n");
    for curve in figure10() {
        println!(
            "{:<22} overhead {:>6}  complete at {:>5}",
            curve.label,
            curve.overhead,
            curve.completion.map(|t| t.to_string()).unwrap_or_default()
        );
        let step = (curve.cdf.len() / 6).max(1);
        for (i, (t, f)) in curve.cdf.iter().enumerate() {
            if i % step == 0 || i + 1 == curve.cdf.len() {
                println!("    t={t:>5}  {:>4.0}% of clusters", f * 100.0);
            }
        }
    }

    println!("\nUpgrade overhead (paper formulas):");
    println!("  NoStaging        = m      = {}", problematic_machines());
    println!("  Balanced/Random  = p      = 3");
    println!("  FrontLoading     = p + Cp = 5");

    println!("\nFigure 11 — one misplaced machine (imperfect clustering)");
    for curve in figure11() {
        println!(
            "{:<24} overhead {:>6}  complete at {:>5}",
            curve.label,
            curve.overhead,
            curve.completion.map(|t| t.to_string()).unwrap_or_default()
        );
    }
    println!("\nEvery protocol pays exactly one extra failed test for the misplaced machine.");
}
