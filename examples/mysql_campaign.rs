//! The paper's MySQL 4→5 upgrade as a full Mirage campaign.
//!
//! Rebuilds the 21-machine Table 2 fleet, clusters it with the
//! vendor-supplied `my.cnf` parsers (the Figure 6 configuration), and
//! deploys the MySQL 5.0.27 upgrade — which carries the real
//! PHP-breaks-on-libmysqlclient-5 problem \[24\] and the `.my.cnf`
//! legacy-configuration problem — with the Balanced protocol. Watch the
//! staging confine each problem to a single representative, the vendor
//! ship two corrected releases, and the whole fleet converge.
//!
//! Run with: `cargo run --example mysql_campaign`

use mirage::cluster::ClusteringScore;
use mirage::core::{Campaign, ProtocolChoice, RolloutPlan, RolloutStrategy};
use mirage::scenarios::mysql::MySqlScenario;

fn main() {
    let scenario = MySqlScenario::with_full_parsers();
    let behavior = scenario.behavior.clone();
    let upgrade = scenario.upgrade.clone();

    println!("Table 2 fleet: {} machines", scenario.agents.len());

    // Cluster with full vendor parsers (Figure 6).
    let inputs = scenario.fleet_inputs();
    let clustering = scenario.vendor.cluster(&inputs);
    let score = ClusteringScore::compute(&clustering, &behavior);
    println!(
        "Figure 6 clustering: {} clusters, C = {}, w = {} (paper: 15, 12, 0)\n",
        score.clusters, score.unnecessary_clusters, score.misplaced
    );
    for cluster in &clustering.clusters {
        let mark = cluster
            .members
            .iter()
            .filter_map(|m| behavior.get(m))
            .next()
            .map(|p| format!("  <-- {p}"))
            .unwrap_or_default();
        println!("  {}: {:?}{mark}", cluster.id, cluster.members);
    }

    // Deploy MySQL 5 with the Balanced protocol.
    let mut campaign = Campaign::new(scenario.vendor, scenario.agents);
    let plan = RolloutPlan::new(
        mirage::deploy::DeployPlan::from_clustering(&clustering, 1),
        RolloutStrategy::Staged { waves: 1 },
    );
    let result = campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);

    println!("\nDeployment:");
    println!(
        "  releases: {:?}",
        result
            .releases
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    println!(
        "  upgrade overhead: {} machines tested a faulty release",
        result.failed_validations
    );
    println!(
        "  converged: {} / {}",
        result.integrated.len(),
        plan.deploy.machine_count()
    );

    println!("\nVendor's deduplicated problem view:");
    for group in campaign.urr.failure_groups() {
        println!(
            "  {} ({} report(s), clusters {:?})",
            group.signature, group.count, group.clusters
        );
    }

    assert!(result.converged(21));
    // Two problems, each discovered on exactly one representative; the
    // PHP problem affects several clusters but Balanced stops at the
    // first.
    assert!(result.failed_validations <= 3);
    println!(
        "\nOK: the fleet converged on MySQL {}.",
        result.releases.last().unwrap()
    );
}
