//! Regenerates the §2 survey characterisation (Figures 1–3).
//!
//! Aggregates the 50-respondent dataset and prints every headline number
//! the paper reports, next to the paper's value.
//!
//! Run with: `cargo run --example survey_report`

use mirage::scenarios::survey;

fn main() {
    let rows = survey::dataset();
    let stats = survey::stats(&rows);

    println!(
        "Survey of {} system administrators (paper §2)\n",
        stats.respondents
    );

    println!("Demographics:");
    println!(
        "  >5 years experience:   {:>4.0}%   (paper: 82%)",
        stats.experienced_fraction * 100.0
    );
    println!(
        "  >20 machines managed:  {:>4.0}%   (paper: 78%)",
        stats.large_fleet_fraction * 100.0
    );
    println!(
        "  Linux/UNIX {}, Windows {}, macOS {}   (paper: 48 / 29 / 12)",
        stats.linux_admins, stats.windows_admins, stats.mac_admins
    );

    println!("\nFigure 1 — upgrade frequencies:");
    for (freq, by_exp) in survey::figure1(&rows) {
        let total: usize = by_exp.iter().sum();
        if total > 0 {
            println!("  {:<28} {:>2}  {}", freq.label(), total, "#".repeat(total));
        }
    }
    println!(
        "  => upgrade monthly or more: {:.0}% (paper: 90%)",
        stats.monthly_or_more * 100.0
    );

    let (security, bug_fix, user_request, new_feature) = survey::reason_rank_averages(&rows);
    println!("\nReasons for upgrades (average rank, 1 = most important):");
    println!("  security {security:.1}, bug fix {bug_fix:.1}, user request {user_request:.1}, new feature {new_feature:.1}");
    println!("  (paper: 1.6 / 2.2 / 3.3 / 3.5)");

    println!("\nFigure 2 — reluctance to upgrade:");
    let fig2 = survey::figure2(&rows);
    println!(
        "  refrain+strategy {}, refrain+none {}, eager+strategy {}, eager+none {}",
        fig2[&(true, true)],
        fig2[&(true, false)],
        fig2[&(false, true)],
        fig2[&(false, false)]
    );

    println!("\nFigure 3 — perceived upgrade failure rate:");
    for (pct, count) in survey::figure3(&rows) {
        if count > 0 {
            println!("  {pct:>3}%: {:<2} {}", count, "#".repeat(count));
        }
    }
    println!(
        "  => average {:.1}%, median {:.0}%, 5-10% bucket {:.0}% (paper: 8.6 / 5 / 66)",
        stats.failure_rate_avg,
        stats.failure_rate_median,
        stats.failure_rate_5_to_10 * 100.0
    );

    let causes = survey::cause_rank_averages(&rows);
    println!("\nCauses of failed upgrades (average rank):");
    println!(
        "  broken dependency {:.1}, removed behaviour {:.1}, buggy upgrade {:.1}, legacy config {:.1}, improper packaging {:.1}",
        causes[0], causes[1], causes[2], causes[3], causes[4]
    );
    println!("  (paper: 2.5 / 2.5 / 2.6 / 3.1 / 3.2)");

    println!("\nOther headlines:");
    println!(
        "  problems past testing {:.0}%, catastrophic {:.0}%, report to vendor {:.0}%, OS packaging {:.0}%",
        stats.problems_past_testing * 100.0,
        stats.catastrophic * 100.0,
        stats.reports_to_vendor * 100.0,
        stats.uses_os_packaging * 100.0
    );
    println!("  (paper: 48% / 18% / 50% / 86%)");
}
