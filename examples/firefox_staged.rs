//! The Firefox 2.0 upgrade on the Table 3 fleet, with and without
//! vendor parsers.
//!
//! Demonstrates the paper's §4.2.2 argument: content-based fingerprints
//! cannot tell a relevant preference (Java disabled) from irrelevant
//! noise (an update timestamp), so the clustering diameter becomes a
//! blind knob — d = 4 happens to be ideal, d = 6 mixes problematic
//! machines with healthy ones. The vendor's preferences parser makes
//! the clustering sound by construction, and the FrontLoading campaign
//! then confines the legacy-preferences problem to one representative.
//!
//! Run with: `cargo run --example firefox_staged`

use mirage::cluster::ClusteringScore;
use mirage::core::{Campaign, ProtocolChoice, RolloutPlan, RolloutStrategy};
use mirage::deploy::DeployPlan;
use mirage::scenarios::firefox::FirefoxScenario;

fn main() {
    // Without vendor parsers the diameter is a gamble.
    for d in [4usize, 6] {
        let scenario = FirefoxScenario::with_mirage_parsers(d);
        let (clustering, score) = scenario.cluster_and_score();
        println!("Mirage parsers only, diameter {d}:");
        for cluster in &clustering.clusters {
            println!("  {}: {:?}", cluster.id, cluster.members);
        }
        println!(
            "  -> {} clusters, C = {}, w = {}\n",
            score.clusters, score.unnecessary_clusters, score.misplaced
        );
    }

    // With the vendor's prefs parser the clustering is sound.
    let scenario = FirefoxScenario::with_full_parsers();
    let behavior = scenario.behavior.clone();
    let upgrade = scenario.upgrade.clone();
    let inputs = scenario.fleet_inputs();
    let clustering = scenario.vendor.cluster(&inputs);
    let score = ClusteringScore::compute(&clustering, &behavior);
    println!("Vendor prefs parser (Figure 8):");
    for cluster in &clustering.clusters {
        let mark = cluster
            .members
            .iter()
            .filter_map(|m| behavior.get(m))
            .next()
            .map(|p| format!("  <-- {p}"))
            .unwrap_or_default();
        println!("  {}: {:?}{mark}", cluster.id, cluster.members);
    }
    println!(
        "  -> {} clusters, C = {}, w = {} (paper: 4, 2, 0)\n",
        score.clusters, score.unnecessary_clusters, score.misplaced
    );

    // Deploy Firefox 2.0 with FrontLoading: every representative tests
    // first, so the vendor learns about the legacy-prefs problem before
    // any non-representative is disturbed.
    let plan = RolloutPlan::new(
        DeployPlan::from_clustering(&clustering, 1),
        RolloutStrategy::Staged { waves: 1 },
    );
    let mut campaign = Campaign::new(scenario.vendor, scenario.agents);
    let result = campaign.drive(upgrade, &plan, ProtocolChoice::FrontLoading, 1.0);

    println!("FrontLoading campaign:");
    println!(
        "  releases: {:?}",
        result
            .releases
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    println!("  overhead: {}", result.failed_validations);
    for group in campaign.urr.failure_groups() {
        println!(
            "  problem `{}` seen in clusters {:?}",
            group.signature, group.clusters
        );
    }
    assert!(result.converged(6));
    println!("\nOK: all six machines converged on Firefox 2.0.x.");
}
