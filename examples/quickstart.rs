//! Quickstart: cluster a small fleet and stage an upgrade through it.
//!
//! Builds a vendor with a reference machine, a five-machine fleet where
//! two machines carry a legacy configuration file that breaks the
//! upgrade, and runs a full Balanced staged deployment end to end:
//! tracing → environmental-resource identification → fingerprinting →
//! clustering → staged deployment with sandbox validation → structured
//! reporting → vendor fix → convergence.
//!
//! Run with: `cargo run --example quickstart`

use mirage::cluster::ClusteringScore;
use mirage::core::{Campaign, ProtocolChoice, RolloutStrategy, UserAgent, Vendor};
use mirage::env::{
    ApplicationSpec, EnvPredicate, File, IniDoc, MachineBuilder, Package, ProblemEffect,
    ProblemSpec, Repository, RunInput, Upgrade, Version, VersionReq,
};

fn main() {
    // ------------------------------------------------------------------
    // 1. A repository with version 1 of "editor" and its upgrade to v2.
    // ------------------------------------------------------------------
    let mut repo = Repository::new();
    repo.publish(
        Package::new("editor", Version::new(1, 0, 0)).with_file(File::executable(
            "/usr/bin/editor",
            "editor",
            1,
        )),
    );
    let v2 = Package::new("editor", Version::new(2, 0, 0)).with_file(File::executable(
        "/usr/bin/editor",
        "editor",
        2,
    ));

    // The v2 upgrade silently breaks on machines with a legacy config —
    // the paper's "incompatibility with legacy configurations" class.
    let upgrade = Upgrade::new(
        v2,
        vec![ProblemSpec::new(
            "legacy-rc",
            "v2 crashes when ~/.editorrc from v0.x is present",
            EnvPredicate::FileExists("/home/u/.editorrc".into()),
            ProblemEffect::CrashOnStart {
                app: "editor".into(),
            },
        )],
    );

    // ------------------------------------------------------------------
    // 2. The vendor's reference machine and the user fleet.
    // ------------------------------------------------------------------
    let spec =
        || ApplicationSpec::new("editor", "editor", "/usr/bin/editor").probes("/home/u/.editorrc");
    let reference = MachineBuilder::new("vendor-ref")
        .install(&repo, "editor", VersionReq::Any)
        .app(spec())
        .build();
    let vendor = Vendor::new(reference, repo).with_diameter(0);

    let mut agents = Vec::new();
    for i in 0..5 {
        let mut builder = MachineBuilder::new(format!("user-{i}"))
            .install(&vendor.repo, "editor", VersionReq::Any)
            .app(spec());
        if i >= 3 {
            // Two machines kept a legacy config file around.
            builder = builder.file(File::config(
                "/home/u/.editorrc",
                IniDoc::new().key("mode", "legacy"),
            ));
        }
        let mut agent = UserAgent::new(builder.build());
        // Each machine traces its own workloads before any upgrade.
        agent.collect("editor", RunInput::new("open-file"));
        agent.collect("editor", RunInput::new("save-file"));
        agents.push(agent);
    }

    // ------------------------------------------------------------------
    // 3. Cluster the fleet by environment.
    // ------------------------------------------------------------------
    let mut campaign = Campaign::new(vendor, agents);
    let classification = campaign
        .vendor
        .classify_reference("editor", &[RunInput::new("a"), RunInput::new("b")]);
    let reference_fp = campaign.vendor.reference_fingerprint(&classification);
    let (clustering, plan) = campaign.rollout_plan(
        "editor",
        &reference_fp,
        1,
        RolloutStrategy::Staged { waves: 1 },
    );

    println!("Clusters:");
    for cluster in &clustering.clusters {
        println!(
            "  {} (distance {:.1}): {:?}",
            cluster.id, cluster.vendor_distance, cluster.members
        );
    }
    let score = ClusteringScore::compute(
        &clustering,
        &[
            ("user-3".to_string(), "legacy-rc".to_string()),
            ("user-4".to_string(), "legacy-rc".to_string()),
        ]
        .into_iter()
        .collect(),
    );
    println!(
        "Clustering: {} clusters, C = {}, w = {}\n",
        score.clusters, score.unnecessary_clusters, score.misplaced
    );

    // ------------------------------------------------------------------
    // 4. Staged deployment with the Balanced protocol.
    // ------------------------------------------------------------------
    let result = campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);
    println!("Releases shipped: {:?}", result.releases);
    println!(
        "Machines that tested a faulty upgrade (overhead): {}",
        result.failed_validations
    );
    for (machine, release) in &result.integrated {
        println!("  {machine} integrated release r{release}");
    }

    // ------------------------------------------------------------------
    // 5. The vendor inspects the deduplicated failure reports.
    // ------------------------------------------------------------------
    println!("\nUpgrade Report Repository:");
    let stats = campaign.urr.stats();
    println!(
        "  {} reports ({} successes, {} failures, {} distinct problems)",
        stats.total, stats.successes, stats.failures, stats.distinct_failures
    );
    for group in campaign.urr.failure_groups() {
        println!(
            "  problem `{}` reported by {:?} (clusters {:?})",
            group.signature, group.machines, group.clusters
        );
    }

    assert!(result.converged(5), "every machine must converge");
    assert_eq!(
        result.failed_validations, 1,
        "staging confines the failure to one representative"
    );
    println!("\nOK: staged deployment converged with a single inconvenienced machine.");
}
