//! Handling an upgrade that legitimately changes I/O behaviour (§3.5).
//!
//! Mirage's validation compares replayed outputs byte for byte, so an
//! upgrade that adds features — and therefore changes outputs — fails
//! naive validation everywhere. The paper's answer: the cluster's
//! *representative* reviews the difference and approves it (the human
//! decision), then records fresh reference traces of the upgraded
//! application; those traces ship to the other cluster members, which
//! can then validate the upgrade automatically against the *new*
//! expected behaviour.
//!
//! Run with: `cargo run --example feature_upgrade`

use mirage::env::{
    AppLogic, ApplicationSpec, File, MachineBuilder, Package, Repository, RunInput, Upgrade,
    Version, VersionReq,
};
use mirage::testing::{refresh_runs, AcceptancePolicy, RecordedRun, Validator};
use mirage::trace::RunId;

fn spec() -> ApplicationSpec {
    ApplicationSpec::new("reportd", "reportd", "/usr/bin/reportd").with_logic(AppLogic {
        serves_net: true,
        writes_data: false,
        log_path: None,
        output_path: Some("/var/tmp/report.out".into()),
        // The daemon's outputs embed its version: upgrades change I/O.
        version_sensitive: true,
    })
}

fn main() {
    let mut repo = Repository::new();
    repo.publish(
        Package::new("reportd", Version::new(1, 0, 0)).with_file(File::executable(
            "/usr/bin/reportd",
            "reportd",
            1,
        )),
    );
    let upgrade = Upgrade::new(
        Package::new("reportd", Version::new(2, 0, 0)).with_file(File::executable(
            "/usr/bin/reportd",
            "reportd",
            2,
        )),
        vec![], // Problem-free: the output change is the new feature.
    );

    // The representative and a non-representative peer with identical
    // environments.
    let build = |name: &str| {
        MachineBuilder::new(name)
            .install(&repo, "reportd", VersionReq::Any)
            .app(spec())
            .build()
    };
    let representative = build("rep");
    let peer = build("peer");

    // Both machines hold pre-upgrade traces.
    let workload = || RunInput::new("daily").request("client", b"totals?".to_vec());
    let old_runs: Vec<RecordedRun> = vec![RecordedRun::new(
        workload(),
        peer.run_app("reportd", &workload(), RunId(0)),
    )];

    // 1. Naive validation fails: outputs legitimately differ.
    let strict = Validator::new().validate(&peer, &repo, &upgrade, &old_runs);
    println!(
        "strict validation on peer: {}",
        if strict.passed() {
            "PASS"
        } else {
            "FAIL (output mismatch)"
        }
    );
    assert!(!strict.passed());

    // 2. The representative reviews and accepts the new behaviour.
    let review = Validator::with_policy(AcceptancePolicy::AcceptDifferences).validate(
        &representative,
        &repo,
        &upgrade,
        &old_runs,
    );
    println!(
        "representative review: {}",
        if review.passed() {
            "APPROVED"
        } else {
            "rejected"
        }
    );
    assert!(review.passed());

    // 3. The representative records fresh reference traces against the
    //    upgraded application and ships them to the cluster.
    let fresh = refresh_runs(&representative, &repo, &upgrade, &[workload()], "reportd");
    println!(
        "representative recorded {} fresh reference run(s)",
        fresh.len()
    );

    // 4. The peer now validates the same upgrade automatically — no
    //    human involved — against the refreshed expectations.
    let automatic = Validator::new().validate(&peer, &repo, &upgrade, &fresh);
    println!(
        "automatic validation on peer with refreshed traces: {}",
        if automatic.passed() { "PASS" } else { "FAIL" }
    );
    assert!(automatic.passed());
    println!("\nOK: major version upgrades flow through Mirage without per-user review.");
}
