//! The four-part identification algorithm.

use std::collections::{BTreeMap, BTreeSet};

use mirage_fingerprint::ResourceKind;
use mirage_trace::Trace;

use crate::config::HeuristicConfig;
use crate::rules::RuleSet;

/// Why a path was classified as an environmental resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Provenance {
    /// Accessed during the initialisation phase (longest common prefix).
    InitPhase,
    /// Opened read-only in every trace.
    ReadOnlyAllTraces,
    /// Of a vendor-specified environmental type.
    VendorType,
    /// Named in the application's package manifest.
    PackageManifest,
    /// Forced in by a vendor include rule.
    VendorInclude,
}

/// The result of identifying an application's environmental resources.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Classification {
    /// Environmental resource paths.
    pub env_resources: BTreeSet<String>,
    /// Environment variables read by the application.
    pub env_vars: BTreeSet<String>,
    /// First-match provenance for each classified path.
    pub provenance: BTreeMap<String, Provenance>,
    /// Every path seen in any trace or the manifest (the candidate
    /// universe; the paper's "Files total" counts the traced subset).
    pub universe: BTreeSet<String>,
    /// Paths accessed in at least one trace.
    pub accessed: BTreeSet<String>,
}

impl Classification {
    /// Returns `true` if `path` was classified as environmental.
    pub fn is_env(&self, path: &str) -> bool {
        self.env_resources.contains(path)
    }
}

/// Computes the longest common prefix of the per-trace access sequences.
///
/// Returns the paths accessed within that prefix. With a single trace the
/// whole sequence is the prefix, which matches the paper's observation
/// that more traces sharpen the boundary of the initialisation phase.
pub fn init_phase_paths(traces: &[Trace]) -> BTreeSet<String> {
    let mut iter = traces.iter().map(Trace::access_sequence);
    let Some(mut prefix) = iter.next() else {
        return BTreeSet::new();
    };
    for seq in iter {
        let common = prefix
            .iter()
            .zip(seq.iter())
            .take_while(|(a, b)| a == b)
            .count();
        prefix.truncate(common);
    }
    prefix.into_iter().collect()
}

/// Computes paths opened read-only in every trace (and present in all).
pub fn read_only_everywhere(traces: &[Trace]) -> BTreeSet<String> {
    let mut iter = traces.iter();
    let Some(first) = iter.next() else {
        return BTreeSet::new();
    };
    let mut result = first.read_only_paths();
    for t in iter {
        let ro = t.read_only_paths();
        result.retain(|p| ro.contains(p));
    }
    result
}

/// Runs the full heuristic.
///
/// * `traces` — the collected runs of the application on this machine;
/// * `manifest` — paths named in the application's package;
/// * `kind_of` — kind lookup for a path (from the machine's filesystem);
/// * `config` — default excludes and vendor-specified env types;
/// * `rules` — the vendor's include/exclude directives.
pub fn identify(
    traces: &[Trace],
    manifest: &BTreeSet<String>,
    kind_of: &dyn Fn(&str) -> Option<ResourceKind>,
    config: &HeuristicConfig,
    rules: &RuleSet,
) -> Classification {
    let mut accessed: BTreeSet<String> = BTreeSet::new();
    let mut env_vars: BTreeSet<String> = BTreeSet::new();
    for t in traces {
        accessed.extend(t.accessed_paths());
        env_vars.extend(t.env_vars_read());
    }
    let mut universe = accessed.clone();
    universe.extend(manifest.iter().cloned());

    let mut provenance: BTreeMap<String, Provenance> = BTreeMap::new();
    let note = |path: &str, why: Provenance, out: &mut BTreeMap<String, Provenance>| {
        out.entry(path.to_string()).or_insert(why);
    };

    // Part 1: initialisation phase.
    for p in init_phase_paths(traces) {
        note(&p, Provenance::InitPhase, &mut provenance);
    }
    // Part 2: read-only in all traces.
    for p in read_only_everywhere(traces) {
        note(&p, Provenance::ReadOnlyAllTraces, &mut provenance);
    }
    // Part 3: vendor-specified types accessed in any trace.
    for p in &accessed {
        if let Some(kind) = kind_of(p) {
            if config.env_types.contains(&kind) {
                note(p, Provenance::VendorType, &mut provenance);
            }
        }
    }
    // Part 4: package manifest.
    for p in manifest {
        note(p, Provenance::PackageManifest, &mut provenance);
    }

    // Default system-wide excludes, then vendor rules. Vendor includes
    // win over every exclusion; vendor excludes win over the heuristic.
    let mut env_resources: BTreeSet<String> = provenance
        .keys()
        .filter(|p| !config.default_excluded(p))
        .cloned()
        .collect();
    env_resources.retain(|p| !rules.excludes(p) || rules.includes(p));
    for p in &universe {
        if rules.includes(p) && env_resources.insert(p.clone()) {
            // The heuristic alone did not keep this path (it was missing
            // or suppressed), so the include rule is its real provenance.
            provenance.insert(p.clone(), Provenance::VendorInclude);
        }
    }
    provenance.retain(|p, _| env_resources.contains(p));

    Classification {
        env_resources,
        env_vars,
        provenance,
        universe,
        accessed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_trace::{OpenMode, RunId, SyscallEvent};

    fn trace(machine: &str, events: Vec<SyscallEvent>) -> Trace {
        let mut t = Trace::new(machine, "app", RunId(0));
        for e in events {
            t.push(e);
        }
        t
    }

    fn open(path: &str, mode: OpenMode) -> SyscallEvent {
        SyscallEvent::Open {
            path: path.into(),
            mode,
        }
    }

    fn ro(path: &str) -> SyscallEvent {
        open(path, OpenMode::ReadOnly)
    }

    fn proc(exe: &str) -> SyscallEvent {
        SyscallEvent::ProcessCreate {
            exe: exe.into(),
            args: vec![],
        }
    }

    /// Two runs: identical init (exe, lib, cfg), divergent data reads, a
    /// log written in both.
    fn sample_traces() -> Vec<Trace> {
        let t1 = trace(
            "m",
            vec![
                proc("/bin/app"),
                ro("/lib/libx.so"),
                ro("/etc/app.conf"),
                ro("/data/a.txt"),
                SyscallEvent::Write {
                    path: "/logs/app.log".into(),
                    data: vec![1],
                },
            ],
        );
        let t2 = trace(
            "m",
            vec![
                proc("/bin/app"),
                ro("/lib/libx.so"),
                ro("/etc/app.conf"),
                ro("/data/b.txt"),
                ro("/late/plugin.so"),
                SyscallEvent::Write {
                    path: "/logs/app.log".into(),
                    data: vec![2],
                },
            ],
        );
        vec![t1, t2]
    }

    #[test]
    fn lcp_finds_init_phase() {
        let init = init_phase_paths(&sample_traces());
        assert!(init.contains("/bin/app"));
        assert!(init.contains("/lib/libx.so"));
        assert!(init.contains("/etc/app.conf"));
        assert!(!init.contains("/data/a.txt"), "diverging tail excluded");
        assert!(init_phase_paths(&[]).is_empty());
    }

    #[test]
    fn lcp_single_trace_is_whole_sequence() {
        let traces = vec![sample_traces().remove(0)];
        let init = init_phase_paths(&traces);
        assert!(init.contains("/data/a.txt"));
        assert!(init.contains("/logs/app.log"));
    }

    #[test]
    fn read_only_everywhere_excludes_divergent_and_written() {
        let ro_paths = read_only_everywhere(&sample_traces());
        assert!(ro_paths.contains("/lib/libx.so"));
        assert!(ro_paths.contains("/etc/app.conf"));
        assert!(!ro_paths.contains("/data/a.txt"), "only in one trace");
        assert!(!ro_paths.contains("/logs/app.log"), "written");
        assert!(read_only_everywhere(&[]).is_empty());
    }

    fn kinds(path: &str) -> Option<ResourceKind> {
        if path.ends_with(".so") {
            Some(ResourceKind::SharedLibrary)
        } else if path.starts_with("/etc") {
            Some(ResourceKind::Config)
        } else {
            Some(ResourceKind::Data)
        }
    }

    #[test]
    fn full_heuristic_combines_parts() {
        let manifest: BTreeSet<String> =
            ["/bin/app".to_string(), "/share/app/builtin.dat".to_string()].into();
        let c = identify(
            &sample_traces(),
            &manifest,
            &kinds,
            &HeuristicConfig::paper_default(),
            &RuleSet::new(),
        );
        // Init phase.
        assert_eq!(c.provenance["/bin/app"], Provenance::InitPhase);
        assert!(c.is_env("/etc/app.conf"));
        // Late-loaded library caught by the type rule.
        assert_eq!(c.provenance["/late/plugin.so"], Provenance::VendorType);
        // Manifest file never accessed still included.
        assert_eq!(
            c.provenance["/share/app/builtin.dat"],
            Provenance::PackageManifest
        );
        // Data and logs excluded.
        assert!(!c.is_env("/data/a.txt"));
        assert!(!c.is_env("/logs/app.log"));
        // Universe covers manifest + accessed.
        assert!(c.universe.contains("/share/app/builtin.dat"));
        assert!(c.accessed.contains("/data/a.txt"));
        assert!(!c.accessed.contains("/share/app/builtin.dat"));
    }

    #[test]
    fn default_excludes_suppress_var_and_tmp() {
        let t = trace(
            "m",
            vec![proc("/bin/app"), ro("/var/lib/app/state.db"), ro("/tmp/x")],
        );
        let c = identify(
            &[t],
            &BTreeSet::new(),
            &kinds,
            &HeuristicConfig::paper_default(),
            &RuleSet::new(),
        );
        assert!(!c.is_env("/var/lib/app/state.db"));
        assert!(!c.is_env("/tmp/x"));
        assert!(c.is_env("/bin/app"));
    }

    #[test]
    fn vendor_include_overrides_default_exclude() {
        let t = trace("m", vec![proc("/bin/app"), ro("/var/lib/app/state.db")]);
        let c = identify(
            &[t],
            &BTreeSet::new(),
            &kinds,
            &HeuristicConfig::paper_default(),
            &RuleSet::new().include("/var/lib/app/**"),
        );
        assert!(c.is_env("/var/lib/app/state.db"));
        assert_eq!(
            c.provenance["/var/lib/app/state.db"],
            Provenance::VendorInclude
        );
    }

    #[test]
    fn vendor_exclude_overrides_heuristic() {
        let t = trace("m", vec![proc("/bin/app"), ro("/srv/www/index.html")]);
        let c = identify(
            &[t],
            &BTreeSet::new(),
            &kinds,
            &HeuristicConfig::paper_default(),
            &RuleSet::new().exclude("/srv/www/**"),
        );
        assert!(!c.is_env("/srv/www/index.html"));
        assert!(!c.provenance.contains_key("/srv/www/index.html"));
    }

    #[test]
    fn include_beats_exclude_on_overlap() {
        let t = trace("m", vec![ro("/srv/www/special.conf")]);
        let c = identify(
            &[t],
            &BTreeSet::new(),
            &kinds,
            &HeuristicConfig::paper_default(),
            &RuleSet::new()
                .exclude("/srv/www/**")
                .include("/srv/www/special.conf"),
        );
        assert!(c.is_env("/srv/www/special.conf"));
    }

    #[test]
    fn env_vars_collected() {
        let mut t = trace("m", vec![proc("/bin/app")]);
        t.push(SyscallEvent::GetEnv {
            name: "HOME".into(),
            value: None,
        });
        let c = identify(
            &[t],
            &BTreeSet::new(),
            &kinds,
            &HeuristicConfig::paper_default(),
            &RuleSet::new(),
        );
        assert!(c.env_vars.contains("HOME"));
    }
}
