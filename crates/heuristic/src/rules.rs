//! The vendor include/exclude rule API.
//!
//! "A simple API provided by Mirage allows the vendor to include or
//! exclude files or directories" (paper §3.2.3). Each rule is a glob;
//! includes override every exclusion (vendor intent is explicit), and
//! vendor excludes override the heuristic's positive parts.

use mirage_fingerprint::Glob;

/// One vendor rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rule {
    /// Force paths matching the glob to be environmental resources.
    Include(Glob),
    /// Force paths matching the glob to be excluded.
    Exclude(Glob),
}

impl Rule {
    /// Convenience constructor for an include rule.
    pub fn include(pattern: impl Into<String>) -> Self {
        Rule::Include(Glob::new(pattern.into()))
    }

    /// Convenience constructor for an exclude rule.
    pub fn exclude(pattern: impl Into<String>) -> Self {
        Rule::Exclude(Glob::new(pattern.into()))
    }
}

/// An ordered collection of vendor rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a rule set from rules.
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        RuleSet { rules }
    }

    /// Appends an include rule.
    pub fn include(mut self, pattern: impl Into<String>) -> Self {
        self.rules.push(Rule::include(pattern));
        self
    }

    /// Appends an exclude rule.
    pub fn exclude(mut self, pattern: impl Into<String>) -> Self {
        self.rules.push(Rule::exclude(pattern));
        self
    }

    /// Number of rules — the paper's "Required vendor rules" column.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Returns `true` if an include rule matches `path`.
    pub fn includes(&self, path: &str) -> bool {
        self.rules
            .iter()
            .any(|r| matches!(r, Rule::Include(g) if g.matches(path)))
    }

    /// Returns `true` if an exclude rule matches `path`.
    pub fn excludes(&self, path: &str) -> bool {
        self.rules
            .iter()
            .any(|r| matches!(r, Rule::Exclude(g) if g.matches(path)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn include_and_exclude_matching() {
        let rules = RuleSet::new()
            .include("/var/lib/mysql/**")
            .exclude("/srv/www/htdocs/**");
        assert_eq!(rules.len(), 2);
        assert!(!rules.is_empty());
        assert!(rules.includes("/var/lib/mysql/user.frm"));
        assert!(!rules.includes("/var/lib/pgsql/x"));
        assert!(rules.excludes("/srv/www/htdocs/index.html"));
        assert!(!rules.excludes("/srv/www/cgi-bin/x"));
    }

    #[test]
    fn empty_ruleset() {
        let rules = RuleSet::new();
        assert!(rules.is_empty());
        assert!(!rules.includes("/a"));
        assert!(!rules.excludes("/a"));
    }

    #[test]
    fn from_rules_constructor() {
        let rules = RuleSet::from_rules(vec![Rule::include("/a/**"), Rule::exclude("/b/**")]);
        assert!(rules.includes("/a/x"));
        assert!(rules.excludes("/b/x"));
    }
}

/// A rule template expanded per machine.
///
/// "Some files and directories are located at different places on
/// different machines. In this case, the vendor can easily provide a
/// script to automatically extract the correct location of files and
/// directories from relevant configuration files or environment
/// variables and generate the regular expressions locally on each
/// machine" (paper §4.1). A template is a rule pattern containing
/// `$VARIABLE` references that are substituted from the machine's
/// environment before compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleTemplate {
    /// Whether the expanded rule includes or excludes.
    pub include: bool,
    /// Pattern with `$VARIABLE` placeholders (capital letters and
    /// underscores).
    pub pattern: String,
}

impl RuleTemplate {
    /// An include template.
    pub fn include(pattern: impl Into<String>) -> Self {
        RuleTemplate {
            include: true,
            pattern: pattern.into(),
        }
    }

    /// An exclude template.
    pub fn exclude(pattern: impl Into<String>) -> Self {
        RuleTemplate {
            include: false,
            pattern: pattern.into(),
        }
    }

    /// Expands the template against a machine's environment variables.
    ///
    /// Returns `None` when a referenced variable is unset on this
    /// machine (the rule simply does not apply there).
    pub fn expand(&self, env: &std::collections::BTreeMap<String, String>) -> Option<Rule> {
        let mut out = String::new();
        let mut chars = self.pattern.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '$' {
                out.push(c);
                continue;
            }
            let mut name = String::new();
            while let Some(&n) = chars.peek() {
                if n.is_ascii_uppercase() || n == '_' {
                    name.push(n);
                    chars.next();
                } else {
                    break;
                }
            }
            if name.is_empty() {
                out.push('$');
                continue;
            }
            out.push_str(env.get(&name)?);
        }
        Some(if self.include {
            Rule::include(out)
        } else {
            Rule::exclude(out)
        })
    }
}

/// Expands a set of templates on one machine, skipping templates whose
/// variables are unset there.
pub fn expand_templates(
    templates: &[RuleTemplate],
    env: &std::collections::BTreeMap<String, String>,
) -> RuleSet {
    RuleSet::from_rules(templates.iter().filter_map(|t| t.expand(env)).collect())
}

#[cfg(test)]
mod template_tests {
    use super::*;
    use std::collections::BTreeMap;

    fn env(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn expansion_substitutes_variables() {
        let t = RuleTemplate::include("$HOME/.my.cnf");
        let rule = t.expand(&env(&[("HOME", "/home/alice")])).unwrap();
        assert_eq!(rule, Rule::include("/home/alice/.my.cnf"));
    }

    #[test]
    fn missing_variable_skips_rule() {
        let t = RuleTemplate::include("$MYSQL_DATADIR/**");
        assert_eq!(t.expand(&env(&[])), None);
    }

    #[test]
    fn literal_dollar_passes_through() {
        let t = RuleTemplate::exclude("/var/$$/cache");
        let rule = t.expand(&env(&[])).unwrap();
        assert_eq!(rule, Rule::exclude("/var/$$/cache"));
    }

    #[test]
    fn expand_templates_builds_per_machine_rulesets() {
        let templates = vec![
            RuleTemplate::include("$HOME/.config/**"),
            RuleTemplate::exclude("$TMPDIR/**"),
            RuleTemplate::include("$UNSET_VAR/x"),
        ];
        let rules = expand_templates(
            &templates,
            &env(&[("HOME", "/home/bob"), ("TMPDIR", "/scratch")]),
        );
        assert_eq!(rules.len(), 2, "unset-variable template skipped");
        assert!(rules.includes("/home/bob/.config/app.toml"));
        assert!(rules.excludes("/scratch/tmpfile"));
    }

    #[test]
    fn different_machines_expand_differently() {
        let t = RuleTemplate::include("$HOME/.my.cnf");
        let alice = t.expand(&env(&[("HOME", "/home/alice")])).unwrap();
        let bob = t.expand(&env(&[("HOME", "/home/bob")])).unwrap();
        assert_ne!(alice, bob);
    }
}
