//! Heuristic configuration.

use std::collections::BTreeSet;

use mirage_fingerprint::{Glob, ResourceKind};

/// Tunables of the identification heuristic.
#[derive(Debug, Clone)]
pub struct HeuristicConfig {
    /// File kinds treated as environmental resources whenever accessed
    /// (the paper's "files of certain types (such as libraries)"). The
    /// vendor can extend this set — e.g. Firefox adds fonts, themes and
    /// extensions.
    pub env_types: BTreeSet<ResourceKind>,
    /// System-wide directories excluded by default (`/tmp`, `/var`).
    pub default_excludes: Vec<Glob>,
}

impl HeuristicConfig {
    /// The paper's default configuration.
    pub fn paper_default() -> Self {
        HeuristicConfig {
            env_types: [ResourceKind::SharedLibrary].into_iter().collect(),
            default_excludes: vec![Glob::new("/tmp/**"), Glob::new("/var/**")],
        }
    }

    /// Adds a vendor-specified environmental type.
    pub fn with_env_type(mut self, kind: ResourceKind) -> Self {
        self.env_types.insert(kind);
        self
    }

    /// Returns `true` if `path` falls under a default exclude.
    pub fn default_excluded(&self, path: &str) -> bool {
        self.default_excludes.iter().any(|g| g.matches(path))
    }
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = HeuristicConfig::paper_default();
        assert!(c.env_types.contains(&ResourceKind::SharedLibrary));
        assert!(c.default_excluded("/tmp/sock"));
        assert!(c.default_excluded("/var/log/syslog"));
        assert!(!c.default_excluded("/etc/my.cnf"));
    }

    #[test]
    fn extendable_types() {
        let c = HeuristicConfig::paper_default()
            .with_env_type(ResourceKind::Font)
            .with_env_type(ResourceKind::Theme);
        assert!(c.env_types.contains(&ResourceKind::Font));
        assert!(c.env_types.contains(&ResourceKind::Theme));
        assert_eq!(c.env_types.len(), 3);
    }
}
