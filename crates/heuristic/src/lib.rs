//! Environmental-resource identification (paper §3.2.3).
//!
//! Before clustering, Mirage must decide which of the files an application
//! touches are *environmental resources* (libraries, configuration,
//! executables — things whose differences could change upgrade behaviour)
//! and which are mere data. This crate implements the paper's four-part
//! heuristic over collected traces:
//!
//! 1. every file accessed within the **longest common prefix** of the
//!    per-trace access sequences (the single-threaded initialisation
//!    phase);
//! 2. every file opened **read-only in all traces** and present in every
//!    trace;
//! 3. every file of certain **vendor-specified types** (such as shared
//!    libraries) accessed in any single trace;
//! 4. every file named in the application's **package manifest**;
//!
//! minus the default system-wide excludes (`/tmp`, `/var`), adjusted by
//! the vendor's include/exclude **rules** (a glob-based API). Environment
//! variables read through `getenv` are always environmental resources.
//!
//! The [`eval`] module scores a classification against ground truth,
//! producing the rows of the paper's Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod config;
pub mod eval;
pub mod identify;
pub mod rules;

pub use config::HeuristicConfig;
pub use eval::{evaluate, EvalResult};
pub use identify::{identify, Classification, Provenance};
pub use rules::{expand_templates, Rule, RuleSet, RuleTemplate};
