//! Scoring a classification against ground truth (Table 1).

use std::collections::BTreeSet;

use crate::identify::Classification;

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalResult {
    /// Application name.
    pub app: String,
    /// Files accessed in the traces ("Files total").
    pub files_total: usize,
    /// Ground-truth environmental resources in the universe
    /// ("Env. resources").
    pub env_resources: usize,
    /// Files the heuristic flagged that are not environmental resources.
    pub false_positives: usize,
    /// Environmental resources the heuristic missed.
    pub false_negatives: usize,
    /// Number of vendor rules in force ("Required vendor rules").
    pub vendor_rules: usize,
}

impl EvalResult {
    /// Returns `true` if the classification is perfect.
    pub fn is_perfect(&self) -> bool {
        self.false_positives == 0 && self.false_negatives == 0
    }
}

/// Scores `classification` for `app` against ground truth.
///
/// `truth` answers "is this path really an environmental resource?" for
/// every path in the classification's universe; in the simulated
/// environment it is backed by the files' `truth_env` flags.
pub fn evaluate(
    app: impl Into<String>,
    classification: &Classification,
    truth: &dyn Fn(&str) -> bool,
    vendor_rules: usize,
) -> EvalResult {
    let truth_set: BTreeSet<&String> = classification
        .universe
        .iter()
        .filter(|p| truth(p))
        .collect();
    let false_positives = classification
        .env_resources
        .iter()
        .filter(|p| !truth(p))
        .count();
    let false_negatives = truth_set
        .iter()
        .filter(|p| !classification.env_resources.contains(**p))
        .count();
    EvalResult {
        app: app.into(),
        files_total: classification.accessed.len(),
        env_resources: truth_set.len(),
        false_positives,
        false_negatives,
        vendor_rules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn classification(env: &[&str], universe: &[&str], accessed: &[&str]) -> Classification {
        Classification {
            env_resources: env.iter().map(|s| s.to_string()).collect(),
            env_vars: BTreeSet::new(),
            provenance: BTreeMap::new(),
            universe: universe.iter().map(|s| s.to_string()).collect(),
            accessed: accessed.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn perfect_classification() {
        let c = classification(&["/a", "/b"], &["/a", "/b", "/c"], &["/a", "/b", "/c"]);
        let truth = |p: &str| p == "/a" || p == "/b";
        let r = evaluate("app", &c, &truth, 0);
        assert_eq!(r.files_total, 3);
        assert_eq!(r.env_resources, 2);
        assert!(r.is_perfect());
    }

    #[test]
    fn false_positive_and_negative_counting() {
        // Heuristic said {/a, /x}; truth is {/a, /b}.
        let c = classification(&["/a", "/x"], &["/a", "/b", "/x"], &["/a", "/b", "/x"]);
        let truth = |p: &str| p == "/a" || p == "/b";
        let r = evaluate("app", &c, &truth, 2);
        assert_eq!(r.false_positives, 1);
        assert_eq!(r.false_negatives, 1);
        assert_eq!(r.vendor_rules, 2);
        assert!(!r.is_perfect());
    }

    #[test]
    fn manifest_only_files_count_toward_truth_not_files_total() {
        // /m is in the universe (manifest) but never accessed.
        let c = classification(&["/a", "/m"], &["/a", "/m"], &["/a"]);
        let truth = |_: &str| true;
        let r = evaluate("app", &c, &truth, 0);
        assert_eq!(r.files_total, 1);
        assert_eq!(r.env_resources, 2);
        assert!(r.is_perfect());
    }
}
