//! Accumulation of traces per `(machine, application)` pair.

use std::collections::BTreeMap;

use crate::trace::{RunId, Trace};

/// Key identifying the trace collection of one application on one machine.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceKey {
    /// Machine identifier.
    pub machine: String,
    /// Application name.
    pub app: String,
}

impl TraceKey {
    /// Creates a key from machine and application names.
    pub fn new(machine: impl Into<String>, app: impl Into<String>) -> Self {
        TraceKey {
            machine: machine.into(),
            app: app.into(),
        }
    }
}

/// A store of recorded traces, grouped by `(machine, application)`.
///
/// The trace-collection subsystem appends here; the dependence subsystem and
/// the validator read from here. Run identifiers are assigned sequentially
/// per key.
#[derive(Debug, Default, Clone)]
pub struct TraceStore {
    traces: BTreeMap<TraceKey, Vec<Trace>>,
    next_run: u64,
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next run identifier.
    pub fn next_run_id(&mut self) -> RunId {
        let id = RunId(self.next_run);
        self.next_run += 1;
        id
    }

    /// Records a finished trace.
    pub fn record(&mut self, trace: Trace) {
        let key = TraceKey::new(trace.machine.clone(), trace.app.clone());
        self.traces.entry(key).or_default().push(trace);
    }

    /// Returns the traces recorded for `app` on `machine` (possibly empty).
    pub fn traces_for(&self, machine: &str, app: &str) -> &[Trace] {
        self.traces
            .get(&TraceKey::new(machine, app))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Returns all keys with at least one trace.
    pub fn keys(&self) -> impl Iterator<Item = &TraceKey> {
        self.traces.keys()
    }

    /// Returns the total number of stored traces.
    pub fn len(&self) -> usize {
        self.traces.values().map(Vec::len).sum()
    }

    /// Returns `true` if no traces are stored.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Removes (and returns) all traces for `app` on `machine`.
    ///
    /// Used when a representative approves an upgrade that legitimately
    /// changes I/O behaviour: stale traces are dropped and fresh ones
    /// recorded against the new version (paper §3.5).
    pub fn invalidate(&mut self, machine: &str, app: &str) -> Vec<Trace> {
        self.traces
            .remove(&TraceKey::new(machine, app))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup() {
        let mut store = TraceStore::new();
        assert!(store.is_empty());
        let run = store.next_run_id();
        store.record(Trace::new("m1", "apache", run));
        let run = store.next_run_id();
        store.record(Trace::new("m1", "apache", run));
        store.record(Trace::new("m2", "apache", RunId(9)));
        assert_eq!(store.traces_for("m1", "apache").len(), 2);
        assert_eq!(store.traces_for("m2", "apache").len(), 1);
        assert!(store.traces_for("m3", "apache").is_empty());
        assert_eq!(store.len(), 3);
        assert_eq!(store.keys().count(), 2);
    }

    #[test]
    fn run_ids_are_sequential() {
        let mut store = TraceStore::new();
        assert_eq!(store.next_run_id(), RunId(0));
        assert_eq!(store.next_run_id(), RunId(1));
    }

    #[test]
    fn invalidate_removes_traces() {
        let mut store = TraceStore::new();
        store.record(Trace::new("m1", "firefox", RunId(0)));
        let removed = store.invalidate("m1", "firefox");
        assert_eq!(removed.len(), 1);
        assert!(store.traces_for("m1", "firefox").is_empty());
        assert!(store.invalidate("m1", "firefox").is_empty());
    }
}
