//! A [`Trace`] is the recorded event log of one application run.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::event::{OpenMode, SyscallEvent};

/// Identifier of a single traced run, unique within a [`crate::TraceStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RunId(pub u64);

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run#{}", self.0)
    }
}

/// The event log of one run of one application on one machine.
///
/// Traces are both the input to the environmental-resource heuristic
/// (which inspects *which* files are accessed, in what order and mode) and
/// the input/output record used by the validation subsystem (which replays
/// recorded inputs against an upgraded application and compares outputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Machine the run was recorded on.
    pub machine: String,
    /// Application name.
    pub app: String,
    /// Which run this is.
    pub run: RunId,
    /// The ordered event log.
    pub events: Vec<SyscallEvent>,
}

impl Trace {
    /// Creates an empty trace for `app` on `machine`.
    pub fn new(machine: impl Into<String>, app: impl Into<String>, run: RunId) -> Self {
        Trace {
            machine: machine.into(),
            app: app.into(),
            run,
            events: Vec::new(),
        }
    }

    /// Appends an event to the log.
    pub fn push(&mut self, event: SyscallEvent) {
        self.events.push(event);
    }

    /// Returns the sequence of file paths in *first-access order*.
    ///
    /// This is the sequence over which the heuristic computes the
    /// longest-common-prefix (the initialisation phase): each path appears
    /// once, at the position of its first `Open`/`ProcessCreate`/`Exec`.
    pub fn access_sequence(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut seq = Vec::new();
        for ev in &self.events {
            let path = match ev {
                SyscallEvent::Open { path, .. }
                | SyscallEvent::Read { path, .. }
                | SyscallEvent::Write { path, .. } => Some(path),
                SyscallEvent::ProcessCreate { exe, .. } | SyscallEvent::Exec { exe } => Some(exe),
                _ => None,
            };
            if let Some(p) = path {
                if seen.insert(p.clone()) {
                    seq.push(p.clone());
                }
            }
        }
        seq
    }

    /// Returns every path accessed in this trace (any mode), deduplicated.
    pub fn accessed_paths(&self) -> BTreeSet<String> {
        self.events
            .iter()
            .filter_map(|e| e.path().map(str::to_owned))
            .collect()
    }

    /// Returns the per-path effective open mode observed in this trace.
    ///
    /// A path opened both read-only and for writing is reported as writing:
    /// the heuristic treats "ever written" as disqualifying for the
    /// read-only rule.
    pub fn open_modes(&self) -> BTreeMap<String, OpenMode> {
        let mut modes: BTreeMap<String, OpenMode> = BTreeMap::new();
        for ev in &self.events {
            let (path, mode) = match ev {
                SyscallEvent::Open { path, mode } => (path.clone(), *mode),
                SyscallEvent::ProcessCreate { exe, .. } | SyscallEvent::Exec { exe } => {
                    // Executing an image is a read of it.
                    (exe.clone(), OpenMode::ReadOnly)
                }
                SyscallEvent::Write { path, .. } => (path.clone(), OpenMode::WriteOnly),
                _ => continue,
            };
            modes
                .entry(path)
                .and_modify(|m| {
                    if (mode.writes() && !m.writes()) || (mode.reads() && !m.reads()) {
                        *m = OpenMode::ReadWrite;
                    }
                })
                .or_insert(mode);
        }
        modes
    }

    /// Returns the paths opened read-only (and never written) in this trace.
    pub fn read_only_paths(&self) -> BTreeSet<String> {
        self.open_modes()
            .into_iter()
            .filter(|(_, m)| !m.writes())
            .map(|(p, _)| p)
            .collect()
    }

    /// Returns the names of environment variables read in this trace.
    pub fn env_vars_read(&self) -> BTreeSet<String> {
        self.events
            .iter()
            .filter_map(|e| match e {
                SyscallEvent::GetEnv { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect()
    }

    /// Returns all output events (file writes, network sends), in order.
    pub fn outputs(&self) -> Vec<&SyscallEvent> {
        self.events.iter().filter(|e| e.is_output()).collect()
    }

    /// Returns all recorded network inputs, in order.
    pub fn net_inputs(&self) -> Vec<(&str, &[u8])> {
        self.events
            .iter()
            .filter_map(|e| match e {
                SyscallEvent::NetRecv { peer, data } => Some((peer.as_str(), data.as_slice())),
                _ => None,
            })
            .collect()
    }

    /// Returns the recorded argument vector of the traced process, if any.
    pub fn args(&self) -> Option<&[String]> {
        self.events.iter().find_map(|e| match e {
            SyscallEvent::ProcessCreate { args, .. } => Some(args.as_slice()),
            _ => None,
        })
    }

    /// Returns the exit code recorded in the trace, if the process exited.
    pub fn exit_code(&self) -> Option<i32> {
        self.events.iter().rev().find_map(|e| match e {
            SyscallEvent::Exit { code } => Some(*code),
            _ => None,
        })
    }

    /// Returns `true` if the traced run terminated successfully.
    pub fn succeeded(&self) -> bool {
        self.exit_code() == Some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("m1", "mysqld", RunId(0));
        t.push(SyscallEvent::ProcessCreate {
            exe: "/usr/sbin/mysqld".into(),
            args: vec!["--datadir=/var/lib/mysql".into()],
        });
        t.push(SyscallEvent::Open {
            path: "/lib/libc.so.6".into(),
            mode: OpenMode::ReadOnly,
        });
        t.push(SyscallEvent::Open {
            path: "/etc/mysql/my.cnf".into(),
            mode: OpenMode::ReadOnly,
        });
        t.push(SyscallEvent::GetEnv {
            name: "HOME".into(),
            value: Some("/root".into()),
        });
        t.push(SyscallEvent::Open {
            path: "/var/lib/mysql/ibdata1".into(),
            mode: OpenMode::ReadWrite,
        });
        t.push(SyscallEvent::Write {
            path: "/var/log/mysql.log".into(),
            data: b"started".to_vec(),
        });
        // Re-open of an already-seen path must not duplicate in the sequence.
        t.push(SyscallEvent::Open {
            path: "/etc/mysql/my.cnf".into(),
            mode: OpenMode::ReadOnly,
        });
        t.push(SyscallEvent::NetSend {
            peer: "client:3306".into(),
            data: b"ok".to_vec(),
        });
        t.push(SyscallEvent::Exit { code: 0 });
        t
    }

    #[test]
    fn access_sequence_is_first_access_order() {
        let t = sample();
        assert_eq!(
            t.access_sequence(),
            vec![
                "/usr/sbin/mysqld".to_string(),
                "/lib/libc.so.6".to_string(),
                "/etc/mysql/my.cnf".to_string(),
                "/var/lib/mysql/ibdata1".to_string(),
                "/var/log/mysql.log".to_string(),
            ]
        );
    }

    #[test]
    fn read_only_excludes_written_paths() {
        let t = sample();
        let ro = t.read_only_paths();
        assert!(ro.contains("/etc/mysql/my.cnf"));
        assert!(ro.contains("/lib/libc.so.6"));
        assert!(ro.contains("/usr/sbin/mysqld"));
        assert!(!ro.contains("/var/lib/mysql/ibdata1"));
        assert!(!ro.contains("/var/log/mysql.log"));
    }

    #[test]
    fn env_vars_and_args_and_exit() {
        let t = sample();
        assert!(t.env_vars_read().contains("HOME"));
        assert_eq!(t.args().unwrap(), &["--datadir=/var/lib/mysql"]);
        assert_eq!(t.exit_code(), Some(0));
        assert!(t.succeeded());
    }

    #[test]
    fn outputs_are_writes_and_sends() {
        let t = sample();
        let outs = t.outputs();
        assert_eq!(outs.len(), 2);
        assert!(matches!(outs[0], SyscallEvent::Write { .. }));
        assert!(matches!(outs[1], SyscallEvent::NetSend { .. }));
    }

    #[test]
    fn mode_merging_promotes_to_readwrite() {
        let mut t = Trace::new("m", "a", RunId(1));
        t.push(SyscallEvent::Open {
            path: "/f".into(),
            mode: OpenMode::ReadOnly,
        });
        t.push(SyscallEvent::Open {
            path: "/f".into(),
            mode: OpenMode::WriteOnly,
        });
        assert_eq!(t.open_modes()["/f"], OpenMode::ReadWrite);
        assert!(t.read_only_paths().is_empty());
    }

    #[test]
    fn crashed_run_has_no_success() {
        let mut t = Trace::new("m", "a", RunId(2));
        t.push(SyscallEvent::Exit { code: 139 });
        assert!(!t.succeeded());
        let empty = Trace::new("m", "a", RunId(3));
        assert_eq!(empty.exit_code(), None);
        assert!(!empty.succeeded());
    }
}
