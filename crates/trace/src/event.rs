//! The syscall event vocabulary recorded by Mirage's tracing subsystem.

use std::fmt;

/// The mode a file was opened with.
///
/// The environmental-resource heuristic cares about the distinction between
/// files that are only ever read (candidate environmental resources) and
/// files that are written (data, logs, caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpenMode {
    /// Opened for reading only.
    ReadOnly,
    /// Opened for writing only (includes append).
    WriteOnly,
    /// Opened for both reading and writing.
    ReadWrite,
}

impl OpenMode {
    /// Returns `true` if the mode permits writing.
    pub fn writes(self) -> bool {
        !matches!(self, OpenMode::ReadOnly)
    }

    /// Returns `true` if the mode permits reading.
    pub fn reads(self) -> bool {
        !matches!(self, OpenMode::WriteOnly)
    }
}

impl fmt::Display for OpenMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpenMode::ReadOnly => "ro",
            OpenMode::WriteOnly => "wo",
            OpenMode::ReadWrite => "rw",
        };
        f.write_str(s)
    }
}

/// One intercepted system call (or libc call) in an application run.
///
/// This mirrors the instrumentation points the paper lists in §3.2.3:
/// process creation, read/write/file-descriptor calls, socket calls, and
/// `getenv()`. Payload bytes are carried inline so that the validation
/// subsystem can replay network inputs and compare outputs without any
/// access to the original machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SyscallEvent {
    /// A process was created for `exe` with the given argument vector.
    ProcessCreate {
        /// Absolute path of the executable image.
        exe: String,
        /// Command-line arguments (excluding argv\[0\]).
        args: Vec<String>,
    },
    /// `exe` replaced the current process image (late `exec`).
    Exec {
        /// Absolute path of the new executable image.
        exe: String,
    },
    /// A file was opened.
    Open {
        /// Absolute path of the file.
        path: String,
        /// Open mode.
        mode: OpenMode,
    },
    /// Bytes were read from an open file.
    Read {
        /// Absolute path of the file.
        path: String,
        /// Number of bytes read.
        len: usize,
    },
    /// Bytes were written to an open file.
    Write {
        /// Absolute path of the file.
        path: String,
        /// The bytes written (recorded for output comparison).
        data: Vec<u8>,
    },
    /// An open file descriptor was closed.
    Close {
        /// Absolute path of the file.
        path: String,
    },
    /// An environment variable was read via `getenv()`.
    GetEnv {
        /// Variable name.
        name: String,
        /// Observed value, or `None` when unset.
        value: Option<String>,
    },
    /// A socket to `peer` was created/connected.
    Socket {
        /// Logical peer endpoint (host:port or a symbolic name).
        peer: String,
    },
    /// Bytes were sent on a socket (recorded for output comparison).
    NetSend {
        /// Logical peer endpoint.
        peer: String,
        /// The bytes sent.
        data: Vec<u8>,
    },
    /// Bytes were received from a socket (recorded for replay).
    NetRecv {
        /// Logical peer endpoint.
        peer: String,
        /// The bytes received.
        data: Vec<u8>,
    },
    /// The process exited with `code`.
    Exit {
        /// Process exit code (0 = success).
        code: i32,
    },
}

impl SyscallEvent {
    /// Returns the file path this event refers to, if it is file-related.
    pub fn path(&self) -> Option<&str> {
        match self {
            SyscallEvent::Open { path, .. }
            | SyscallEvent::Read { path, .. }
            | SyscallEvent::Write { path, .. }
            | SyscallEvent::Close { path } => Some(path),
            SyscallEvent::ProcessCreate { exe, .. } | SyscallEvent::Exec { exe } => Some(exe),
            _ => None,
        }
    }

    /// Returns `true` for events that represent observable output
    /// (file writes and network sends).
    pub fn is_output(&self) -> bool {
        matches!(
            self,
            SyscallEvent::Write { .. } | SyscallEvent::NetSend { .. }
        )
    }
}

impl fmt::Display for SyscallEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyscallEvent::ProcessCreate { exe, args } => {
                write!(f, "proc_create({exe}, {args:?})")
            }
            SyscallEvent::Exec { exe } => write!(f, "exec({exe})"),
            SyscallEvent::Open { path, mode } => write!(f, "open({path}, {mode})"),
            SyscallEvent::Read { path, len } => write!(f, "read({path}, {len})"),
            SyscallEvent::Write { path, data } => write!(f, "write({path}, {} bytes)", data.len()),
            SyscallEvent::Close { path } => write!(f, "close({path})"),
            SyscallEvent::GetEnv { name, value } => write!(f, "getenv({name}) = {value:?}"),
            SyscallEvent::Socket { peer } => write!(f, "socket({peer})"),
            SyscallEvent::NetSend { peer, data } => {
                write!(f, "net_send({peer}, {} bytes)", data.len())
            }
            SyscallEvent::NetRecv { peer, data } => {
                write!(f, "net_recv({peer}, {} bytes)", data.len())
            }
            SyscallEvent::Exit { code } => write!(f, "exit({code})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_mode_predicates() {
        assert!(OpenMode::ReadOnly.reads());
        assert!(!OpenMode::ReadOnly.writes());
        assert!(OpenMode::WriteOnly.writes());
        assert!(!OpenMode::WriteOnly.reads());
        assert!(OpenMode::ReadWrite.reads());
        assert!(OpenMode::ReadWrite.writes());
    }

    #[test]
    fn event_path_extraction() {
        let ev = SyscallEvent::Open {
            path: "/etc/my.cnf".into(),
            mode: OpenMode::ReadOnly,
        };
        assert_eq!(ev.path(), Some("/etc/my.cnf"));
        let ev = SyscallEvent::GetEnv {
            name: "HOME".into(),
            value: Some("/home/u".into()),
        };
        assert_eq!(ev.path(), None);
        let ev = SyscallEvent::ProcessCreate {
            exe: "/usr/bin/mysqld".into(),
            args: vec![],
        };
        assert_eq!(ev.path(), Some("/usr/bin/mysqld"));
    }

    #[test]
    fn output_classification() {
        assert!(SyscallEvent::Write {
            path: "/var/log/x".into(),
            data: vec![1],
        }
        .is_output());
        assert!(SyscallEvent::NetSend {
            peer: "client".into(),
            data: vec![1],
        }
        .is_output());
        assert!(!SyscallEvent::Read {
            path: "/etc/x".into(),
            len: 10,
        }
        .is_output());
        assert!(!SyscallEvent::NetRecv {
            peer: "client".into(),
            data: vec![1],
        }
        .is_output());
    }

    #[test]
    fn display_formats() {
        let ev = SyscallEvent::Open {
            path: "/a".into(),
            mode: OpenMode::ReadWrite,
        };
        assert_eq!(ev.to_string(), "open(/a, rw)");
        assert_eq!(OpenMode::ReadOnly.to_string(), "ro");
    }
}
