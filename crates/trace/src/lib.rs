//! Syscall-level trace model for Mirage.
//!
//! The paper instruments process creation, read, write, file-descriptor and
//! socket system calls (plus `getenv()` in libc) to build a log of all
//! external resources an application touches. This crate defines that log:
//! the [`SyscallEvent`] vocabulary, the [`Trace`] container produced by one
//! application run, and a [`TraceStore`] that accumulates traces per
//! `(machine, application)` pair.
//!
//! The crate is substrate-agnostic: in this reproduction the events are
//! emitted by the simulated-application interpreter in `mirage-env`, but the
//! downstream consumers (the environmental-resource heuristic in
//! `mirage-heuristic` and the replay validator in `mirage-testing`) only ever
//! see the types defined here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod event;
pub mod stats;
pub mod store;
pub mod trace;

pub use event::{OpenMode, SyscallEvent};
pub use stats::TraceStats;
pub use store::{TraceKey, TraceStore};
pub use trace::{RunId, Trace};
