//! Summary statistics over a set of traces.

use std::collections::BTreeSet;

use crate::event::SyscallEvent;
use crate::trace::Trace;

/// Aggregate statistics over the traces of one application.
///
/// These back the "Files total" style columns of the paper's Table 1 and
/// give the vendor a feel for how much trace data its users collect.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of traces aggregated.
    pub runs: usize,
    /// Total number of events across all traces.
    pub events: usize,
    /// Number of distinct file paths accessed in any trace.
    pub distinct_files: usize,
    /// Number of distinct environment variables read in any trace.
    pub distinct_env_vars: usize,
    /// Number of distinct network peers contacted in any trace.
    pub distinct_peers: usize,
    /// Total bytes of recorded output (file writes + network sends).
    pub output_bytes: usize,
}

impl TraceStats {
    /// Computes statistics over `traces`.
    pub fn over(traces: &[Trace]) -> Self {
        let mut files = BTreeSet::new();
        let mut env_vars = BTreeSet::new();
        let mut peers = BTreeSet::new();
        let mut events = 0usize;
        let mut output_bytes = 0usize;
        for t in traces {
            events += t.events.len();
            files.extend(t.accessed_paths());
            env_vars.extend(t.env_vars_read());
            for ev in &t.events {
                match ev {
                    SyscallEvent::Socket { peer }
                    | SyscallEvent::NetSend { peer, .. }
                    | SyscallEvent::NetRecv { peer, .. } => {
                        peers.insert(peer.clone());
                    }
                    _ => {}
                }
                match ev {
                    SyscallEvent::Write { data, .. } | SyscallEvent::NetSend { data, .. } => {
                        output_bytes += data.len();
                    }
                    _ => {}
                }
            }
        }
        TraceStats {
            runs: traces.len(),
            events,
            distinct_files: files.len(),
            distinct_env_vars: env_vars.len(),
            distinct_peers: peers.len(),
            output_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpenMode;
    use crate::trace::RunId;

    #[test]
    fn stats_over_traces() {
        let mut a = Trace::new("m", "app", RunId(0));
        a.push(SyscallEvent::Open {
            path: "/etc/a".into(),
            mode: OpenMode::ReadOnly,
        });
        a.push(SyscallEvent::GetEnv {
            name: "PATH".into(),
            value: None,
        });
        a.push(SyscallEvent::NetSend {
            peer: "p1".into(),
            data: vec![0; 10],
        });
        let mut b = Trace::new("m", "app", RunId(1));
        b.push(SyscallEvent::Open {
            path: "/etc/a".into(),
            mode: OpenMode::ReadOnly,
        });
        b.push(SyscallEvent::Open {
            path: "/etc/b".into(),
            mode: OpenMode::ReadOnly,
        });
        b.push(SyscallEvent::Write {
            path: "/tmp/x".into(),
            data: vec![0; 5],
        });

        let s = TraceStats::over(&[a, b]);
        assert_eq!(s.runs, 2);
        assert_eq!(s.events, 6);
        assert_eq!(s.distinct_files, 3); // /etc/a, /etc/b, /tmp/x
        assert_eq!(s.distinct_env_vars, 1);
        assert_eq!(s.distinct_peers, 1);
        assert_eq!(s.output_bytes, 15);
    }

    #[test]
    fn stats_over_empty() {
        let s = TraceStats::over(&[]);
        assert_eq!(s, TraceStats::default());
    }
}
