//! Per-wave / per-cluster health rollups over the campaign journal.
//!
//! The rollup engine folds a [`crate::journal::Journal`] timeline into
//! [`WaveHealth`] frames — one per deployment wave — each carrying the
//! signals a rollback/abort loop needs: convergence-lag percentiles
//! (notify → pass, exact, computed by sorting on the export path),
//! failure rate, retry amplification, fault-counter deltas, and waiver
//! counts, plus a per-cluster breakdown. A threshold watchdog
//! ([`WatchdogConfig`]) classifies every frame as `Healthy`,
//! `Degraded`, or `Unhealthy`; this is the exact signal surface the
//! planned canary/rolling abort loop consumes.
//!
//! Wave boundaries come from the journal itself: frame 0 opens at time
//! 0 (the global-representatives stage for staged protocols, or the
//! whole run for unstaged ones) and a new frame opens at every
//! [`crate::journal::JournalEvent::WaveAdvance`] entry. Work is
//! attributed to the frame in which it *started*: a machine notified in
//! wave 2 that converges during wave 3 contributes its lag to wave 2's
//! percentiles.

use crate::journal::{FaultKind, JournalEntry, JournalEvent, NO_PROBLEM};
use crate::json::Value;

/// A frame's watchdog verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// All signals within thresholds.
    Healthy,
    /// At least one signal crossed its degraded threshold.
    Degraded,
    /// At least one signal crossed its unhealthy threshold.
    Unhealthy,
}

impl HealthStatus {
    /// The status's stable name.
    pub fn name(self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Unhealthy => "unhealthy",
        }
    }
}

/// Watchdog thresholds for classifying a frame.
///
/// Failure rate is `failed / (passed + failed)` tests; retry
/// amplification is `retries / notifies` (0 when nothing was notified).
/// Any waiver marks a frame at least [`HealthStatus::Degraded`]: a
/// waived representative means the protocol gave up waiting on a
/// cluster's canary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Failure rate at which a frame is degraded.
    pub degraded_failure_rate: f64,
    /// Failure rate at which a frame is unhealthy.
    pub unhealthy_failure_rate: f64,
    /// Retry amplification at which a frame is degraded.
    pub degraded_retry_amplification: f64,
    /// Retry amplification at which a frame is unhealthy.
    pub unhealthy_retry_amplification: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            degraded_failure_rate: 0.05,
            unhealthy_failure_rate: 0.25,
            degraded_retry_amplification: 0.25,
            unhealthy_retry_amplification: 2.0,
        }
    }
}

impl WatchdogConfig {
    fn classify(&self, failure_rate: f64, retry_amplification: f64, waivers: u64) -> HealthStatus {
        if failure_rate >= self.unhealthy_failure_rate
            || retry_amplification >= self.unhealthy_retry_amplification
        {
            HealthStatus::Unhealthy
        } else if failure_rate >= self.degraded_failure_rate
            || retry_amplification >= self.degraded_retry_amplification
            || waivers > 0
        {
            HealthStatus::Degraded
        } else {
            HealthStatus::Healthy
        }
    }
}

/// Health signals for one cluster within one wave frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterHealth {
    /// Cluster id.
    pub cluster: u32,
    /// Machines notified in this frame.
    pub notified: u64,
    /// Tests passed in this frame.
    pub passed: u64,
    /// Tests failed in this frame.
    pub failed: u64,
    /// Retries sent in this frame.
    pub retries: u64,
    /// `failed / (passed + failed)`, 0 when no tests finished.
    pub failure_rate: f64,
    /// Watchdog verdict for this cluster slice.
    pub status: HealthStatus,
}

/// Health signals for one deployment wave.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveHealth {
    /// Wave index (0 = the initial stage before any advance).
    pub wave: u32,
    /// Cluster the wave advanced to (`None` for the initial stage).
    pub cluster: Option<u32>,
    /// Sim time at which the frame opened.
    pub start: u64,
    /// Sim time at which the frame closed (run end for the last one).
    pub end: u64,
    /// Machines notified in this frame.
    pub notified: u64,
    /// Tests passed in this frame.
    pub tests_passed: u64,
    /// Tests failed in this frame.
    pub tests_failed: u64,
    /// Vendor-received reports in this frame.
    pub reports: u64,
    /// Retries sent in this frame.
    pub retries: u64,
    /// Representatives waived in this frame.
    pub waivers: u64,
    /// Messages the fault injector dropped in this frame.
    pub faults_lost: u64,
    /// Messages the fault injector duplicated in this frame.
    pub faults_duplicated: u64,
    /// Reports deposited into the URR in this frame.
    pub urr_deposits: u64,
    /// Number of machines notified in this frame that converged (ever).
    pub converged: u64,
    /// Median notify → pass lag of machines notified in this frame.
    pub lag_p50: u64,
    /// 90th-percentile notify → pass lag.
    pub lag_p90: u64,
    /// 99th-percentile notify → pass lag.
    pub lag_p99: u64,
    /// `tests_failed / (tests_passed + tests_failed)`.
    pub failure_rate: f64,
    /// `retries / notified`.
    pub retry_amplification: f64,
    /// Watchdog verdict.
    pub status: HealthStatus,
    /// Per-cluster breakdown (clusters active in this frame, ascending
    /// id).
    pub clusters: Vec<ClusterHealth>,
}

impl WaveHealth {
    /// Serialises the frame (nested cluster breakdown included).
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("wave", Value::from(self.wave)),
            ("cluster", self.cluster.map_or(Value::Null, Value::from)),
            ("start", Value::from(self.start)),
            ("end", Value::from(self.end)),
            ("notified", Value::from(self.notified)),
            ("tests_passed", Value::from(self.tests_passed)),
            ("tests_failed", Value::from(self.tests_failed)),
            ("reports", Value::from(self.reports)),
            ("retries", Value::from(self.retries)),
            ("waivers", Value::from(self.waivers)),
            ("faults_lost", Value::from(self.faults_lost)),
            ("faults_duplicated", Value::from(self.faults_duplicated)),
            ("urr_deposits", Value::from(self.urr_deposits)),
            ("converged", Value::from(self.converged)),
            ("lag_p50", Value::from(self.lag_p50)),
            ("lag_p90", Value::from(self.lag_p90)),
            ("lag_p99", Value::from(self.lag_p99)),
            ("failure_rate", Value::from(self.failure_rate)),
            ("retry_amplification", Value::from(self.retry_amplification)),
            ("status", Value::str(self.status.name())),
            (
                "clusters",
                Value::Arr(
                    self.clusters
                        .iter()
                        .map(|c| {
                            Value::obj([
                                ("cluster", Value::from(c.cluster)),
                                ("notified", Value::from(c.notified)),
                                ("passed", Value::from(c.passed)),
                                ("failed", Value::from(c.failed)),
                                ("retries", Value::from(c.retries)),
                                ("failure_rate", Value::from(c.failure_rate)),
                                ("status", Value::str(c.status.name())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Exact quantile of a **sorted** lag sample (nearest-rank).
fn sorted_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

#[derive(Default)]
struct FrameAccum {
    notified: u64,
    passed: u64,
    failed: u64,
    reports: u64,
    retries: u64,
    waivers: u64,
    faults_lost: u64,
    faults_duplicated: u64,
    urr_deposits: u64,
    lags: Vec<u64>,
    clusters: std::collections::BTreeMap<u32, (u64, u64, u64, u64)>, // notified, passed, failed, retries
}

/// Folds a journal timeline into per-wave [`WaveHealth`] frames.
///
/// `machine_cluster` maps dense machine index → cluster id (the same
/// table the URR sink interns); machines outside the table are counted
/// in the wave totals but skipped in the per-cluster breakdown.
/// `run_end` closes the final frame (pass the simulation's completion
/// time, or the last journal timestamp).
pub fn rollup(
    entries: &[JournalEntry],
    machine_cluster: &[u32],
    run_end: u64,
    config: &WatchdogConfig,
) -> Vec<WaveHealth> {
    // Journal insertion order is only near-chronological (batched
    // drivers interleave with direct recorders), and the fold below is
    // a single chronological pass — restore strict (time, seq) order
    // first.
    let mut sorted: Vec<JournalEntry> = entries.to_vec();
    sorted.sort_unstable_by_key(|e| (e.time, e.seq));
    let entries = &sorted[..];
    // Frame boundaries: frame 0 opens at 0; each WaveAdvance opens the
    // next one.
    let mut boundaries: Vec<(u64, Option<u32>)> = vec![(0, None)];
    for e in entries {
        if let JournalEvent::WaveAdvance { cluster, .. } = e.event {
            boundaries.push((e.time, Some(cluster)));
        }
    }
    let mut frames: Vec<FrameAccum> = Vec::with_capacity(boundaries.len());
    frames.resize_with(boundaries.len(), FrameAccum::default);

    // Frame index for a timestamp: the last boundary at or before it.
    // Entries arrive in nondecreasing time order, so track a cursor.
    let mut cursor = 0usize;
    let frame_of = |cursor: &mut usize, time: u64, boundaries: &[(u64, Option<u32>)]| {
        while *cursor + 1 < boundaries.len() && boundaries[*cursor + 1].0 <= time {
            *cursor += 1;
        }
        *cursor
    };

    // First-notify frame/time per machine, for lag attribution.
    let max_machine = entries
        .iter()
        .filter_map(|e| match e.event {
            JournalEvent::Notify { machine, .. } => Some(machine as usize),
            _ => None,
        })
        .max()
        .map_or(0, |m| m + 1);
    let mut first_notify: Vec<Option<(u64, u32)>> = vec![None; max_machine];
    let mut first_pass: Vec<bool> = vec![false; max_machine];

    for e in entries {
        let f = frame_of(&mut cursor, e.time, &boundaries);
        match e.event {
            JournalEvent::Notify { machine, .. } => {
                frames[f].notified += 1;
                let m = machine as usize;
                if first_notify[m].is_none() {
                    first_notify[m] = Some((e.time, f as u32));
                }
                if let Some(c) = machine_cluster.get(m) {
                    frames[f].clusters.entry(*c).or_default().0 += 1;
                }
            }
            JournalEvent::Test {
                machine, problem, ..
            } => {
                let m = machine as usize;
                if problem == NO_PROBLEM {
                    frames[f].passed += 1;
                    if let Some(c) = machine_cluster.get(m) {
                        frames[f].clusters.entry(*c).or_default().1 += 1;
                    }
                    // Attribute convergence lag to the notifying frame.
                    if m < first_notify.len() && !first_pass[m] {
                        first_pass[m] = true;
                        if let Some((t0, f0)) = first_notify[m] {
                            frames[f0 as usize].lags.push(e.time.saturating_sub(t0));
                        }
                    }
                } else {
                    frames[f].failed += 1;
                    if let Some(c) = machine_cluster.get(m) {
                        frames[f].clusters.entry(*c).or_default().2 += 1;
                    }
                }
            }
            JournalEvent::Report { .. } => frames[f].reports += 1,
            JournalEvent::WaveAdvance { .. } => {}
            JournalEvent::Retry { machine, .. } => {
                frames[f].retries += 1;
                if let Some(c) = machine_cluster.get(machine as usize) {
                    frames[f].clusters.entry(*c).or_default().3 += 1;
                }
            }
            JournalEvent::Waiver { .. } => frames[f].waivers += 1,
            JournalEvent::Fault { fault, .. } => match fault {
                FaultKind::Loss => frames[f].faults_lost += 1,
                FaultKind::Duplication => frames[f].faults_duplicated += 1,
            },
            JournalEvent::UrrDeposit { .. } => frames[f].urr_deposits += 1,
            // Rollout decisions are campaign-scoped, not wave-scoped;
            // the rollup keys frames off WaveAdvance markers only.
            JournalEvent::Rollout { .. } => {}
        }
    }

    boundaries
        .iter()
        .enumerate()
        .zip(frames)
        .map(|((i, &(start, cluster)), mut acc)| {
            let end = boundaries
                .get(i + 1)
                .map_or_else(|| run_end.max(start), |b| b.0);
            acc.lags.sort_unstable();
            let failure_rate = rate(acc.failed, acc.passed + acc.failed);
            let retry_amplification = rate(acc.retries, acc.notified);
            let clusters = acc
                .clusters
                .iter()
                .map(|(&cid, &(notified, passed, failed, retries))| {
                    let failure_rate = rate(failed, passed + failed);
                    ClusterHealth {
                        cluster: cid,
                        notified,
                        passed,
                        failed,
                        retries,
                        failure_rate,
                        status: config.classify(failure_rate, rate(retries, notified), 0),
                    }
                })
                .collect();
            WaveHealth {
                wave: i as u32,
                cluster,
                start,
                end,
                notified: acc.notified,
                tests_passed: acc.passed,
                tests_failed: acc.failed,
                reports: acc.reports,
                retries: acc.retries,
                waivers: acc.waivers,
                faults_lost: acc.faults_lost,
                faults_duplicated: acc.faults_duplicated,
                urr_deposits: acc.urr_deposits,
                converged: acc.lags.len() as u64,
                lag_p50: sorted_quantile(&acc.lags, 0.50),
                lag_p90: sorted_quantile(&acc.lags, 0.90),
                lag_p99: sorted_quantile(&acc.lags, 0.99),
                failure_rate,
                retry_amplification,
                status: config.classify(failure_rate, retry_amplification, acc.waivers),
                clusters,
            }
        })
        .collect()
}

/// Serialises a rollup as a health report document:
/// `{"frames": [...], "worst": "<status>"}`.
pub fn health_report_json(frames: &[WaveHealth]) -> Value {
    let worst = frames
        .iter()
        .map(|f| f.status)
        .max()
        .unwrap_or(HealthStatus::Healthy);
    Value::obj([
        ("worst", Value::str(worst.name())),
        (
            "frames",
            Value::Arr(frames.iter().map(WaveHealth::to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(time: u64, seq: u64, event: JournalEvent) -> JournalEntry {
        JournalEntry { time, seq, event }
    }

    fn notify(time: u64, seq: u64, machine: u32) -> JournalEntry {
        entry(
            time,
            seq,
            JournalEvent::Notify {
                machine,
                release: 0,
            },
        )
    }

    fn pass(time: u64, seq: u64, machine: u32) -> JournalEntry {
        entry(
            time,
            seq,
            JournalEvent::Test {
                machine,
                release: 0,
                problem: NO_PROBLEM,
            },
        )
    }

    fn fail(time: u64, seq: u64, machine: u32) -> JournalEntry {
        entry(
            time,
            seq,
            JournalEvent::Test {
                machine,
                release: 0,
                problem: 0,
            },
        )
    }

    #[test]
    fn single_frame_without_waves() {
        let entries = [
            notify(0, 0, 0),
            notify(0, 1, 1),
            pass(10, 2, 0),
            pass(30, 3, 1),
        ];
        let frames = rollup(&entries, &[0, 0], 100, &WatchdogConfig::default());
        assert_eq!(frames.len(), 1);
        let f = &frames[0];
        assert_eq!((f.wave, f.cluster), (0, None));
        assert_eq!((f.start, f.end), (0, 100));
        assert_eq!(f.notified, 2);
        assert_eq!(f.tests_passed, 2);
        assert_eq!(f.converged, 2);
        assert_eq!((f.lag_p50, f.lag_p99), (10, 30));
        assert_eq!(f.status, HealthStatus::Healthy);
        assert_eq!(f.clusters.len(), 1);
        assert_eq!(f.clusters[0].notified, 2);
    }

    #[test]
    fn wave_advances_open_frames_and_lag_attributes_to_notify_frame() {
        let entries = [
            notify(0, 0, 0),
            entry(
                50,
                1,
                JournalEvent::WaveAdvance {
                    wave: 0,
                    cluster: 1,
                },
            ),
            notify(50, 2, 1),
            // Machine 0 converges during wave 1; lag belongs to frame 0.
            pass(60, 3, 0),
            pass(70, 4, 1),
        ];
        let frames = rollup(&entries, &[0, 1], 200, &WatchdogConfig::default());
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].cluster, None);
        assert_eq!((frames[0].start, frames[0].end), (0, 50));
        assert_eq!(frames[0].notified, 1);
        assert_eq!(frames[0].converged, 1);
        assert_eq!(frames[0].lag_p50, 60);
        assert_eq!(frames[1].cluster, Some(1));
        assert_eq!((frames[1].start, frames[1].end), (50, 200));
        assert_eq!(frames[1].notified, 1);
        assert_eq!(frames[1].lag_p50, 20);
        // The wave-1 pass of machine 0 still counts as a test there.
        assert_eq!(frames[1].tests_passed, 2);
    }

    #[test]
    fn watchdog_flags_failure_rate_and_retry_amplification() {
        let cfg = WatchdogConfig::default();
        // 1 failure / 2 tests = 50% failure rate -> unhealthy.
        let entries = [notify(0, 0, 0), pass(5, 1, 0), fail(6, 2, 1)];
        let frames = rollup(&entries, &[0, 0], 10, &cfg);
        assert_eq!(frames[0].status, HealthStatus::Unhealthy);

        // Retry amplification 1.0 with clean tests -> degraded.
        let entries = [
            notify(0, 0, 0),
            entry(
                5,
                1,
                JournalEvent::Retry {
                    machine: 0,
                    release: 0,
                    attempt: 0,
                },
            ),
            pass(9, 2, 0),
        ];
        let frames = rollup(&entries, &[0], 10, &cfg);
        assert_eq!(frames[0].retry_amplification, 1.0);
        assert_eq!(frames[0].status, HealthStatus::Degraded);

        // A waiver alone degrades the frame.
        let entries = [
            notify(0, 0, 0),
            pass(5, 1, 0),
            entry(
                8,
                2,
                JournalEvent::Waiver {
                    machine: 0,
                    release: 0,
                },
            ),
        ];
        let frames = rollup(&entries, &[0], 10, &cfg);
        assert_eq!(frames[0].status, HealthStatus::Degraded);
    }

    #[test]
    fn fault_deltas_and_report_counts() {
        let entries = [
            notify(0, 0, 0),
            entry(
                1,
                1,
                JournalEvent::Fault {
                    fault: FaultKind::Loss,
                    machine: 0,
                },
            ),
            entry(
                2,
                2,
                JournalEvent::Fault {
                    fault: FaultKind::Duplication,
                    machine: 0,
                },
            ),
            pass(5, 3, 0),
            entry(
                6,
                4,
                JournalEvent::Report {
                    machine: 0,
                    release: 0,
                    passed: true,
                },
            ),
            entry(
                6,
                5,
                JournalEvent::UrrDeposit {
                    machine: 0,
                    release: 0,
                    problem: NO_PROBLEM,
                },
            ),
        ];
        let frames = rollup(&entries, &[0], 10, &WatchdogConfig::default());
        let f = &frames[0];
        assert_eq!((f.faults_lost, f.faults_duplicated), (1, 1));
        assert_eq!(f.reports, 1);
        assert_eq!(f.urr_deposits, 1);
    }

    #[test]
    fn empty_journal_yields_one_quiet_frame() {
        let frames = rollup(&[], &[], 0, &WatchdogConfig::default());
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].status, HealthStatus::Healthy);
        assert_eq!(frames[0].notified, 0);
        let report = health_report_json(&frames);
        assert_eq!(report.get("worst").unwrap().as_str(), Some("healthy"));
    }

    #[test]
    fn report_json_parses_and_tracks_worst() {
        let entries = [notify(0, 0, 0), fail(5, 1, 0), fail(6, 2, 0)];
        let frames = rollup(&entries, &[0], 10, &WatchdogConfig::default());
        let doc = health_report_json(&frames);
        let text = doc.to_pretty();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back.get("worst").unwrap().as_str(), Some("unhealthy"));
        let arr = back.get("frames").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("status").unwrap().as_str(), Some("unhealthy"));
    }
}
