//! The campaign flight-recorder: a bounded ring of structured events.
//!
//! Campaigns and simulations emit one [`FlightEvent`] per interesting
//! state transition. The recorder keeps the most recent `capacity`
//! events (older ones are dropped but still *counted*), so memory stays
//! bounded on 100k-machine runs while the event taxonomy totals remain
//! exact.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use crate::json::Value;

/// One structured event in a campaign or simulation run.
///
/// The `*Id` variants carry **dense indexes** instead of names and are
/// what hot paths (the simulation driver) emit: building one never
/// allocates. Names are rendered lazily at export time via
/// [`FlightEvent::to_json_named`]. The string variants remain for
/// campaign-layer callers that already own owned names. An id variant
/// reports the same [`FlightEvent::kind`] as its string twin, so
/// taxonomy counts are stable across the two encodings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightEvent {
    /// A machine was told to download and test a release.
    MachineNotified {
        /// Machine id.
        machine: String,
        /// Release number it was notified about.
        release: u32,
    },
    /// Dense-id twin of [`FlightEvent::MachineNotified`].
    MachineNotifiedId {
        /// Dense machine index.
        machine: u32,
        /// Release number it was notified about.
        release: u32,
    },
    /// A machine's sandbox validation passed and it integrated.
    TestPassed {
        /// Machine id.
        machine: String,
        /// Release that passed.
        release: u32,
    },
    /// Dense-id twin of [`FlightEvent::TestPassed`].
    TestPassedId {
        /// Dense machine index.
        machine: u32,
        /// Release that passed.
        release: u32,
    },
    /// A machine's sandbox validation failed.
    TestFailed {
        /// Machine id.
        machine: String,
        /// Release that failed.
        release: u32,
        /// The failure signature / problem id.
        problem: String,
    },
    /// Dense-id twin of [`FlightEvent::TestFailed`].
    TestFailedId {
        /// Dense machine index.
        machine: u32,
        /// Release that failed.
        release: u32,
        /// Dense problem index.
        problem: u16,
    },
    /// A staged protocol advanced its deployment wave to a new cluster.
    WaveAdvanced {
        /// Position in the deployment order (0-based).
        wave: usize,
        /// Cluster id the wave advanced to.
        cluster: usize,
    },
    /// The vendor shipped a (corrected) release.
    ReleaseShipped {
        /// The release number.
        release: u32,
    },
    /// A previously unknown problem was discovered.
    ProblemDiscovered {
        /// The problem id / failure signature.
        problem: String,
    },
    /// Dense-id twin of [`FlightEvent::ProblemDiscovered`].
    ProblemDiscoveredId {
        /// Dense problem index.
        problem: u16,
    },
}

impl FlightEvent {
    /// The event's taxonomy name (stable, snake_case). Dense-id twins
    /// share their string variant's name.
    pub fn kind(&self) -> &'static str {
        match self {
            FlightEvent::MachineNotified { .. } | FlightEvent::MachineNotifiedId { .. } => {
                "machine_notified"
            }
            FlightEvent::TestPassed { .. } | FlightEvent::TestPassedId { .. } => "test_passed",
            FlightEvent::TestFailed { .. } | FlightEvent::TestFailedId { .. } => "test_failed",
            FlightEvent::WaveAdvanced { .. } => "wave_advanced",
            FlightEvent::ReleaseShipped { .. } => "release_shipped",
            FlightEvent::ProblemDiscovered { .. } | FlightEvent::ProblemDiscoveredId { .. } => {
                "problem_discovered"
            }
        }
    }

    /// Serialises the event payload (without the sequence number).
    /// Dense-id variants render their raw indexes; use
    /// [`FlightEvent::to_json_named`] to render names instead.
    pub fn to_json(&self) -> Value {
        self.to_json_named(&|m| Value::from(m), &|p| Value::from(u64::from(p)))
    }

    /// Serialises the event payload, rendering dense machine/problem
    /// ids through the supplied resolvers (the PR 3 pattern: ids on
    /// the hot path, names only at the export boundary).
    pub fn to_json_named(
        &self,
        machine: &dyn Fn(u32) -> Value,
        problem: &dyn Fn(u16) -> Value,
    ) -> Value {
        let mut pairs = vec![("event".to_string(), Value::str(self.kind()))];
        match self {
            FlightEvent::MachineNotified { machine, release }
            | FlightEvent::TestPassed { machine, release } => {
                pairs.push(("machine".into(), Value::str(machine.clone())));
                pairs.push(("release".into(), Value::from(*release)));
            }
            FlightEvent::MachineNotifiedId {
                machine: m,
                release,
            }
            | FlightEvent::TestPassedId {
                machine: m,
                release,
            } => {
                pairs.push(("machine".into(), machine(*m)));
                pairs.push(("release".into(), Value::from(*release)));
            }
            FlightEvent::TestFailed {
                machine,
                release,
                problem,
            } => {
                pairs.push(("machine".into(), Value::str(machine.clone())));
                pairs.push(("release".into(), Value::from(*release)));
                pairs.push(("problem".into(), Value::str(problem.clone())));
            }
            FlightEvent::TestFailedId {
                machine: m,
                release,
                problem: p,
            } => {
                pairs.push(("machine".into(), machine(*m)));
                pairs.push(("release".into(), Value::from(*release)));
                pairs.push(("problem".into(), problem(*p)));
            }
            FlightEvent::WaveAdvanced { wave, cluster } => {
                pairs.push(("wave".into(), Value::from(*wave)));
                pairs.push(("cluster".into(), Value::from(*cluster)));
            }
            FlightEvent::ReleaseShipped { release } => {
                pairs.push(("release".into(), Value::from(*release)));
            }
            FlightEvent::ProblemDiscovered { problem } => {
                pairs.push(("problem".into(), Value::str(problem.clone())));
            }
            FlightEvent::ProblemDiscoveredId { problem: p } => {
                pairs.push(("problem".into(), problem(*p)));
            }
        }
        Value::Obj(pairs)
    }
}

/// An event stamped with its global sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// Zero-based position in the run's full event stream.
    pub seq: u64,
    /// The event.
    pub event: FlightEvent,
}

impl TimedEvent {
    /// Serialises the event with its sequence number.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![("seq".to_string(), Value::from(self.seq))];
        if let Value::Obj(rest) = self.event.to_json() {
            pairs.extend(rest);
        }
        Value::Obj(pairs)
    }
}

#[derive(Debug, Default)]
struct FlightInner {
    buf: VecDeque<TimedEvent>,
    counts: BTreeMap<&'static str, u64>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring buffer of [`FlightEvent`]s with exact per-kind counts.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<FlightInner>,
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(FlightInner::default()),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an event, evicting the oldest if the ring is full.
    pub fn record(&self, event: FlightEvent) {
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        *inner.counts.entry(event.kind()).or_insert(0) += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(TimedEvent { seq, event });
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Exact number of events recorded per kind (including evicted).
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .counts
            .clone()
    }

    /// Total events ever recorded.
    pub fn total(&self) -> u64 {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .next_seq
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("flight recorder poisoned").dropped
    }

    /// Exports the retained events as JSON-lines (one object per line).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_json().to_compact());
            out.push('\n');
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notified(i: u32) -> FlightEvent {
        FlightEvent::MachineNotified {
            machine: format!("m{i}"),
            release: 0,
        }
    }

    #[test]
    fn records_in_order() {
        let r = FlightRecorder::new(8);
        r.record(notified(1));
        r.record(FlightEvent::ReleaseShipped { release: 1 });
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].event.kind(), "release_shipped");
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_wraps_but_counts_stay_exact() {
        let r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(notified(i));
        }
        r.record(FlightEvent::ProblemDiscovered {
            problem: "p".into(),
        });
        let events = r.events();
        // Only the newest 4 retained, sequence numbers preserved.
        assert_eq!(events.len(), 4);
        assert_eq!(events.first().unwrap().seq, 7);
        assert_eq!(events.last().unwrap().seq, 10);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.total(), 11);
        // Counts include evicted events.
        let counts = r.counts();
        assert_eq!(counts["machine_notified"], 10);
        assert_eq!(counts["problem_discovered"], 1);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let r = FlightRecorder::new(0);
        assert_eq!(r.capacity(), 1);
        r.record(notified(0));
        r.record(notified(1));
        assert_eq!(r.events().len(), 1);
    }

    #[test]
    fn capacity_zero_still_counts_everything_exactly() {
        let r = FlightRecorder::new(0);
        for i in 0..5 {
            r.record(notified(i));
        }
        r.record(FlightEvent::ReleaseShipped { release: 1 });
        // Only the newest event survives, but totals stay exact.
        let events = r.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 5);
        assert_eq!(events[0].event.kind(), "release_shipped");
        assert_eq!(r.total(), 6);
        assert_eq!(r.dropped(), 5);
        assert_eq!(r.counts()["machine_notified"], 5);
    }

    #[test]
    fn capacity_one_ring_wraps_every_record() {
        let r = FlightRecorder::new(1);
        r.record(notified(0));
        assert_eq!(r.dropped(), 0);
        r.record(notified(1));
        r.record(notified(2));
        let events = r.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 2);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.total(), 3);
    }

    #[test]
    fn dense_id_variants_share_kinds_and_render_lazily() {
        let by_id = FlightEvent::TestFailedId {
            machine: 17,
            release: 2,
            problem: 3,
        };
        let by_name = FlightEvent::TestFailed {
            machine: "c00-m00017".into(),
            release: 2,
            problem: "mysql/crash".into(),
        };
        assert_eq!(by_id.kind(), by_name.kind());
        assert_eq!(
            FlightEvent::MachineNotifiedId {
                machine: 0,
                release: 0
            }
            .kind(),
            "machine_notified"
        );
        assert_eq!(
            FlightEvent::TestPassedId {
                machine: 0,
                release: 0
            }
            .kind(),
            "test_passed"
        );
        assert_eq!(
            FlightEvent::ProblemDiscoveredId { problem: 3 }.kind(),
            "problem_discovered"
        );
        // Raw export keeps the dense index...
        let raw = by_id.to_json();
        assert_eq!(raw.get("machine").unwrap().as_u64(), Some(17));
        assert_eq!(raw.get("problem").unwrap().as_u64(), Some(3));
        // ...named export renders through the resolvers.
        let named = by_id.to_json_named(&|m| Value::str(format!("c00-m{m:05}")), &|p| {
            Value::str(format!("problem-{p}"))
        });
        assert_eq!(named.get("machine").unwrap().as_str(), Some("c00-m00017"));
        assert_eq!(named.get("problem").unwrap().as_str(), Some("problem-3"));
        assert_eq!(named.get("event").unwrap().as_str(), Some("test_failed"));
    }

    #[test]
    fn json_lines_export() {
        let r = FlightRecorder::new(8);
        r.record(FlightEvent::TestFailed {
            machine: "m1".into(),
            release: 2,
            problem: "php/crash".into(),
        });
        r.record(FlightEvent::WaveAdvanced {
            wave: 1,
            cluster: 3,
        });
        let exported = r.to_json_lines();
        let lines: Vec<&str> = exported.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = crate::json::Value::parse(lines[0]).unwrap();
        assert_eq!(first.get("event").unwrap().as_str(), Some("test_failed"));
        assert_eq!(first.get("problem").unwrap().as_str(), Some("php/crash"));
        let second = crate::json::Value::parse(lines[1]).unwrap();
        assert_eq!(second.get("wave").unwrap().as_u64(), Some(1));
        assert_eq!(second.get("cluster").unwrap().as_u64(), Some(3));
    }
}
