//! Atomic metric primitives: counters, gauges, fixed-bucket histograms.
//!
//! All types are lock-free after creation: recording from the hot path
//! is a handful of relaxed atomic operations. Aggregation (summaries,
//! percentiles) happens only when a [`crate::Snapshot`] is taken.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a point-in-time value plus its high-water mark.
///
/// The high-water mark is what a post-hoc snapshot needs — e.g. the
/// simulator's maximum event-queue depth over a whole run.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current value, updating the high-water mark.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set.
    pub fn high_water(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two, covering the full
/// `u64` range (bucket `i` holds values whose bit length is `i`, i.e.
/// `2^(i-1) <= v < 2^i`, with bucket 0 holding zero).
pub const BUCKETS: usize = 65;

/// A fixed-bucket (power-of-two) histogram with exact count/sum/min/max.
///
/// Percentile estimates come from the bucket boundaries, clamped to the
/// observed `[min, max]` range — so constant distributions report exact
/// percentiles and any estimate is within 2x of the true value.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0u64; BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`).
    ///
    /// Returns the upper bound of the bucket containing the rank-`q`
    /// sample, clamped into the observed `[min, max]`.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// The rank-`q` quantile with linear interpolation inside the
    /// selected power-of-two bucket, clamped to the observed
    /// `[min, max]`.
    ///
    /// Unlike [`Histogram::percentile`] (which always reports the
    /// bucket's upper bound), this interpolates by rank position
    /// within the bucket, so estimates no longer snap to powers of
    /// two. The result is **exact** whenever the observed range pins
    /// it down: an empty histogram returns 0, a single-sample (or
    /// constant) histogram returns that sample, `q = 0` returns the
    /// minimum, `q = 1` returns the maximum, and the saturating top
    /// bucket (values `>= 2^63`, including `u64::MAX`) clamps into the
    /// observed range instead of overflowing.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            cumulative += in_bucket;
            if cumulative >= rank {
                let (lower, upper) = if i == 0 {
                    (0u64, 0u64)
                } else if i >= 64 {
                    (1u64 << 63, u64::MAX)
                } else {
                    (1u64 << (i - 1), (1u64 << i) - 1)
                };
                // Position of the rank within this bucket, in (0, 1].
                let position = (rank - (cumulative - in_bucket)) as f64 / in_bucket as f64;
                let estimate = lower as f64 + (upper - lower) as f64 * position;
                return (estimate as u64).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Exact-where-possible median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Exact-where-possible 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Exact-where-possible 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Takes a point-in-time summary.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample (0 if empty).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::new();
        g.set(5);
        g.set(12);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 12);
    }

    #[test]
    fn bucket_indexing() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
        assert_eq!(h.summary().mean(), 0.0);
    }

    #[test]
    fn constant_distribution_is_exact() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe(100);
        }
        let s = h.summary();
        assert_eq!((s.p50, s.p90, s.p99), (100, 100, 100));
        assert_eq!(s.min, 100);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean(), 100.0);
    }

    #[test]
    fn percentiles_within_bucket_error() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!((s.min, s.max), (1, 1000));
        // True percentiles: 500, 900, 990. Power-of-two buckets put the
        // estimate at the enclosing bucket's upper bound, so the
        // estimate e satisfies true <= e < 2 * true.
        for (estimate, truth) in [(s.p50, 500u64), (s.p90, 900), (s.p99, 990)] {
            assert!(
                estimate >= truth && estimate < truth * 2,
                "estimate {estimate} for true percentile {truth}"
            );
        }
        // Extremes are exact thanks to min/max clamping.
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(1.0), 1000);
    }

    #[test]
    fn quantile_on_empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p90(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn quantile_on_single_sample_is_exact() {
        let h = Histogram::new();
        h.observe(37);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 37, "q = {q}");
        }
        assert_eq!((h.p50(), h.p90(), h.p99()), (37, 37, 37));
    }

    #[test]
    fn quantile_on_saturating_bucket_clamps_without_overflow() {
        let h = Histogram::new();
        // All samples land in bucket 64, which covers [2^63, u64::MAX].
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        h.observe(u64::MAX - 1);
        assert_eq!(h.p99(), u64::MAX);
        assert_eq!(h.quantile(0.0), u64::MAX - 1);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Interpolated mid-quantiles stay inside the observed range.
        let mid = h.p50();
        assert!(mid >= u64::MAX - 1);
    }

    #[test]
    fn quantile_interpolates_inside_buckets() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        // Interpolation keeps the estimate within one bucket of the
        // truth *without* snapping to the bucket's upper bound, and it
        // is monotone in q.
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        assert!(p50 <= p90 && p90 <= p99);
        for (estimate, truth) in [(p50, 500u64), (p90, 900), (p99, 990)] {
            assert!(
                estimate >= truth / 2 && estimate <= truth * 2,
                "estimate {estimate} for true percentile {truth}"
            );
        }
        // The old bucket-bound estimator snaps p50 to 511; the
        // interpolated one must not.
        assert_ne!(p50, 511);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        // Constant data stays exact.
        let c = Histogram::new();
        for _ in 0..10 {
            c.observe(64);
        }
        assert_eq!((c.p50(), c.p90(), c.p99()), (64, 64, 64));
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
    }
}
