//! A minimal, dependency-free JSON value, serialiser, and parser.
//!
//! The telemetry snapshot and the flight-recorder export need JSON, and
//! the Upgrade Report Repository serialises reports for transfer — but
//! this workspace must build with the registry unreachable, so `serde`
//! is not an option. This module implements the small subset the
//! workspace needs: a [`Value`] tree whose objects preserve insertion
//! order (deterministic output), a compact and a pretty serialiser, and
//! a recursive-descent parser.
//!
//! # Examples
//!
//! ```
//! use mirage_telemetry::json::Value;
//! let v = Value::obj([
//!     ("name", Value::str("mirage")),
//!     ("machines", Value::from(100_000u64)),
//! ]);
//! let text = v.to_string();
//! let back = Value::parse(&text).unwrap();
//! assert_eq!(back.get("machines").and_then(Value::as_u64), Some(100_000));
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve insertion order so serialisation is
/// deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers are exact to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as an ordered list of key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builds an object from an ordered list of pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Arr(items.into_iter().collect())
    }

    /// Builds an object from a `BTreeMap` (sorted key order).
    pub fn from_map<V: Into<Value>>(map: BTreeMap<String, V>) -> Value {
        Value::Obj(map.into_iter().map(|(k, v)| (k, v.into())).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serialises compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                })
            }
            Value::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                })
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no NaN/Inf; degrade to null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Num(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Num(v as f64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Num(v as f64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Num(v as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our
                            // own output; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::obj([
            ("s", Value::str("he\"llo\nworld")),
            ("n", Value::from(42u64)),
            ("f", Value::from(1.5)),
            ("neg", Value::from(-7i64)),
            ("b", Value::from(true)),
            ("z", Value::Null),
            ("a", Value::arr([Value::from(1u64), Value::str("two")])),
            ("o", Value::obj([("k", Value::str("v"))])),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(Value::parse(&text).unwrap(), v, "failed on {text}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Value::obj([("z", Value::from(1u64)), ("a", Value::from(2u64))]);
        assert_eq!(v.to_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn accessors() {
        let v = Value::parse(r#"{"a": [1, 2.5, "x", null, false]}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[1].as_u64(), None);
        assert_eq!(arr[2].as_str(), Some("x"));
        assert!(arr[3].is_null());
        assert_eq!(arr[4].as_bool(), Some(false));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "tab\t newline\n quote\" backslash\\ unicode\u{1F600} ctrl\u{1}";
        let v = Value::str(s);
        assert_eq!(Value::parse(&v.to_compact()).unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escape_parses() {
        let v = Value::parse(r#""aAb""#).unwrap();
        assert_eq!(v.as_str(), Some("aAb"));
    }

    #[test]
    fn parse_errors_carry_position() {
        for bad in ["{", "[1,", "tru", "\"x", "{\"a\" 1}", "", "1 2"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = Value::parse("[1, ?]").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn numbers_with_exponents() {
        assert_eq!(Value::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Value::parse("-2.5E-1").unwrap().as_f64(), Some(-0.25));
    }

    #[test]
    fn nonfinite_numbers_degrade_to_null() {
        assert_eq!(Value::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_compact(), "null");
    }
}
