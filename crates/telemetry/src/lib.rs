//! Fleet-wide observability for the Mirage reproduction.
//!
//! Mirage's value proposition (SOSP '07) is that the *vendor can watch*
//! a staged deployment: which clusters are testing, which
//! representatives failed, how fast the upgrade wave propagates. This
//! crate is the measurement layer that makes our campaigns and
//! simulations observable instead of black boxes. It is deliberately
//! **std-only** — no external dependencies — so it builds even when the
//! crate registry is unreachable, and it is safe to thread through every
//! hot path.
//!
//! Four pillars:
//!
//! 1. **Metrics registry** ([`Registry`]): atomic counters, gauges with
//!    high-water marks, and fixed-bucket histograms with p50/p90/p99
//!    summaries.
//! 2. **Hierarchical spans** ([`Telemetry::span`]): RAII guards that
//!    time phases (QT clustering iterations, heuristic identification,
//!    protocol command dispatch, campaign rounds) and aggregate the
//!    durations per span *path* (`campaign/deploy/round`).
//! 3. **Campaign flight-recorder** ([`FlightRecorder`]): a bounded ring
//!    buffer of structured [`FlightEvent`]s (machine notified / test
//!    pass / test fail / wave advanced / release shipped / problem
//!    discovered) exportable as JSON-lines and summarised in a
//!    [`Snapshot`].
//! 4. **Sim-time journal** ([`Journal`]): a bounded (optionally
//!    spilling) timeline of dense-id [`JournalEvent`]s stamped with
//!    the simulation clock, folded into per-wave health frames by
//!    [`health::rollup`] and exported as a Perfetto-loadable Chrome
//!    `trace_event` document by [`trace_export::chrome_trace`].
//!
//! Everything funnels through the cheap [`Recorder`] trait. The default
//! [`Telemetry::noop`] handle short-circuits before doing any work, so
//! uninstrumented callers pay a single branch. Instrumentation is
//! *deterministic-neutral*: recorders only observe, they never feed back
//! into simulation or campaign state, so an instrumented run produces
//! bit-identical results to an uninstrumented one.
//!
//! # Examples
//!
//! ```
//! use mirage_telemetry::{Registry, Telemetry, FlightEvent};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new(1024));
//! let telemetry = Telemetry::from_registry(Arc::clone(&registry));
//! {
//!     let _span = telemetry.span("campaign");
//!     telemetry.counter("machines_notified", 3);
//!     telemetry.event(FlightEvent::ReleaseShipped { release: 1 });
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["machines_notified"], 3);
//! assert_eq!(snap.spans["campaign"].count, 1);
//! assert_eq!(snap.event_counts["release_shipped"], 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod flight;
pub mod health;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod span;
pub mod trace_export;

pub use flight::{FlightEvent, FlightRecorder, TimedEvent};
pub use health::{ClusterHealth, HealthStatus, WatchdogConfig, WaveHealth};
pub use journal::{
    FaultKind, Journal, JournalEntry, JournalEvent, JournalKind, RolloutStep, NO_PROBLEM,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary};
pub use recorder::{Capabilities, NoopRecorder, Recorder, Telemetry};
pub use registry::{Registry, Snapshot};
pub use span::Span;
pub use trace_export::TraceConfig;
