//! The campaign journal: a bounded, sim-time-stamped event timeline.
//!
//! The flight recorder ([`crate::FlightRecorder`]) answers "*what*
//! happened" with exact per-kind totals; the journal answers "*when*
//! did it happen" so rollouts can be replayed, rolled up into per-wave
//! health frames ([`crate::health`]), and exported as a Chrome
//! `trace_event` timeline ([`crate::trace_export`]). Every entry is a
//! [`JournalEvent`] over **dense ids** — machine index, problem index,
//! release number — so recording never allocates: the ring storage is
//! laid out once at construction and entries are `Copy` overwrites.
//! Names are rendered lazily at export time by the callers that own the
//! id tables.
//!
//! Sim-time stamping works through a shared clock: the simulation
//! driver calls [`Journal::set_time`] (via
//! [`crate::Telemetry::journal_time`]) once per dequeued event, and
//! every entry recorded until the next call — including entries emitted
//! by protocol code that has no clock of its own — is stamped with that
//! time. Wall-clock never enters the journal, so journaled runs are
//! replayable and deterministic.
//!
//! The ring keeps the newest `capacity` entries. When **spill** is
//! enabled, evicted entries are appended to an unbounded side buffer
//! instead of being dropped, so a full-fidelity timeline survives for
//! export; either way the per-kind counts stay exact.
//!
//! Like every recorder surface in this crate the journal is strictly
//! observational: nothing reads it during a run, so a journaled
//! simulation is bit-identical to a plain one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Value;
use crate::recorder::{Capabilities, Recorder};

/// Sentinel problem id meaning "no problem" (a passing test).
///
/// Dense problem ids are `u16` indexes into the scenario's problem
/// table; `u16::MAX` is reserved as the none marker so [`JournalEvent`]
/// stays `Copy` without an `Option` niche.
pub const NO_PROBLEM: u16 = u16::MAX;

/// The journal's event taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum JournalKind {
    /// A machine was told to download and test a release.
    Notify,
    /// A machine finished its sandbox test (pass or fail).
    Test,
    /// The vendor received a machine's report.
    Report,
    /// A staged protocol advanced its wave to a new cluster.
    WaveAdvance,
    /// A notification was re-sent after a timeout.
    Retry,
    /// A representative was waived after exhausting its budget.
    Waiver,
    /// The fault injector perturbed a message.
    Fault,
    /// A received report was deposited into the Upgrade Report
    /// Repository.
    UrrDeposit,
    /// A rollout controller took a widen/hold/roll-back decision.
    Rollout,
}

impl JournalKind {
    /// Every kind, in taxonomy order.
    pub const ALL: [JournalKind; 9] = [
        JournalKind::Notify,
        JournalKind::Test,
        JournalKind::Report,
        JournalKind::WaveAdvance,
        JournalKind::Retry,
        JournalKind::Waiver,
        JournalKind::Fault,
        JournalKind::UrrDeposit,
        JournalKind::Rollout,
    ];

    /// The kind's stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            JournalKind::Notify => "notify",
            JournalKind::Test => "test",
            JournalKind::Report => "report",
            JournalKind::WaveAdvance => "wave_advance",
            JournalKind::Retry => "retry",
            JournalKind::Waiver => "waiver",
            JournalKind::Fault => "fault",
            JournalKind::UrrDeposit => "urr_deposit",
            JournalKind::Rollout => "rollout",
        }
    }
}

/// Which fault the injector applied to a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The message was silently dropped.
    Loss,
    /// The message was delivered twice.
    Duplication,
}

impl FaultKind {
    /// The fault's stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Loss => "loss",
            FaultKind::Duplication => "duplication",
        }
    }
}

/// Which way a rollout controller moved on one decision tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutStep {
    /// The next cohort was notified.
    Widen,
    /// The controller waited (bake timer, threshold, or guard
    /// hysteresis not yet satisfied).
    Hold,
    /// The campaign was aborted and every enrolled machine re-notified
    /// with the prior release.
    RollBack,
}

impl RolloutStep {
    /// The step's stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            RolloutStep::Widen => "widen",
            RolloutStep::Hold => "hold",
            RolloutStep::RollBack => "roll_back",
        }
    }
}

/// One dense-id journal event. `Copy`, pointer-sized payloads only —
/// recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalEvent {
    /// A machine was notified about a release.
    Notify {
        /// Dense machine index.
        machine: u32,
        /// Release number.
        release: u32,
    },
    /// A machine finished its sandbox test. `problem ==`
    /// [`NO_PROBLEM`] means the test passed.
    Test {
        /// Dense machine index.
        machine: u32,
        /// Release number.
        release: u32,
        /// Dense problem index, or [`NO_PROBLEM`] on a pass.
        problem: u16,
    },
    /// The vendor received a machine's report.
    Report {
        /// Dense machine index.
        machine: u32,
        /// Release number.
        release: u32,
        /// Whether the reported test passed.
        passed: bool,
    },
    /// A staged protocol advanced its wave.
    WaveAdvance {
        /// Position in the deployment order (0-based).
        wave: u32,
        /// Cluster id the wave advanced to.
        cluster: u32,
    },
    /// A notification was re-sent after a timeout.
    Retry {
        /// Dense machine index.
        machine: u32,
        /// Release number.
        release: u32,
        /// Zero-based retry attempt.
        attempt: u32,
    },
    /// A representative was waived after exhausting its report budget.
    Waiver {
        /// Dense machine index.
        machine: u32,
        /// Release number.
        release: u32,
    },
    /// The fault injector perturbed a message addressed to / sent by a
    /// machine.
    Fault {
        /// Which fault was applied.
        fault: FaultKind,
        /// Dense machine index of the affected endpoint.
        machine: u32,
    },
    /// A received report was deposited into the URR.
    UrrDeposit {
        /// Dense machine index.
        machine: u32,
        /// Release number.
        release: u32,
        /// Dense problem index, or [`NO_PROBLEM`] on a pass.
        problem: u16,
    },
    /// A rollout controller decided to widen, hold, or roll back.
    Rollout {
        /// Which way the controller moved.
        step: RolloutStep,
        /// Zero-based cohort the decision concerns (the cohort widened
        /// to, held at, or rolled back from).
        cohort: u32,
        /// Machines enrolled (notified of the campaign release) when
        /// the decision was taken — the exposure at that instant.
        machines: u32,
    },
}

impl JournalEvent {
    /// The event's taxonomy kind.
    pub fn kind(&self) -> JournalKind {
        match self {
            JournalEvent::Notify { .. } => JournalKind::Notify,
            JournalEvent::Test { .. } => JournalKind::Test,
            JournalEvent::Report { .. } => JournalKind::Report,
            JournalEvent::WaveAdvance { .. } => JournalKind::WaveAdvance,
            JournalEvent::Retry { .. } => JournalKind::Retry,
            JournalEvent::Waiver { .. } => JournalKind::Waiver,
            JournalEvent::Fault { .. } => JournalKind::Fault,
            JournalEvent::UrrDeposit { .. } => JournalKind::UrrDeposit,
            JournalEvent::Rollout { .. } => JournalKind::Rollout,
        }
    }

    /// Serialises the payload with raw dense ids (no name rendering).
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![("kind".to_string(), Value::str(self.kind().name()))];
        match *self {
            JournalEvent::Notify { machine, release } => {
                pairs.push(("machine".into(), Value::from(machine)));
                pairs.push(("release".into(), Value::from(release)));
            }
            JournalEvent::Test {
                machine,
                release,
                problem,
            } => {
                pairs.push(("machine".into(), Value::from(machine)));
                pairs.push(("release".into(), Value::from(release)));
                pairs.push(("passed".into(), Value::from(problem == NO_PROBLEM)));
                if problem != NO_PROBLEM {
                    pairs.push(("problem".into(), Value::from(u64::from(problem))));
                }
            }
            JournalEvent::Report {
                machine,
                release,
                passed,
            } => {
                pairs.push(("machine".into(), Value::from(machine)));
                pairs.push(("release".into(), Value::from(release)));
                pairs.push(("passed".into(), Value::from(passed)));
            }
            JournalEvent::WaveAdvance { wave, cluster } => {
                pairs.push(("wave".into(), Value::from(wave)));
                pairs.push(("cluster".into(), Value::from(cluster)));
            }
            JournalEvent::Retry {
                machine,
                release,
                attempt,
            } => {
                pairs.push(("machine".into(), Value::from(machine)));
                pairs.push(("release".into(), Value::from(release)));
                pairs.push(("attempt".into(), Value::from(attempt)));
            }
            JournalEvent::Waiver { machine, release } => {
                pairs.push(("machine".into(), Value::from(machine)));
                pairs.push(("release".into(), Value::from(release)));
            }
            JournalEvent::Fault { fault, machine } => {
                pairs.push(("fault".into(), Value::str(fault.name())));
                pairs.push(("machine".into(), Value::from(machine)));
            }
            JournalEvent::UrrDeposit {
                machine,
                release,
                problem,
            } => {
                pairs.push(("machine".into(), Value::from(machine)));
                pairs.push(("release".into(), Value::from(release)));
                pairs.push(("passed".into(), Value::from(problem == NO_PROBLEM)));
                if problem != NO_PROBLEM {
                    pairs.push(("problem".into(), Value::from(u64::from(problem))));
                }
            }
            JournalEvent::Rollout {
                step,
                cohort,
                machines,
            } => {
                pairs.push(("step".into(), Value::str(step.name())));
                pairs.push(("cohort".into(), Value::from(cohort)));
                pairs.push(("machines".into(), Value::from(machines)));
            }
        }
        Value::Obj(pairs)
    }
}

/// A journal entry: an event stamped with sim time and a global
/// sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// Sim time at which the event was recorded (whatever unit the
    /// driver's clock uses).
    pub time: u64,
    /// Zero-based position in the run's full event stream.
    pub seq: u64,
    /// The event.
    pub event: JournalEvent,
}

impl JournalEntry {
    /// Serialises the entry (time, seq, then the event payload).
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("time".to_string(), Value::from(self.time)),
            ("seq".to_string(), Value::from(self.seq)),
        ];
        if let Value::Obj(rest) = self.event.to_json() {
            pairs.extend(rest);
        }
        Value::Obj(pairs)
    }
}

#[derive(Debug, Default)]
struct JournalInner {
    /// Bounded ring storage (non-spill mode); grows to `capacity` once,
    /// then entries are overwritten in place.
    ring: Vec<JournalEntry>,
    /// Index of the oldest retained entry (non-spill mode).
    head: usize,
    /// Flat append-only timeline (spill mode). The logical "ring" is
    /// the last `capacity` entries and everything before them is the
    /// spill, so the hot path is a plain `Vec::push` — no eviction
    /// shuffle between two buffers. Sequence numbers are implicit
    /// (every spill-mode record appends exactly one element, so `seq ==
    /// index`), which keeps the stored tuple at 24 bytes — the write
    /// stream is the dominant journaling cost at fleet scale.
    all: Vec<(u64, JournalEvent)>,
    /// Exact per-kind totals (including evicted entries).
    counts: [u64; JournalKind::ALL.len()],
    next_seq: u64,
    dropped: u64,
}

impl JournalInner {
    /// Appends one entry, evicting into the drop count when a bounded
    /// ring is full. Called with the lock held.
    #[inline]
    fn push(&mut self, capacity: usize, spill: bool, time: u64, event: JournalEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.counts[event.kind() as usize] += 1;
        if spill {
            self.all.push((time, event));
            return;
        }
        let entry = JournalEntry { time, seq, event };
        if self.ring.len() < capacity {
            self.ring.push(entry);
        } else {
            let head = self.head;
            self.ring[head] = entry;
            self.head = (head + 1) % capacity;
            self.dropped += 1;
        }
    }
}

/// A bounded ring of [`JournalEntry`]s with exact per-kind counts, an
/// atomic sim-time clock, and an optional spill buffer.
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    spill: bool,
    clock: AtomicU64,
    inner: Mutex<JournalInner>,
}

impl Journal {
    /// Creates a journal keeping at most `capacity` entries in its ring
    /// (min 1); evicted entries are dropped (but still counted).
    pub fn new(capacity: usize) -> Self {
        Journal {
            capacity: capacity.max(1),
            spill: false,
            clock: AtomicU64::new(0),
            inner: Mutex::new(JournalInner::default()),
        }
    }

    /// Creates a journal that spills evicted entries to an unbounded
    /// side buffer instead of dropping them, preserving the full
    /// timeline for export.
    pub fn with_spill(capacity: usize) -> Self {
        Journal {
            spill: true,
            ..Journal::new(capacity)
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether evicted entries spill instead of dropping.
    pub fn spills(&self) -> bool {
        self.spill
    }

    /// Advances the sim-time clock; subsequent entries are stamped with
    /// `now` until the next call.
    pub fn set_time(&self, now: u64) {
        self.clock.store(now, Ordering::Relaxed);
    }

    /// The clock's current reading.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Records an event, stamped with the current clock reading.
    pub fn record(&self, event: JournalEvent) {
        let time = self.clock.load(Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("journal poisoned");
        inner.push(self.capacity, self.spill, time, event);
    }

    /// Records a batch of events, all stamped with the current clock
    /// reading — one lock acquisition for the whole batch. This is the
    /// hot-path API: a simulation step that notifies a cluster or
    /// completes a test emits its events in one call, so per-event cost
    /// amortises to a couple of nanoseconds.
    pub fn record_batch(&self, events: &[JournalEvent]) {
        if events.is_empty() {
            return;
        }
        let time = self.clock.load(Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("journal poisoned");
        for &event in events {
            inner.push(self.capacity, self.spill, time, event);
        }
    }

    /// Records a batch of events carrying explicit sim times — one lock
    /// acquisition for the whole batch and, in spill mode, a tight
    /// reserve-and-append loop. This is the coldest possible write
    /// path: a single-threaded driver buffers `(time, event)` pairs
    /// locally and flushes thousands at a time, amortising the lock to
    /// nothing. The clock is left at the batch's final time, exactly as
    /// if each event had been recorded under [`Journal::set_time`].
    pub fn record_timed(&self, batch: &[(u64, JournalEvent)]) {
        let Some(&(last_time, _)) = batch.last() else {
            return;
        };
        let mut inner = self.inner.lock().expect("journal poisoned");
        if self.spill {
            // Split the borrows so the loop keeps counts and the length
            // in registers: this path runs for every journaled event of
            // a fleet-scale run.
            let JournalInner {
                all,
                counts,
                next_seq,
                ..
            } = &mut *inner;
            all.extend_from_slice(batch);
            for &(_, event) in batch {
                counts[event.kind() as usize] += 1;
            }
            *next_seq += batch.len() as u64;
        } else {
            for &(time, event) in batch {
                inner.push(self.capacity, false, time, event);
            }
        }
        drop(inner);
        self.clock.store(last_time, Ordering::Relaxed);
    }

    /// Entries currently retained in the ring (not counting spill).
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("journal poisoned");
        if self.spill {
            inner.all.len().min(self.capacity)
        } else {
            inner.ring.len()
        }
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Total entries ever recorded.
    pub fn total(&self) -> u64 {
        self.inner.lock().expect("journal poisoned").next_seq
    }

    /// Entries evicted and *lost* (always 0 when spill is enabled).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("journal poisoned").dropped
    }

    /// Entries evicted into the spill buffer.
    pub fn spilled(&self) -> u64 {
        if !self.spill {
            return 0;
        }
        let inner = self.inner.lock().expect("journal poisoned");
        inner.all.len().saturating_sub(self.capacity) as u64
    }

    /// Exact per-kind totals, indexed by [`JournalKind::ALL`] order
    /// (includes evicted entries).
    pub fn counts(&self) -> [u64; JournalKind::ALL.len()] {
        self.inner.lock().expect("journal poisoned").counts
    }

    /// The retained timeline in insertion order: spilled entries (if
    /// any) followed by the ring contents.
    ///
    /// Insertion order is *near*-chronological: a driver that batches
    /// via [`Journal::record_timed`] may interleave slightly with
    /// entries recorded directly by other components, so consumers that
    /// fold the timeline chronologically should sort by `(time, seq)`
    /// first (the in-crate exporters do).
    pub fn entries(&self) -> Vec<JournalEntry> {
        let inner = self.inner.lock().expect("journal poisoned");
        if self.spill {
            return inner
                .all
                .iter()
                .enumerate()
                .map(|(seq, &(time, event))| JournalEntry {
                    time,
                    seq: seq as u64,
                    event,
                })
                .collect();
        }
        let mut out = Vec::with_capacity(inner.ring.len());
        out.extend_from_slice(&inner.ring[inner.head..]);
        out.extend_from_slice(&inner.ring[..inner.head]);
        out
    }

    /// Exports the retained timeline as JSON-lines (one entry per
    /// line).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in self.entries() {
            out.push_str(&e.to_json().to_compact());
            out.push('\n');
        }
        out
    }

    /// Clears the timeline, counts, and clock while keeping the ring
    /// and spill allocations warm, so a journal can be reused across
    /// benchmark samples without re-paying allocation and page faults.
    pub fn reset(&self) {
        self.clock.store(0, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("journal poisoned");
        inner.ring.clear();
        inner.all.clear();
        inner.head = 0;
        inner.counts = [0; JournalKind::ALL.len()];
        inner.next_seq = 0;
        inner.dropped = 0;
    }
}

/// A `Journal` can be attached on its own — without a full
/// [`crate::Registry`] — when only the sim-time timeline is wanted:
/// `Telemetry::from_recorder(Arc::new(Journal::with_spill(n)))`.
/// Counters, gauges, spans, and flight events fall through to the
/// trait's no-op defaults, and the advertised
/// [`Capabilities::JOURNAL_ONLY`] lets the `Telemetry` handle skip
/// those surfaces without even a virtual call — the run pays for
/// nothing but the journal.
impl Recorder for Journal {
    fn capabilities(&self) -> Capabilities {
        Capabilities::JOURNAL_ONLY
    }

    fn journal_time(&self, now: u64) {
        self.set_time(now);
    }

    fn record_journal(&self, event: JournalEvent) {
        self.record(event);
    }

    fn record_journal_batch(&self, events: &[JournalEvent]) {
        self.record_batch(events);
    }

    fn record_journal_timed(&self, batch: &[(u64, JournalEvent)]) {
        self.record_timed(batch);
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notify(i: u32) -> JournalEvent {
        JournalEvent::Notify {
            machine: i,
            release: 0,
        }
    }

    #[test]
    fn stamps_with_clock_and_orders_entries() {
        let j = Journal::new(8);
        j.record(notify(0));
        j.set_time(25);
        j.record(JournalEvent::Test {
            machine: 0,
            release: 0,
            problem: NO_PROBLEM,
        });
        j.set_time(40);
        j.record(JournalEvent::Report {
            machine: 0,
            release: 0,
            passed: true,
        });
        let entries = j.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries.iter().map(|e| e.time).collect::<Vec<_>>(),
            [0, 25, 40]
        );
        assert_eq!(entries.iter().map(|e| e.seq).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(j.now(), 40);
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn ring_wraps_and_drops_without_spill() {
        let j = Journal::new(4);
        for i in 0..11 {
            j.record(notify(i));
        }
        let entries = j.entries();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries.first().unwrap().seq, 7);
        assert_eq!(entries.last().unwrap().seq, 10);
        assert_eq!(j.total(), 11);
        assert_eq!(j.dropped(), 7);
        assert_eq!(j.spilled(), 0);
        assert_eq!(j.counts()[JournalKind::Notify as usize], 11);
    }

    #[test]
    fn spill_preserves_full_timeline() {
        let j = Journal::with_spill(4);
        for i in 0..11 {
            j.record(notify(i));
        }
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.spilled(), 7);
        let entries = j.entries();
        assert_eq!(entries.len(), 11);
        // Spill + ring reassemble the full stream in order.
        assert_eq!(
            entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (0..11).collect::<Vec<_>>()
        );
    }

    #[test]
    fn capacity_clamps_to_one() {
        let j = Journal::new(0);
        assert_eq!(j.capacity(), 1);
        j.record(notify(0));
        j.record(notify(1));
        assert_eq!(j.len(), 1);
        assert_eq!(j.entries()[0].seq, 1);
        assert_eq!(j.total(), 2);
        assert_eq!(j.dropped(), 1);
    }

    #[test]
    fn per_kind_counts_are_exact() {
        let j = Journal::new(2);
        j.record(notify(1));
        j.record(JournalEvent::Retry {
            machine: 1,
            release: 0,
            attempt: 0,
        });
        j.record(JournalEvent::Retry {
            machine: 1,
            release: 0,
            attempt: 1,
        });
        j.record(JournalEvent::Fault {
            fault: FaultKind::Loss,
            machine: 1,
        });
        let counts = j.counts();
        assert_eq!(counts[JournalKind::Notify as usize], 1);
        assert_eq!(counts[JournalKind::Retry as usize], 2);
        assert_eq!(counts[JournalKind::Fault as usize], 1);
        assert_eq!(counts[JournalKind::Test as usize], 0);
        assert_eq!(j.total(), 4);
    }

    #[test]
    fn json_lines_roundtrip() {
        let j = Journal::new(8);
        j.set_time(7);
        j.record(JournalEvent::Test {
            machine: 3,
            release: 1,
            problem: 2,
        });
        j.record(JournalEvent::WaveAdvance {
            wave: 1,
            cluster: 4,
        });
        j.record(JournalEvent::UrrDeposit {
            machine: 3,
            release: 1,
            problem: NO_PROBLEM,
        });
        let lines: Vec<String> = j.to_json_lines().lines().map(String::from).collect();
        assert_eq!(lines.len(), 3);
        let first = Value::parse(&lines[0]).unwrap();
        assert_eq!(first.get("kind").unwrap().as_str(), Some("test"));
        assert_eq!(first.get("time").unwrap().as_u64(), Some(7));
        assert_eq!(first.get("passed").unwrap().as_bool(), Some(false));
        assert_eq!(first.get("problem").unwrap().as_u64(), Some(2));
        let second = Value::parse(&lines[1]).unwrap();
        assert_eq!(second.get("kind").unwrap().as_str(), Some("wave_advance"));
        assert_eq!(second.get("cluster").unwrap().as_u64(), Some(4));
        let third = Value::parse(&lines[2]).unwrap();
        assert_eq!(third.get("kind").unwrap().as_str(), Some("urr_deposit"));
        assert_eq!(third.get("passed").unwrap().as_bool(), Some(true));
        assert!(third.get("problem").is_none());
    }

    #[test]
    fn concurrent_recording_keeps_exact_totals() {
        use std::sync::Arc;
        let j = Arc::new(Journal::with_spill(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        j.record(notify(t * 1000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.total(), 2000);
        assert_eq!(j.entries().len(), 2000);
        // Sequence numbers are unique and dense.
        let mut seqs: Vec<u64> = j.entries().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..2000).collect::<Vec<_>>());
    }
}
