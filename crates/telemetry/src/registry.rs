//! The metrics registry and its exportable snapshot.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crate::flight::{FlightEvent, FlightRecorder, TimedEvent};
use crate::journal::{Journal, JournalEvent, JournalKind};
use crate::json::Value;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSummary};
use crate::recorder::Recorder;

/// A point-in-time gauge reading.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Last value set.
    pub value: i64,
    /// Highest value ever set.
    pub high_water: i64,
}

/// The live metrics store behind an instrumented run.
///
/// Lookup uses a read-lock fast path; the write lock is taken only the
/// first time a metric name appears. Recording itself is lock-free
/// atomics (counters, gauges, histograms) or a short critical section
/// (flight events).
#[derive(Debug)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    spans: RwLock<BTreeMap<String, Arc<Histogram>>>,
    flight: FlightRecorder,
    journal: Journal,
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().expect("registry poisoned").get(name) {
        return Arc::clone(found);
    }
    let mut write = map.write().expect("registry poisoned");
    Arc::clone(write.entry(name.to_string()).or_default())
}

impl Registry {
    /// Creates a registry whose flight recorder and journal each keep
    /// `event_capacity` entries (journal evictions are dropped, not
    /// spilled).
    pub fn new(event_capacity: usize) -> Self {
        Registry::with_journal(event_capacity, Journal::new(event_capacity))
    }

    /// Creates a registry with an explicitly configured journal — e.g.
    /// [`Journal::with_spill`] when a full-fidelity timeline is wanted
    /// for trace export or health rollups.
    pub fn with_journal(event_capacity: usize, journal: Journal) -> Self {
        Registry {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            spans: RwLock::new(BTreeMap::new()),
            flight: FlightRecorder::new(event_capacity),
            journal,
        }
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The sim-time journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Takes a consistent-enough point-in-time snapshot of everything.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    GaugeSnapshot {
                        value: v.get(),
                        high_water: v.high_water(),
                    },
                )
            })
            .collect();
        let summarize = |map: &RwLock<BTreeMap<String, Arc<Histogram>>>| {
            map.read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect::<BTreeMap<String, HistogramSummary>>()
        };
        Snapshot {
            counters,
            gauges,
            histograms: summarize(&self.histograms),
            spans: summarize(&self.spans),
            event_counts: self
                .flight
                .counts()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            events_total: self.flight.total(),
            events_dropped: self.flight.dropped(),
            events: self.flight.events(),
            journal_counts: JournalKind::ALL
                .iter()
                .zip(self.journal.counts())
                .filter(|(_, n)| *n > 0)
                .map(|(k, n)| (k.name().to_string(), n))
                .collect(),
            journal_total: self.journal.total(),
            journal_dropped: self.journal.dropped(),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(65_536)
    }
}

impl Recorder for Registry {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &str, delta: u64) {
        get_or_insert(&self.counters, name).add(delta);
    }

    fn gauge_set(&self, name: &str, value: i64) {
        get_or_insert(&self.gauges, name).set(value);
    }

    fn observe(&self, name: &str, value: u64) {
        get_or_insert(&self.histograms, name).observe(value);
    }

    fn record_span(&self, path: &str, nanos: u64) {
        get_or_insert(&self.spans, path).observe(nanos);
    }

    fn record_event(&self, event: FlightEvent) {
        self.flight.record(event);
    }

    fn journal_time(&self, now: u64) {
        self.journal.set_time(now);
    }

    fn record_journal(&self, event: JournalEvent) {
        self.journal.record(event);
    }

    fn record_journal_batch(&self, events: &[JournalEvent]) {
        self.journal.record_batch(events);
    }

    fn record_journal_timed(&self, batch: &[(u64, JournalEvent)]) {
        self.journal.record_timed(batch);
    }
}

/// A frozen, serialisable view of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge readings by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Span timing summaries by nested path (values in nanoseconds).
    pub spans: BTreeMap<String, HistogramSummary>,
    /// Exact flight-event counts by kind (includes evicted events).
    pub event_counts: BTreeMap<String, u64>,
    /// Total flight events recorded.
    pub events_total: u64,
    /// Flight events evicted from the ring.
    pub events_dropped: u64,
    /// The retained flight events, oldest first.
    pub events: Vec<TimedEvent>,
    /// Exact journal-entry counts by kind (kinds with zero entries are
    /// omitted).
    pub journal_counts: BTreeMap<String, u64>,
    /// Total journal entries recorded.
    pub journal_total: u64,
    /// Journal entries evicted and lost (0 when spill is enabled).
    pub journal_dropped: u64,
}

fn summary_json(s: &HistogramSummary) -> Value {
    Value::obj([
        ("count", Value::from(s.count)),
        ("sum", Value::from(s.sum)),
        ("min", Value::from(s.min)),
        ("max", Value::from(s.max)),
        ("mean", Value::from(s.mean())),
        ("p50", Value::from(s.p50)),
        ("p90", Value::from(s.p90)),
        ("p99", Value::from(s.p99)),
    ])
}

impl Snapshot {
    /// Serialises the snapshot as a pretty-printed JSON object.
    ///
    /// Layout: `{"counters": {...}, "gauges": {...}, "histograms":
    /// {...}, "spans": {...}, "flight": {"counts": {...}, "total": n,
    /// "dropped": n, "events": [...]}}`. Span durations are
    /// nanoseconds.
    pub fn to_json(&self) -> String {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::from(*v)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(k, g)| {
                    (
                        k.clone(),
                        Value::obj([
                            ("value", Value::from(g.value)),
                            ("high_water", Value::from(g.high_water)),
                        ]),
                    )
                })
                .collect(),
        );
        let histo = |m: &BTreeMap<String, HistogramSummary>| {
            Value::Obj(
                m.iter()
                    .map(|(k, s)| (k.clone(), summary_json(s)))
                    .collect(),
            )
        };
        let flight = Value::obj([
            (
                "counts",
                Value::Obj(
                    self.event_counts
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                        .collect(),
                ),
            ),
            ("total", Value::from(self.events_total)),
            ("dropped", Value::from(self.events_dropped)),
            (
                "events",
                Value::Arr(self.events.iter().map(|e| e.to_json()).collect()),
            ),
        ]);
        let journal = Value::obj([
            (
                "counts",
                Value::Obj(
                    self.journal_counts
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                        .collect(),
                ),
            ),
            ("total", Value::from(self.journal_total)),
            ("dropped", Value::from(self.journal_dropped)),
        ]);
        Value::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histo(&self.histograms)),
            ("spans", histo(&self.spans)),
            ("flight", flight),
            ("journal", journal),
        ])
        .to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Telemetry;

    #[test]
    fn registry_stores_all_metric_kinds() {
        let registry = Arc::new(Registry::new(8));
        let t = Telemetry::from_registry(Arc::clone(&registry));
        assert!(t.enabled());
        t.counter("tests_total", 2);
        t.counter("tests_total", 3);
        t.gauge("queue_depth", 7);
        t.gauge("queue_depth", 4);
        t.observe("batch_size", 16);
        t.event(FlightEvent::ReleaseShipped { release: 1 });
        {
            let _s = t.span("phase");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counters["tests_total"], 5);
        assert_eq!(snap.gauges["queue_depth"].value, 4);
        assert_eq!(snap.gauges["queue_depth"].high_water, 7);
        assert_eq!(snap.histograms["batch_size"].count, 1);
        assert_eq!(snap.spans["phase"].count, 1);
        assert_eq!(snap.event_counts["release_shipped"], 1);
        assert_eq!(snap.events_total, 1);
    }

    #[test]
    fn journal_flows_through_registry_and_snapshot() {
        let registry = Arc::new(Registry::with_journal(16, Journal::with_spill(4)));
        let t = Telemetry::from_registry(Arc::clone(&registry));
        t.journal_time(30);
        t.journal(JournalEvent::Notify {
            machine: 2,
            release: 0,
        });
        t.journal(JournalEvent::Test {
            machine: 2,
            release: 0,
            problem: crate::journal::NO_PROBLEM,
        });
        assert_eq!(registry.journal().now(), 30);
        let entries = registry.journal().entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].time, 30);
        let snap = registry.snapshot();
        assert_eq!(snap.journal_total, 2);
        assert_eq!(snap.journal_counts["notify"], 1);
        assert_eq!(snap.journal_counts["test"], 1);
        assert!(!snap.journal_counts.contains_key("retry"));
        let v = Value::parse(&snap.to_json()).unwrap();
        assert_eq!(
            v.get("journal")
                .unwrap()
                .get("counts")
                .unwrap()
                .get("notify")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            v.get("journal").unwrap().get("total").unwrap().as_u64(),
            Some(2)
        );
    }

    #[test]
    fn snapshot_serialises_and_parses() {
        let registry = Registry::new(8);
        registry.add("c", 1);
        registry.gauge_set("g", -3);
        registry.observe("h", 10);
        registry.record_span("a/b", 1_000);
        registry.record_event(FlightEvent::TestPassed {
            machine: "m".into(),
            release: 0,
        });
        let json = registry.snapshot().to_json();
        let v = Value::parse(&json).expect("snapshot JSON parses");
        assert_eq!(
            v.get("counters").unwrap().get("c").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            v.get("gauges")
                .unwrap()
                .get("g")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(-3.0)
        );
        assert!(v.get("spans").unwrap().get("a/b").is_some());
        let events = v
            .get("flight")
            .unwrap()
            .get("events")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(
            events[0].get("event").unwrap().as_str(),
            Some("test_passed")
        );
    }

    #[test]
    fn concurrent_recording() {
        let registry = Arc::new(Registry::new(1024));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        r.add("n", 1);
                        r.observe("v", i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counters["n"], 8000);
        assert_eq!(snap.histograms["v"].count, 8000);
    }
}
