//! Chrome `trace_event` export of a campaign journal.
//!
//! Produces the JSON object format consumed by Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`: a top-level
//! `{"traceEvents": [...]}` document. Deployment waves become **async
//! slices** (`ph: "b"` / `ph: "e"` pairs on pid 1), so the staged
//! rollout reads as a banded timeline; a deterministic sample of
//! machines becomes per-machine **tracks** (pid 2, one tid per sampled
//! machine) carrying a complete (`ph: "X"`) slice from first notify to
//! first pass plus instant (`ph: "i"`) marks for failures, retries,
//! and injected faults. Machine and problem names are rendered lazily
//! through caller-supplied resolvers — the journal itself only stores
//! dense ids.
//!
//! Sim time maps 1:1 onto trace microseconds (`ts` is µs in the
//! `trace_event` format); sim timestamps are abstract units, so the
//! scale is only about readable zoom levels, not wall-clock truth.

use std::collections::BTreeMap;

use crate::journal::{JournalEntry, JournalEvent, NO_PROBLEM};
use crate::json::Value;

/// Export knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum number of machine tracks to emit (sampled evenly across
    /// the notified machine-id range). 0 disables machine tracks.
    pub max_machine_tracks: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            max_machine_tracks: 32,
        }
    }
}

fn meta(pid: u64, name: &str) -> Value {
    Value::obj([
        ("name", Value::str("process_name")),
        ("ph", Value::str("M")),
        ("pid", Value::from(pid)),
        ("tid", Value::from(0u64)),
        ("args", Value::obj([("name", Value::str(name))])),
    ])
}

fn thread_meta(pid: u64, tid: u64, name: &str) -> Value {
    Value::obj([
        ("name", Value::str("thread_name")),
        ("ph", Value::str("M")),
        ("pid", Value::from(pid)),
        ("tid", Value::from(tid)),
        ("args", Value::obj([("name", Value::str(name))])),
    ])
}

fn async_event(ph: &str, name: &str, id: u64, ts: u64) -> Value {
    Value::obj([
        ("name", Value::str(name)),
        ("cat", Value::str("wave")),
        ("ph", Value::str(ph)),
        ("id", Value::from(id)),
        ("ts", Value::from(ts)),
        ("pid", Value::from(1u64)),
        ("tid", Value::from(0u64)),
    ])
}

fn instant(name: &str, cat: &str, ts: u64, tid: u64) -> Value {
    Value::obj([
        ("name", Value::str(name)),
        ("cat", Value::str(cat)),
        ("ph", Value::str("i")),
        ("s", Value::str("t")),
        ("ts", Value::from(ts)),
        ("pid", Value::from(2u64)),
        ("tid", Value::from(tid)),
    ])
}

/// Renders a journal timeline as a Chrome `trace_event` document.
///
/// `run_end` closes any open wave slice and any never-converged
/// machine slice. Resolvers turn dense ids into display names.
pub fn chrome_trace(
    entries: &[JournalEntry],
    run_end: u64,
    machine_name: &dyn Fn(u32) -> String,
    problem_name: &dyn Fn(u16) -> String,
    config: &TraceConfig,
) -> Value {
    // Restore strict chronological order — insertion order is only
    // near-chronological when the driver batches journal writes.
    let mut sorted: Vec<JournalEntry> = entries.to_vec();
    sorted.sort_unstable_by_key(|e| (e.time, e.seq));
    let entries = &sorted[..];
    let mut events = Vec::new();
    events.push(meta(1, "deployment waves"));
    events.push(meta(2, "sampled machines"));

    // --- Waves as async slices -------------------------------------
    // Slice 0 ("stage 0") opens at t=0; each WaveAdvance closes the
    // open slice and opens the next one.
    let mut open = (0u64, "stage 0".to_string());
    let mut slice_id = 0u64;
    for e in entries {
        if let JournalEvent::WaveAdvance { wave, cluster } = e.event {
            let (start, name) = open;
            events.push(async_event("b", &name, slice_id, start));
            events.push(async_event("e", &name, slice_id, e.time));
            slice_id += 1;
            open = (e.time, format!("wave {} → cluster {cluster}", wave + 1));
        }
    }
    let (start, name) = open;
    events.push(async_event("b", &name, slice_id, start));
    events.push(async_event("e", &name, slice_id, run_end.max(start)));

    // --- Sampled machine tracks ------------------------------------
    if config.max_machine_tracks > 0 {
        // Deterministic sample: collect machines in first-notify order,
        // then take an even stride across that order.
        let mut notified: Vec<u32> = Vec::new();
        let mut seen: BTreeMap<u32, ()> = BTreeMap::new();
        for e in entries {
            if let JournalEvent::Notify { machine, .. } = e.event {
                if seen.insert(machine, ()).is_none() {
                    notified.push(machine);
                }
            }
        }
        let stride = notified.len().div_ceil(config.max_machine_tracks).max(1);
        let sampled: BTreeMap<u32, u64> = notified
            .iter()
            .step_by(stride)
            .enumerate()
            .map(|(track, &m)| (m, track as u64))
            .collect();
        for (&m, &tid) in &sampled {
            events.push(thread_meta(2, tid, &machine_name(m)));
        }

        let mut open_test: BTreeMap<u32, u64> = BTreeMap::new();
        for e in entries {
            match e.event {
                JournalEvent::Notify { machine, .. } if sampled.contains_key(&machine) => {
                    open_test.entry(machine).or_insert(e.time);
                }
                JournalEvent::Test {
                    machine, problem, ..
                } => {
                    let Some(&tid) = sampled.get(&machine) else {
                        continue;
                    };
                    if problem == NO_PROBLEM {
                        if let Some(start) = open_test.remove(&machine) {
                            events.push(complete("test+integrate", start, e.time, tid));
                        }
                    } else {
                        events.push(instant(&problem_name(problem), "failure", e.time, tid));
                    }
                }
                JournalEvent::Retry {
                    machine, attempt, ..
                } => {
                    if let Some(&tid) = sampled.get(&machine) {
                        events.push(instant(&format!("retry #{attempt}"), "retry", e.time, tid));
                    }
                }
                JournalEvent::Fault { fault, machine } => {
                    if let Some(&tid) = sampled.get(&machine) {
                        events.push(instant(fault.name(), "fault", e.time, tid));
                    }
                }
                _ => {}
            }
        }
        // Machines that never converged: emit the open slice to run end.
        for (machine, start) in open_test {
            let tid = sampled[&machine];
            events.push(complete(
                "test (unconverged)",
                start,
                run_end.max(start),
                tid,
            ));
        }
    }

    Value::obj([
        ("displayTimeUnit", Value::str("ms")),
        ("traceEvents", Value::Arr(events)),
    ])
}

fn complete(name: &str, start: u64, end: u64, tid: u64) -> Value {
    Value::obj([
        ("name", Value::str(name)),
        ("cat", Value::str("machine")),
        ("ph", Value::str("X")),
        ("ts", Value::from(start)),
        ("dur", Value::from(end.saturating_sub(start))),
        ("pid", Value::from(2u64)),
        ("tid", Value::from(tid)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::FaultKind;

    fn entry(time: u64, seq: u64, event: JournalEvent) -> JournalEntry {
        JournalEntry { time, seq, event }
    }

    fn trace(entries: &[JournalEntry], run_end: u64, cfg: &TraceConfig) -> Value {
        chrome_trace(
            entries,
            run_end,
            &|m| format!("m{m}"),
            &|p| format!("p{p}"),
            cfg,
        )
    }

    fn phases(doc: &Value) -> Vec<(&str, &str)> {
        doc.get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|e| {
                (
                    e.get("ph").unwrap().as_str().unwrap(),
                    e.get("name").unwrap().as_str().unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn wave_slices_are_balanced_and_cover_the_run() {
        let entries = [
            entry(
                0,
                0,
                JournalEvent::Notify {
                    machine: 0,
                    release: 0,
                },
            ),
            entry(
                100,
                1,
                JournalEvent::WaveAdvance {
                    wave: 0,
                    cluster: 2,
                },
            ),
            entry(
                250,
                2,
                JournalEvent::WaveAdvance {
                    wave: 1,
                    cluster: 5,
                },
            ),
        ];
        let doc = trace(&entries, 400, &TraceConfig::default());
        let text = doc.to_compact();
        let back = Value::parse(&text).unwrap();
        let events = back.get("traceEvents").unwrap().as_array().unwrap();
        let begins: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("b"))
            .collect();
        let ends: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("e"))
            .collect();
        assert_eq!(begins.len(), 3, "stage 0 + two advances");
        assert_eq!(begins.len(), ends.len());
        // Slices tile the timeline: [0,100], [100,250], [250,400].
        let spans: Vec<(u64, u64)> = begins
            .iter()
            .zip(&ends)
            .map(|(b, e)| {
                (
                    b.get("ts").unwrap().as_u64().unwrap(),
                    e.get("ts").unwrap().as_u64().unwrap(),
                )
            })
            .collect();
        assert_eq!(spans, [(0, 100), (100, 250), (250, 400)]);
        assert_eq!(
            begins[1].get("name").unwrap().as_str(),
            Some("wave 1 → cluster 2")
        );
    }

    #[test]
    fn machine_tracks_render_slices_and_instants_with_names() {
        let entries = [
            entry(
                0,
                0,
                JournalEvent::Notify {
                    machine: 7,
                    release: 0,
                },
            ),
            entry(
                3,
                1,
                JournalEvent::Fault {
                    fault: FaultKind::Loss,
                    machine: 7,
                },
            ),
            entry(
                10,
                2,
                JournalEvent::Retry {
                    machine: 7,
                    release: 0,
                    attempt: 0,
                },
            ),
            entry(
                20,
                3,
                JournalEvent::Test {
                    machine: 7,
                    release: 0,
                    problem: 3,
                },
            ),
            entry(
                35,
                4,
                JournalEvent::Test {
                    machine: 7,
                    release: 0,
                    problem: NO_PROBLEM,
                },
            ),
        ];
        let doc = trace(&entries, 50, &TraceConfig::default());
        let ph = phases(&doc);
        assert!(ph.contains(&("M", "thread_name")));
        assert!(ph.contains(&("X", "test+integrate")));
        assert!(ph.contains(&("i", "retry #0")));
        assert!(ph.contains(&("i", "loss")));
        assert!(ph.contains(&("i", "p3")));
        // The thread metadata carries the resolved machine name.
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let thread = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .unwrap();
        assert_eq!(
            thread.get("args").unwrap().get("name").unwrap().as_str(),
            Some("m7")
        );
        // The complete slice spans notify -> pass.
        let x = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(x.get("ts").unwrap().as_u64(), Some(0));
        assert_eq!(x.get("dur").unwrap().as_u64(), Some(35));
    }

    #[test]
    fn track_sampling_is_bounded_and_unconverged_machines_close_at_run_end() {
        let mut entries = Vec::new();
        for m in 0..100u32 {
            entries.push(entry(
                u64::from(m),
                u64::from(m),
                JournalEvent::Notify {
                    machine: m,
                    release: 0,
                },
            ));
        }
        let cfg = TraceConfig {
            max_machine_tracks: 8,
        };
        let doc = trace(&entries, 500, &cfg);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let tracks = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .count();
        assert!(tracks <= 8, "sampled {tracks} tracks");
        assert!(tracks >= 1);
        // None converged: every sampled machine gets an unconverged
        // slice ending at run end.
        let unconverged: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("test (unconverged)"))
            .collect();
        assert_eq!(unconverged.len(), tracks);
        for x in unconverged {
            let ts = x.get("ts").unwrap().as_u64().unwrap();
            let dur = x.get("dur").unwrap().as_u64().unwrap();
            assert_eq!(ts + dur, 500);
        }
    }

    #[test]
    fn zero_tracks_disables_machine_sampling() {
        let entries = [entry(
            0,
            0,
            JournalEvent::Notify {
                machine: 0,
                release: 0,
            },
        )];
        let doc = trace(
            &entries,
            10,
            &TraceConfig {
                max_machine_tracks: 0,
            },
        );
        let ph = phases(&doc);
        assert!(!ph.iter().any(|(p, _)| *p == "X" || *p == "i"));
        // Wave slice still present.
        assert!(ph.contains(&("b", "stage 0")));
    }
}
