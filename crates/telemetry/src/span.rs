//! Hierarchical RAII timing spans.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! drop, and records it under a *path* built from the stack of spans
//! open on the current thread: a span `"round"` opened while
//! `"campaign"` and `"deploy"` are open records as
//! `"campaign/deploy/round"`. Nesting is tracked per thread in a
//! thread-local stack, so parallel workers each get their own
//! hierarchy.
//!
//! When the owning [`Telemetry`] handle is a no-op the span is inert —
//! no clock read, no thread-local traffic.

use std::cell::RefCell;
use std::time::Instant;

use crate::recorder::Telemetry;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII guard timing one phase of work. See the module docs.
#[derive(Debug)]
pub struct Span {
    telemetry: Telemetry,
    path: String,
    start: Option<Instant>,
}

impl Span {
    pub(crate) fn enter(telemetry: Telemetry, name: &'static str) -> Span {
        if !telemetry.enabled() {
            return Span {
                telemetry,
                path: String::new(),
                start: None,
            };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        Span {
            telemetry,
            path,
            start: Some(Instant::now()),
        }
    }

    /// The full nested path this span records under (empty when inert).
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let nanos = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        self.telemetry.record_span(&self.path, nanos);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::registry::Registry;

    #[test]
    fn spans_nest_into_paths() {
        let registry = Arc::new(Registry::new(16));
        let t = Telemetry::from_registry(Arc::clone(&registry));
        {
            let outer = t.span("outer");
            assert_eq!(outer.path(), "outer");
            {
                let mid = t.span("mid");
                assert_eq!(mid.path(), "outer/mid");
                let leaf = t.span("leaf");
                assert_eq!(leaf.path(), "outer/mid/leaf");
            }
            // Siblings reuse the parent path after the first child closed.
            let second = t.span("second");
            assert_eq!(second.path(), "outer/second");
        }
        let snap = registry.snapshot();
        for path in ["outer", "outer/mid", "outer/mid/leaf", "outer/second"] {
            assert_eq!(snap.spans[path].count, 1, "missing span {path}");
        }
    }

    #[test]
    fn repeated_spans_aggregate() {
        let registry = Arc::new(Registry::new(16));
        let t = Telemetry::from_registry(Arc::clone(&registry));
        for _ in 0..5 {
            let _span = t.span("tick");
        }
        assert_eq!(registry.snapshot().spans["tick"].count, 5);
    }

    #[test]
    fn inert_span_leaves_stack_alone() {
        let t = Telemetry::noop();
        let span = t.span("ghost");
        assert_eq!(span.path(), "");
        drop(span);
        // A live span opened afterwards starts a fresh hierarchy.
        let registry = Arc::new(Registry::new(16));
        let live = Telemetry::from_registry(Arc::clone(&registry));
        let s = live.span("root");
        assert_eq!(s.path(), "root");
    }

    #[test]
    fn threads_have_independent_stacks() {
        let registry = Arc::new(Registry::new(16));
        let t = Telemetry::from_registry(Arc::clone(&registry));
        let _outer = t.span("main-outer");
        let handle = {
            let t = t.clone();
            std::thread::spawn(move || {
                let s = t.span("worker");
                s.path().to_string()
            })
        };
        // The worker thread's span must not inherit main-outer.
        assert_eq!(handle.join().unwrap(), "worker");
    }
}
