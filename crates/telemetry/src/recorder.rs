//! The `Recorder` trait and the cheap `Telemetry` handle.

use std::fmt;
use std::sync::Arc;

use crate::flight::FlightEvent;
use crate::span::Span;

/// The sink instrumentation writes to.
///
/// All methods default to no-ops so implementations only override what
/// they store. Implementations must be thread-safe: campaigns fan
/// fingerprinting out across OS threads.
pub trait Recorder: Send + Sync {
    /// Whether this recorder stores anything. Instrumented code uses
    /// this to skip building event payloads entirely.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the named counter.
    fn add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the named gauge (tracking its high-water mark).
    fn gauge_set(&self, name: &str, value: i64) {
        let _ = (name, value);
    }

    /// Records one sample into the named histogram.
    fn observe(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Records a completed span at `path` lasting `nanos`.
    fn record_span(&self, path: &str, nanos: u64) {
        let _ = (path, nanos);
    }

    /// Records a flight-recorder event.
    fn record_event(&self, event: FlightEvent) {
        let _ = event;
    }
}

/// A recorder that stores nothing. [`Telemetry::noop`] avoids even the
/// virtual call; this type exists for APIs that want a `&dyn Recorder`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A cheap, cloneable handle to a recorder.
///
/// The default handle is a no-op: every method is a single `Option`
/// branch, so structs can hold a `Telemetry` unconditionally and
/// uninstrumented runs pay nothing measurable. Handles are plumbed by
/// value (they are one pointer wide) and shared freely across threads.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<dyn Recorder>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Telemetry {
    /// The no-op handle.
    pub fn noop() -> Self {
        Telemetry { inner: None }
    }

    /// Wraps an arbitrary recorder.
    pub fn from_recorder(recorder: Arc<dyn Recorder>) -> Self {
        Telemetry {
            inner: Some(recorder),
        }
    }

    /// Wraps a shared [`crate::Registry`].
    pub fn from_registry(registry: Arc<crate::Registry>) -> Self {
        Telemetry {
            inner: Some(registry),
        }
    }

    /// Whether events will actually be stored.
    pub fn enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|r| r.enabled())
    }

    /// Adds `delta` to the named counter.
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(r) = &self.inner {
            r.add(name, delta);
        }
    }

    /// Sets the named gauge (its high-water mark is kept).
    pub fn gauge(&self, name: &str, value: i64) {
        if let Some(r) = &self.inner {
            r.gauge_set(name, value);
        }
    }

    /// Records a histogram sample.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(r) = &self.inner {
            r.observe(name, value);
        }
    }

    /// Records a flight-recorder event.
    ///
    /// Prefer [`Telemetry::event_with`] on hot paths so the payload is
    /// only built when telemetry is live.
    pub fn event(&self, event: FlightEvent) {
        if let Some(r) = &self.inner {
            r.record_event(event);
        }
    }

    /// Records an event built lazily — `make` runs only when enabled.
    pub fn event_with(&self, make: impl FnOnce() -> FlightEvent) {
        if self.enabled() {
            if let Some(r) = &self.inner {
                r.record_event(make());
            }
        }
    }

    /// Opens a hierarchical timing span; the returned RAII guard records
    /// the elapsed time under the nested span path on drop.
    pub fn span(&self, name: &'static str) -> Span {
        Span::enter(self.clone(), name)
    }

    pub(crate) fn record_span(&self, path: &str, nanos: u64) {
        if let Some(r) = &self.inner {
            r.record_span(path, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_inert() {
        let t = Telemetry::noop();
        assert!(!t.enabled());
        t.counter("c", 1);
        t.gauge("g", 5);
        t.observe("h", 10);
        t.event(FlightEvent::ReleaseShipped { release: 0 });
        let _span = t.span("nothing");
        // event_with must not even build the payload.
        t.event_with(|| unreachable!("noop handle built an event"));
    }

    #[test]
    fn default_is_noop() {
        assert!(!Telemetry::default().enabled());
        let dbg = format!("{:?}", Telemetry::default());
        assert!(dbg.contains("enabled: false"));
    }

    #[test]
    fn noop_recorder_type_is_inert() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.add("x", 1);
        r.gauge_set("x", 1);
        r.observe("x", 1);
        r.record_span("x", 1);
        r.record_event(FlightEvent::ReleaseShipped { release: 0 });
    }
}
