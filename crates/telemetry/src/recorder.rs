//! The `Recorder` trait and the cheap `Telemetry` handle.

use std::fmt;
use std::sync::Arc;

use crate::flight::FlightEvent;
use crate::journal::JournalEvent;
use crate::span::Span;

/// Which surfaces a [`Recorder`] actually stores.
///
/// The [`Telemetry`] handle caches this at construction and gates each
/// call on the matching flag, so a recorder that only stores one
/// surface (e.g. a bare [`crate::Journal`]) costs a predicted branch —
/// not a virtual call — on every surface it ignores. That is what keeps
/// a journal-only run's overhead down to the journal itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Capabilities {
    /// Counters, gauges, and histograms.
    pub metrics: bool,
    /// Hierarchical span timings.
    pub spans: bool,
    /// Flight-recorder events.
    pub events: bool,
    /// Sim-time journal entries and clock updates.
    pub journal: bool,
}

impl Capabilities {
    /// Every surface on — the conservative default for full recorders.
    pub const ALL: Capabilities = Capabilities {
        metrics: true,
        spans: true,
        events: true,
        journal: true,
    };

    /// Every surface off (the no-op handle).
    pub const NONE: Capabilities = Capabilities {
        metrics: false,
        spans: false,
        events: false,
        journal: false,
    };

    /// Only the sim-time journal.
    pub const JOURNAL_ONLY: Capabilities = Capabilities {
        journal: true,
        ..Capabilities::NONE
    };
}

/// The sink instrumentation writes to.
///
/// All methods default to no-ops so implementations only override what
/// they store. Implementations must be thread-safe: campaigns fan
/// fingerprinting out across OS threads.
pub trait Recorder: Send + Sync {
    /// Whether this recorder stores anything. Instrumented code uses
    /// this to skip building event payloads entirely.
    fn enabled(&self) -> bool {
        false
    }

    /// Which surfaces this recorder stores. Defaults to all so existing
    /// recorders keep receiving every call; recorders that ignore a
    /// surface should turn its flag off and let [`Telemetry`] skip the
    /// virtual call entirely.
    fn capabilities(&self) -> Capabilities {
        Capabilities::ALL
    }

    /// Adds `delta` to the named counter.
    fn add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the named gauge (tracking its high-water mark).
    fn gauge_set(&self, name: &str, value: i64) {
        let _ = (name, value);
    }

    /// Records one sample into the named histogram.
    fn observe(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Records a completed span at `path` lasting `nanos`.
    fn record_span(&self, path: &str, nanos: u64) {
        let _ = (path, nanos);
    }

    /// Records a flight-recorder event.
    fn record_event(&self, event: FlightEvent) {
        let _ = event;
    }

    /// Advances the journal's sim-time clock. Drivers call this once
    /// per dequeued simulation event; entries recorded until the next
    /// call are stamped with `now`.
    fn journal_time(&self, now: u64) {
        let _ = now;
    }

    /// Records a sim-time journal event.
    fn record_journal(&self, event: JournalEvent) {
        let _ = event;
    }

    /// Records a batch of journal events that share the current clock
    /// reading. Hot paths that emit several events from one simulation
    /// step use this so the recorder can amortise its synchronisation
    /// over the batch.
    fn record_journal_batch(&self, events: &[JournalEvent]) {
        for &event in events {
            self.record_journal(event);
        }
    }

    /// Records a batch of journal events carrying explicit sim times.
    /// Single-threaded drivers buffer `(time, event)` pairs and flush
    /// thousands at once, so a recorder can amortise its
    /// synchronisation over the whole batch; the journal clock ends at
    /// the batch's final time.
    fn record_journal_timed(&self, batch: &[(u64, JournalEvent)]) {
        for &(time, event) in batch {
            self.journal_time(time);
            self.record_journal(event);
        }
    }
}

/// A recorder that stores nothing. [`Telemetry::noop`] avoids even the
/// virtual call; this type exists for APIs that want a `&dyn Recorder`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn capabilities(&self) -> Capabilities {
        Capabilities::NONE
    }
}

/// A cheap, cloneable handle to a recorder.
///
/// The default handle is a no-op: every method is a single `Option`
/// branch, so structs can hold a `Telemetry` unconditionally and
/// uninstrumented runs pay nothing measurable. Handles are plumbed by
/// value (they are one pointer wide) and shared freely across threads.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<dyn Recorder>>,
    caps: Capabilities,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Telemetry {
    /// The no-op handle.
    pub fn noop() -> Self {
        Telemetry {
            inner: None,
            caps: Capabilities::NONE,
        }
    }

    /// Wraps an arbitrary recorder, caching its [`Capabilities`].
    pub fn from_recorder(recorder: Arc<dyn Recorder>) -> Self {
        let caps = recorder.capabilities();
        Telemetry {
            inner: Some(recorder),
            caps,
        }
    }

    /// Wraps a shared [`crate::Registry`].
    pub fn from_registry(registry: Arc<crate::Registry>) -> Self {
        Telemetry::from_recorder(registry)
    }

    /// Whether events will actually be stored.
    pub fn enabled(&self) -> bool {
        self.caps.events && self.inner.as_ref().is_some_and(|r| r.enabled())
    }

    /// Whether journal entries will actually be stored. Hot paths that
    /// assemble event *batches* check this first so uninstrumented runs
    /// skip the assembly entirely.
    pub fn journals(&self) -> bool {
        self.caps.journal && self.inner.is_some()
    }

    /// Adds `delta` to the named counter.
    pub fn counter(&self, name: &str, delta: u64) {
        if self.caps.metrics {
            if let Some(r) = &self.inner {
                r.add(name, delta);
            }
        }
    }

    /// Sets the named gauge (its high-water mark is kept).
    pub fn gauge(&self, name: &str, value: i64) {
        if self.caps.metrics {
            if let Some(r) = &self.inner {
                r.gauge_set(name, value);
            }
        }
    }

    /// Records a histogram sample.
    pub fn observe(&self, name: &str, value: u64) {
        if self.caps.metrics {
            if let Some(r) = &self.inner {
                r.observe(name, value);
            }
        }
    }

    /// Records a flight-recorder event.
    ///
    /// Prefer [`Telemetry::event_with`] on hot paths so the payload is
    /// only built when telemetry is live.
    pub fn event(&self, event: FlightEvent) {
        if self.caps.events {
            if let Some(r) = &self.inner {
                r.record_event(event);
            }
        }
    }

    /// Records an event built lazily — `make` runs only when enabled.
    pub fn event_with(&self, make: impl FnOnce() -> FlightEvent) {
        if self.enabled() {
            if let Some(r) = &self.inner {
                r.record_event(make());
            }
        }
    }

    /// Advances the recorder's journal clock to sim time `now`.
    pub fn journal_time(&self, now: u64) {
        if self.caps.journal {
            if let Some(r) = &self.inner {
                r.journal_time(now);
            }
        }
    }

    /// Records a sim-time journal event. [`crate::journal::JournalEvent`]s
    /// are `Copy` dense-id payloads, so building one is free — no lazy
    /// variant is needed.
    pub fn journal(&self, event: JournalEvent) {
        if self.caps.journal {
            if let Some(r) = &self.inner {
                r.record_journal(event);
            }
        }
    }

    /// Records a batch of journal events sharing the current clock
    /// reading — one virtual call and one recorder-side critical
    /// section for the whole batch.
    pub fn journal_batch(&self, events: &[JournalEvent]) {
        if self.caps.journal && !events.is_empty() {
            if let Some(r) = &self.inner {
                r.record_journal_batch(events);
            }
        }
    }

    /// Records a batch of journal events with explicit per-event sim
    /// times. This is the cheapest way to journal a hot loop: buffer
    /// `(time, event)` pairs locally and flush thousands per call.
    pub fn journal_timed(&self, batch: &[(u64, JournalEvent)]) {
        if self.caps.journal && !batch.is_empty() {
            if let Some(r) = &self.inner {
                r.record_journal_timed(batch);
            }
        }
    }

    /// Opens a hierarchical timing span; the returned RAII guard records
    /// the elapsed time under the nested span path on drop.
    pub fn span(&self, name: &'static str) -> Span {
        Span::enter(self.clone(), name)
    }

    pub(crate) fn record_span(&self, path: &str, nanos: u64) {
        if self.caps.spans {
            if let Some(r) = &self.inner {
                r.record_span(path, nanos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_inert() {
        let t = Telemetry::noop();
        assert!(!t.enabled());
        t.counter("c", 1);
        t.gauge("g", 5);
        t.observe("h", 10);
        t.event(FlightEvent::ReleaseShipped { release: 0 });
        t.journal_time(40);
        t.journal(JournalEvent::Notify {
            machine: 0,
            release: 0,
        });
        let _span = t.span("nothing");
        // event_with must not even build the payload.
        t.event_with(|| unreachable!("noop handle built an event"));
    }

    #[test]
    fn default_is_noop() {
        assert!(!Telemetry::default().enabled());
        let dbg = format!("{:?}", Telemetry::default());
        assert!(dbg.contains("enabled: false"));
    }

    #[test]
    fn noop_recorder_type_is_inert() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.add("x", 1);
        r.gauge_set("x", 1);
        r.observe("x", 1);
        r.record_span("x", 1);
        r.record_event(FlightEvent::ReleaseShipped { release: 0 });
        r.journal_time(1);
        r.record_journal(JournalEvent::Notify {
            machine: 0,
            release: 0,
        });
    }
}
