//! Interned fingerprint items and the lowered distance kernel.
//!
//! Phase-2 clustering computes Manhattan distances between content-based
//! diff sets millions of times per fleet. Doing that over
//! `BTreeSet<Item>` means walking a pointer-chasing tree and comparing
//! hierarchical *strings* on every step. This module lowers that hot
//! path onto integers:
//!
//! * an [`ItemPool`] interns each distinct [`Item`] to a dense `u32` id
//!   (first-seen order, fully deterministic for a fixed call sequence);
//! * a [`LoweredDiff`] is a sorted `Vec<u32>` of interned ids; the
//!   symmetric-difference size of two lowered diffs — identical to
//!   [`DiffSet::content_distance`](crate::DiffSet::content_distance)
//!   over the sets they were lowered from — is a branch-light sorted
//!   merge over two integer slices.
//!
//! Interned ids are only meaningful relative to the pool that produced
//! them; distances may only be taken between diffs lowered by the *same*
//! pool. Ids encode first-seen order, not item order, which is fine
//! because symmetric difference depends on equality alone.

use std::collections::HashMap;

use crate::item::{Item, ItemSet};

/// Interns [`Item`]s to dense `u32` ids.
///
/// # Examples
///
/// ```
/// use mirage_fingerprint::{Item, ItemPool};
/// let mut pool = ItemPool::new();
/// let a = pool.intern(&Item::new(["x"]));
/// let b = pool.intern(&Item::new(["y"]));
/// assert_ne!(a, b);
/// assert_eq!(pool.intern(&Item::new(["x"])), a); // stable
/// assert_eq!(pool.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ItemPool {
    ids: HashMap<Item, u32>,
    items: Vec<Item>,
}

impl ItemPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct items interned so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no item has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Interns `item`, returning its id (allocating one on first sight).
    ///
    /// Ids are assigned densely in first-seen order, so a fixed sequence
    /// of `intern` calls always produces the same ids regardless of hash
    /// seeding.
    pub fn intern(&mut self, item: &Item) -> u32 {
        if let Some(&id) = self.ids.get(item) {
            return id;
        }
        let id = u32::try_from(self.items.len()).expect("more than u32::MAX distinct items");
        self.ids.insert(item.clone(), id);
        self.items.push(item.clone());
        id
    }

    /// Looks up the id of an already-interned item without allocating.
    pub fn get(&self, item: &Item) -> Option<u32> {
        self.ids.get(item).copied()
    }

    /// Resolves an interned id back to its [`Item`].
    ///
    /// Long-lived pools (e.g. a drift engine that refcounts cluster
    /// labels by id) need the reverse mapping to materialise item sets
    /// from dense ids; `item` is that inverse of [`ItemPool::intern`].
    pub fn item(&self, id: u32) -> Option<&Item> {
        self.items.get(id as usize)
    }

    /// Lowers an [`ItemSet`] to a [`LoweredDiff`] against this pool.
    ///
    /// The resulting id vector is sorted (numerically), which is the
    /// invariant [`LoweredDiff::distance`] relies on.
    pub fn lower(&mut self, items: &ItemSet) -> LoweredDiff {
        let mut out = LoweredDiff::default();
        self.lower_into(items, &mut out);
        out
    }

    /// Lowers `items` into an existing [`LoweredDiff`], reusing its
    /// allocation.
    ///
    /// Hot incremental paths (re-lowering one drifted machine per delta
    /// against a persistent pool) call this to avoid a fresh `Vec` per
    /// update; the result is identical to [`ItemPool::lower`].
    pub fn lower_into(&mut self, items: &ItemSet, out: &mut LoweredDiff) {
        out.ids.clear();
        out.ids.extend(items.iter().map(|i| self.intern(i)));
        out.ids.sort_unstable();
    }
}

/// A diff set lowered to sorted interned ids (see [`ItemPool::lower`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoweredDiff {
    ids: Vec<u32>,
}

impl LoweredDiff {
    /// Number of items in the lowered diff.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the lowered diff holds no items.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted interned ids.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Size of the symmetric difference with `other` — the Manhattan
    /// distance the phase-2 clustering uses.
    ///
    /// Both operands must come from the same [`ItemPool`]. The loop is a
    /// branch-light sorted merge: each step advances one or both cursors
    /// with arithmetic on comparison results instead of data-dependent
    /// branches, so it pipelines well on dense inputs.
    pub fn distance(&self, other: &LoweredDiff) -> usize {
        let a = &self.ids;
        let b = &other.ids;
        let (mut i, mut j, mut common) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            let x = a[i];
            let y = b[j];
            i += usize::from(x <= y);
            j += usize::from(y <= x);
            common += usize::from(x == y);
        }
        a.len() + b.len() - 2 * common
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::DiffSet;

    fn set(items: &[&str]) -> ItemSet {
        items.iter().map(|s| Item::new([*s])).collect()
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let mut pool = ItemPool::new();
        let a = pool.intern(&Item::new(["a"]));
        let b = pool.intern(&Item::new(["b"]));
        assert_eq!((a, b), (0, 1));
        assert_eq!(pool.intern(&Item::new(["a"])), 0);
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
    }

    #[test]
    fn lowered_ids_are_sorted() {
        let mut pool = ItemPool::new();
        // Intern in one order, lower a set whose BTree order differs.
        pool.intern(&Item::new(["z"]));
        pool.intern(&Item::new(["a"]));
        let lowered = pool.lower(&set(&["a", "z"]));
        assert_eq!(lowered.ids(), &[0, 1]);
        assert!(lowered.ids().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn distance_matches_symmetric_difference() {
        let mut pool = ItemPool::new();
        let cases: &[(&[&str], &[&str], usize)] = &[
            (&[], &[], 0),
            (&["x"], &[], 1),
            (&["x"], &["x"], 0),
            (&["x", "y"], &["y", "z"], 2),
            (&["a", "b", "c"], &["d", "e"], 5),
        ];
        for (a, b, want) in cases {
            let la = pool.lower(&set(a));
            let lb = pool.lower(&set(b));
            assert_eq!(la.distance(&lb), *want, "{a:?} vs {b:?}");
            assert_eq!(lb.distance(&la), *want, "symmetry {a:?} vs {b:?}");
            assert_eq!(la.distance(&la), 0, "identity {a:?}");
        }
    }

    #[test]
    fn distance_agrees_with_diffset_content_distance() {
        let mut da = DiffSet::empty("a");
        da.content = set(&["w", "x", "y"]);
        let mut db = DiffSet::empty("b");
        db.content = set(&["x", "z"]);
        let mut pool = ItemPool::new();
        let la = pool.lower(&da.content);
        let lb = pool.lower(&db.content);
        assert_eq!(la.distance(&lb), da.content_distance(&db));
    }

    #[test]
    fn reverse_lookup_and_get() {
        let mut pool = ItemPool::new();
        let x = Item::new(["x"]);
        let y = Item::new(["y"]);
        assert_eq!(pool.get(&x), None);
        let xid = pool.intern(&x);
        let yid = pool.intern(&y);
        assert_eq!(pool.get(&x), Some(xid));
        assert_eq!(pool.item(xid), Some(&x));
        assert_eq!(pool.item(yid), Some(&y));
        assert_eq!(pool.item(99), None);
        // `get` never allocates a new id.
        assert_eq!(pool.get(&Item::new(["z"])), None);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn lower_into_reuses_buffer_and_matches_lower() {
        let mut pool = ItemPool::new();
        let mut buf = pool.lower(&set(&["a", "b", "c"]));
        let want = pool.lower(&set(&["q", "a"]));
        pool.lower_into(&set(&["q", "a"]), &mut buf);
        assert_eq!(buf, want);
        pool.lower_into(&ItemSet::new(), &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn empty_lowered_diff() {
        let mut pool = ItemPool::new();
        let e = pool.lower(&ItemSet::new());
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.distance(&e), 0);
        let one = pool.lower(&set(&["q"]));
        assert_eq!(e.distance(&one), 1);
    }
}
