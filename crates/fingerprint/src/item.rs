//! Hierarchical fingerprint items.
//!
//! An [`Item`] is a hierarchical key — a sequence of string segments such as
//! `/usr/lib/libc.so.6 · lib · 2.4 · a1b2c3d4` — produced by a resource
//! parser or by content chunking. Machines are compared through the sets of
//! items that differ from the vendor reference, so items are kept small,
//! ordered, and cheap to compare.

use std::collections::BTreeSet;
use std::fmt;

/// A hierarchical fingerprint item.
///
/// # Examples
///
/// ```
/// use mirage_fingerprint::Item;
/// let item = Item::new(["/etc/my.cnf", "mysqld", "datadir", "deadbeef"]);
/// assert_eq!(item.to_string(), "/etc/my.cnf.mysqld.datadir.deadbeef");
/// assert!(item.starts_with(&["/etc/my.cnf"]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item {
    segments: Vec<String>,
}

/// A set of fingerprint items.
pub type ItemSet = BTreeSet<Item>;

impl Item {
    /// Builds an item from its segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty: an item must identify a resource.
    pub fn new<I, S>(segments: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let segments: Vec<String> = segments.into_iter().map(Into::into).collect();
        assert!(!segments.is_empty(), "an item needs at least one segment");
        Item { segments }
    }

    /// Returns the item's segments.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// Returns the first segment, which by convention is the resource path.
    pub fn resource(&self) -> &str {
        &self.segments[0]
    }

    /// Returns the number of segments.
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` if the item's leading segments equal `prefix`.
    pub fn starts_with<S: AsRef<str>>(&self, prefix: &[S]) -> bool {
        prefix.len() <= self.segments.len()
            && prefix
                .iter()
                .zip(&self.segments)
                .all(|(p, s)| p.as_ref() == s)
    }

    /// Returns a copy truncated to the first `len` segments.
    ///
    /// Truncation implements the vendor's "discard a suffix of some of the
    /// hierarchical items" control (paper §3.2.3 discussion): e.g. keeping
    /// `libc.lib.2.4` while dropping the build hash merges machines that
    /// run the same version compiled with different flags.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds the item depth.
    pub fn truncated(&self, len: usize) -> Item {
        assert!(len >= 1 && len <= self.segments.len(), "bad truncation");
        Item {
            segments: self.segments[..len].to_vec(),
        }
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.segments.join("."))
    }
}

/// Returns the symmetric difference of two item sets.
///
/// This is the core comparison in Mirage: a user machine reports the set of
/// items that differ from the vendor's list — items present on exactly one
/// of the two sides.
pub fn symmetric_difference(a: &ItemSet, b: &ItemSet) -> ItemSet {
    a.symmetric_difference(b).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Item::new(["/usr/bin/php", "exe", "cafe"]);
        assert_eq!(i.resource(), "/usr/bin/php");
        assert_eq!(i.depth(), 3);
        assert_eq!(i.segments()[1], "exe");
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_item_panics() {
        let _ = Item::new(Vec::<String>::new());
    }

    #[test]
    fn prefix_matching() {
        let i = Item::new(["/lib/libc.so", "lib", "2.4", "beef"]);
        assert!(i.starts_with(&["/lib/libc.so"]));
        assert!(i.starts_with(&["/lib/libc.so", "lib"]));
        assert!(i.starts_with(&["/lib/libc.so", "lib", "2.4", "beef"]));
        assert!(!i.starts_with(&["/lib/libc.so", "exe"]));
        assert!(!i.starts_with(&["/lib/libc.so", "lib", "2.4", "beef", "x"]));
    }

    #[test]
    fn truncation_drops_suffix() {
        let i = Item::new(["/lib/libc.so", "lib", "2.4", "beef"]);
        assert_eq!(i.truncated(3), Item::new(["/lib/libc.so", "lib", "2.4"]));
        assert_eq!(i.truncated(4), i);
    }

    #[test]
    #[should_panic(expected = "bad truncation")]
    fn truncation_bounds_checked() {
        let i = Item::new(["a", "b"]);
        let _ = i.truncated(3);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Item::new(["a", "b"]);
        let b = Item::new(["a", "c"]);
        let c = Item::new(["a"]);
        assert!(a < b);
        assert!(c < a);
    }

    #[test]
    fn symmetric_difference_works() {
        let a: ItemSet = [Item::new(["x"]), Item::new(["y"])].into_iter().collect();
        let b: ItemSet = [Item::new(["y"]), Item::new(["z"])].into_iter().collect();
        let d = symmetric_difference(&a, &b);
        assert_eq!(d.len(), 2);
        assert!(d.contains(&Item::new(["x"])));
        assert!(d.contains(&Item::new(["z"])));
    }
}
