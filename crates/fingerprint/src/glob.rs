//! A small glob matcher for path patterns.
//!
//! The vendor rule API of the paper is "regular expression-based"; this
//! reproduction uses the glob dialect every package tool understands
//! instead of pulling a full regex engine:
//!
//! * `?` matches a single character other than `/`;
//! * `*` matches any run of characters not containing `/`;
//! * `**` matches any run of characters *including* `/`;
//! * everything else matches literally.
//!
//! Patterns anchor at both ends (they must match the whole path).

use std::fmt;

/// A compiled glob pattern.
///
/// # Examples
///
/// ```
/// use mirage_fingerprint::Glob;
/// let g = Glob::new("/var/**");
/// assert!(g.matches("/var/lib/mysql/user.frm"));
/// assert!(!g.matches("/usr/lib/libc.so"));
/// let g = Glob::new("/usr/lib/*.so");
/// assert!(g.matches("/usr/lib/libm.so"));
/// assert!(!g.matches("/usr/lib/sub/libm.so"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Glob {
    pattern: String,
    tokens: Vec<Token>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Literal(char),
    AnyChar,
    AnySegment,
    AnyPath,
}

impl Glob {
    /// Compiles `pattern`.
    pub fn new(pattern: impl Into<String>) -> Self {
        let pattern = pattern.into();
        let mut tokens = Vec::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            match chars[i] {
                '*' => {
                    if chars.get(i + 1) == Some(&'*') {
                        tokens.push(Token::AnyPath);
                        i += 2;
                    } else {
                        tokens.push(Token::AnySegment);
                        i += 1;
                    }
                }
                '?' => {
                    tokens.push(Token::AnyChar);
                    i += 1;
                }
                c => {
                    tokens.push(Token::Literal(c));
                    i += 1;
                }
            }
        }
        Glob { pattern, tokens }
    }

    /// Returns the source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Returns `true` if `path` matches the pattern in full.
    pub fn matches(&self, path: &str) -> bool {
        let chars: Vec<char> = path.chars().collect();
        match_tokens(&self.tokens, &chars)
    }
}

impl fmt::Display for Glob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pattern)
    }
}

fn match_tokens(tokens: &[Token], chars: &[char]) -> bool {
    match tokens.split_first() {
        None => chars.is_empty(),
        Some((Token::Literal(c), rest)) => {
            chars.first() == Some(c) && match_tokens(rest, &chars[1..])
        }
        Some((Token::AnyChar, rest)) => match chars.first() {
            Some(&ch) if ch != '/' => match_tokens(rest, &chars[1..]),
            _ => false,
        },
        Some((Token::AnySegment, rest)) => {
            // Greedily try every split of a non-'/' run, including empty.
            let mut end = 0;
            while end <= chars.len() {
                if match_tokens(rest, &chars[end..]) {
                    return true;
                }
                if end < chars.len() && chars[end] != '/' {
                    end += 1;
                } else {
                    break;
                }
            }
            false
        }
        Some((Token::AnyPath, rest)) => {
            for end in 0..=chars.len() {
                if match_tokens(rest, &chars[end..]) {
                    return true;
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_match_exactly() {
        let g = Glob::new("/etc/my.cnf");
        assert!(g.matches("/etc/my.cnf"));
        assert!(!g.matches("/etc/my.cnf2"));
        assert!(!g.matches("/etc/my_cnf"));
    }

    #[test]
    fn question_mark_single_char() {
        let g = Glob::new("/etc/rc?.d");
        assert!(g.matches("/etc/rc3.d"));
        assert!(!g.matches("/etc/rc33.d"));
        assert!(!g.matches("/etc/rc/.d"), "? must not match a slash");
    }

    #[test]
    fn star_stays_in_segment() {
        let g = Glob::new("/usr/lib/*.so");
        assert!(g.matches("/usr/lib/a.so"));
        assert!(g.matches("/usr/lib/.so"));
        assert!(!g.matches("/usr/lib/x/a.so"));
    }

    #[test]
    fn double_star_crosses_segments() {
        let g = Glob::new("/var/**");
        assert!(g.matches("/var/lib/mysql/db.frm"));
        assert!(g.matches("/var/"));
        assert!(!g.matches("/varx/y"));
        let g = Glob::new("/home/**/.my.cnf");
        assert!(g.matches("/home/u/.my.cnf"));
        assert!(g.matches("/home/a/b/.my.cnf"));
        assert!(!g.matches("/home/u/my.cnf"));
    }

    #[test]
    fn suffix_globs() {
        let g = Glob::new("**/*.xpi");
        assert!(g.matches("/home/u/.mozilla/extensions/foo.xpi"));
        assert!(g.matches("a/b.xpi"));
        assert!(!g.matches("foo.xpi.bak"));
    }

    #[test]
    fn empty_pattern_matches_empty_only() {
        let g = Glob::new("");
        assert!(g.matches(""));
        assert!(!g.matches("x"));
    }

    #[test]
    fn display_roundtrip() {
        let g = Glob::new("/a/**/b*");
        assert_eq!(g.to_string(), "/a/**/b*");
        assert_eq!(g.pattern(), "/a/**/b*");
    }
}
