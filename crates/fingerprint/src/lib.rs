//! Resource fingerprinting for Mirage.
//!
//! Mirage clusters user machines by comparing compact representations
//! (*fingerprints*) of each environmental resource against a vendor
//! reference. A fingerprint is a set of hierarchical [`Item`]s. Items are
//! produced one of three ways (paper §3.2.3):
//!
//! 1. **Mirage-supplied parsers** for common resource types (executables,
//!    shared libraries, system-wide configuration files, plain text).
//! 2. **Vendor-supplied parsers** for application-specific resources, such
//!    as the Firefox preferences parser in the evaluation. Vendor parsers
//!    can discard user-specific noise (timestamps, window coordinates,
//!    comments) so that only semantically relevant differences survive.
//! 3. **Content-defined chunking** with Rabin fingerprints (4 KB average
//!    chunks) for everything else — precise enough to detect differences
//!    but too coarse to tell relevant differences from irrelevant ones,
//!    which is exactly the imprecision the paper's Figures 7 and 9 explore.
//!
//! The canonical item shapes are:
//!
//! | Resource | Item |
//! |---|---|
//! | Executable | `path.exe.FILE_HASH` |
//! | Shared library | `path.lib.VERSION.HASH` |
//! | Text file | `path.line.LINE#.LINE_HASH` |
//! | Config file | `path.SECTION.KEY.VALUE_HASH` |
//! | Prefs file (vendor) | `path.pref.KEY.VALUE_HASH` |
//! | Unparsed (Rabin) | `path.chunk.CHUNK_HASH` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod glob;
pub mod hash;
pub mod importance;
pub mod intern;
pub mod item;
pub mod parser;
pub mod parsers;
pub mod rabin;
pub mod set;

pub use glob::Glob;
pub use hash::{fnv1a, HashValue};
pub use importance::ImportanceFilter;
pub use intern::{ItemPool, LoweredDiff};
pub use item::{Item, ItemSet};
pub use parser::{ParseError, ParserRegistry, ResourceData, ResourceKind, ResourceParser};
pub use rabin::{Chunk, Chunker, ChunkerParams, RabinHasher, RabinTables};
pub use set::{DiffSet, MachineFingerprint};
