//! Vendor item-importance filtering.
//!
//! The vendor "can specify which items it believes to be less important"
//! and "create bigger clusters by removing those items from the set of
//! differing items of each machine", including "discard\[ing\] only a suffix
//! of some of the hierarchical items" (paper §3.2.3). An
//! [`ImportanceFilter`] encodes those directives and is applied to diff
//! sets before clustering.

use crate::item::{Item, ItemSet};
use crate::set::DiffSet;

/// One importance directive.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Directive {
    /// Drop items whose leading segments equal the given prefix.
    DropPrefix(Vec<String>),
    /// For items whose leading segments equal the prefix, truncate them to
    /// `keep` segments (discarding the suffix) instead of dropping them.
    TruncateSuffix { prefix: Vec<String>, keep: usize },
}

/// A reusable set of vendor importance directives.
///
/// # Examples
///
/// Deploying a non-critical Firefox UI upgrade, the vendor considers libc
/// build differences irrelevant as long as the version matches:
///
/// ```
/// use mirage_fingerprint::{ImportanceFilter, Item};
/// let filter = ImportanceFilter::new()
///     .truncate_suffix(["/lib/libc.so.6", "lib"], 3);
/// let a = Item::new(["/lib/libc.so.6", "lib", "2.4", "aaaa"]);
/// let b = Item::new(["/lib/libc.so.6", "lib", "2.4", "bbbb"]);
/// let fa = filter.apply_item(&a).unwrap();
/// let fb = filter.apply_item(&b).unwrap();
/// assert_eq!(fa, fb); // same version → indistinguishable
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportanceFilter {
    directives: Vec<Directive>,
}

impl ImportanceFilter {
    /// Creates a filter with no directives (identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every item under `prefix` (leading segments).
    pub fn drop_prefix<I, S>(mut self, prefix: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.directives.push(Directive::DropPrefix(
            prefix.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// Truncates items under `prefix` to their first `keep` segments.
    pub fn truncate_suffix<I, S>(mut self, prefix: I, keep: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.directives.push(Directive::TruncateSuffix {
            prefix: prefix.into_iter().map(Into::into).collect(),
            keep,
        });
        self
    }

    /// Returns `true` if the filter has no directives.
    pub fn is_identity(&self) -> bool {
        self.directives.is_empty()
    }

    /// Applies the filter to a single item.
    ///
    /// Returns `None` if the item is dropped, or the (possibly truncated)
    /// item otherwise. The first matching directive wins.
    pub fn apply_item(&self, item: &Item) -> Option<Item> {
        for d in &self.directives {
            match d {
                Directive::DropPrefix(prefix) => {
                    if item.starts_with(prefix) {
                        return None;
                    }
                }
                Directive::TruncateSuffix { prefix, keep } => {
                    if item.starts_with(prefix) {
                        let keep = (*keep).min(item.depth()).max(1);
                        return Some(item.truncated(keep));
                    }
                }
            }
        }
        Some(item.clone())
    }

    /// Applies the filter to an item set.
    pub fn apply_set(&self, items: &ItemSet) -> ItemSet {
        items.iter().filter_map(|i| self.apply_item(i)).collect()
    }

    /// Applies the filter to a diff set (both provenance categories).
    pub fn apply(&self, diff: &DiffSet) -> DiffSet {
        if self.is_identity() {
            return diff.clone();
        }
        DiffSet {
            machine: diff.machine.clone(),
            parsed: self.apply_set(&diff.parsed),
            content: self.apply_set(&diff.content),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn item(s: &str) -> Item {
        Item::new(s.split('.').collect::<Vec<_>>())
    }

    #[test]
    fn identity_filter_is_noop() {
        let f = ImportanceFilter::new();
        assert!(f.is_identity());
        let i = item("a.b.c");
        assert_eq!(f.apply_item(&i), Some(i));
    }

    #[test]
    fn drop_prefix_removes_matching_items() {
        let f = ImportanceFilter::new().drop_prefix(["/etc/mysql/my.cnf"]);
        assert_eq!(
            f.apply_item(&Item::new(["/etc/mysql/my.cnf", "mysqld", "port", "x"])),
            None
        );
        assert!(f.apply_item(&Item::new(["/etc/other", "a", "b"])).is_some());
    }

    #[test]
    fn truncate_merges_same_version_different_build() {
        let f = ImportanceFilter::new().truncate_suffix(["libc", "lib"], 3);
        let a = f.apply_item(&item("libc.lib.2.4-hash-a")).unwrap();
        // Note: items here use '.' split, so "2.4" splits; build explicit.
        let x = Item::new(["libc", "lib", "2.4", "aaaa"]);
        let y = Item::new(["libc", "lib", "2.4", "bbbb"]);
        assert_eq!(f.apply_item(&x), f.apply_item(&y));
        assert_eq!(f.apply_item(&x).unwrap().depth(), 3);
        let _ = a;
    }

    #[test]
    fn truncate_clamps_to_item_depth() {
        let f = ImportanceFilter::new().truncate_suffix(["a"], 10);
        let i = Item::new(["a", "b"]);
        assert_eq!(f.apply_item(&i), Some(i.clone()));
        let f0 = ImportanceFilter::new().truncate_suffix(["a"], 0);
        assert_eq!(f0.apply_item(&i).unwrap().depth(), 1);
    }

    #[test]
    fn first_matching_directive_wins() {
        let f = ImportanceFilter::new()
            .drop_prefix(["a", "b"])
            .truncate_suffix(["a"], 1);
        assert_eq!(f.apply_item(&Item::new(["a", "b", "c"])), None);
        assert_eq!(
            f.apply_item(&Item::new(["a", "x", "c"])),
            Some(Item::new(["a"]))
        );
    }

    #[test]
    fn apply_to_diffset_can_empty_it() {
        let mut parsed = BTreeSet::new();
        parsed.insert(Item::new(["/etc/my.cnf", "mysqld", "port", "x"]));
        parsed.insert(Item::new(["/etc/my.cnf", "mysqld", "socket", "y"]));
        let d = DiffSet {
            machine: "m".into(),
            parsed,
            content: BTreeSet::new(),
        };
        let f = ImportanceFilter::new().drop_prefix(["/etc/my.cnf"]);
        let filtered = f.apply(&d);
        assert!(filtered.is_empty());
        assert_eq!(filtered.machine, "m");
    }

    #[test]
    fn truncation_can_collapse_items() {
        // Two differing items that collapse to the same truncated item.
        let mut content = BTreeSet::new();
        content.insert(Item::new(["f", "chunk", "aaaa"]));
        content.insert(Item::new(["f", "chunk", "bbbb"]));
        let d = DiffSet {
            machine: "m".into(),
            parsed: BTreeSet::new(),
            content,
        };
        let f = ImportanceFilter::new().truncate_suffix(["f", "chunk"], 2);
        assert_eq!(f.apply(&d).content.len(), 1);
    }
}
