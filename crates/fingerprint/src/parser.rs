//! The parser abstraction and registry.
//!
//! A [`ResourceParser`] turns the raw bytes of one environmental resource
//! into fingerprint [`Item`]s. The [`ParserRegistry`] holds two tiers of
//! parsers — Mirage-supplied (common types) and vendor-supplied
//! (application-specific) — and falls back to Rabin content chunking when
//! neither tier claims a resource. Which tier produced an item matters:
//! phase 1 of the clustering algorithm only trusts parser-produced items,
//! while content-based items go through the diameter-bounded phase 2.

use std::fmt;

use crate::glob::Glob;
use crate::item::Item;
use crate::rabin::{Chunker, ChunkerParams};

/// The type of an environmental resource, as known to the packaging system.
///
/// The heuristic also uses kinds for its "files of certain types" rule
/// (e.g. shared libraries loaded after initialisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceKind {
    /// An executable image.
    Executable,
    /// A shared library.
    SharedLibrary,
    /// An INI-style configuration file.
    Config,
    /// An application preferences file (e.g. Firefox `prefs.js`).
    Prefs,
    /// A plain text file.
    Text,
    /// An opaque binary file.
    Binary,
    /// A mutable data file (databases, documents).
    Data,
    /// A log file.
    Log,
    /// An HTML document.
    Html,
    /// A font file.
    Font,
    /// A browser-style extension bundle.
    Extension,
    /// A UI theme bundle.
    Theme,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Executable => "executable",
            ResourceKind::SharedLibrary => "shared-library",
            ResourceKind::Config => "config",
            ResourceKind::Prefs => "prefs",
            ResourceKind::Text => "text",
            ResourceKind::Binary => "binary",
            ResourceKind::Data => "data",
            ResourceKind::Log => "log",
            ResourceKind::Html => "html",
            ResourceKind::Font => "font",
            ResourceKind::Extension => "extension",
            ResourceKind::Theme => "theme",
        };
        f.write_str(s)
    }
}

/// The raw view of one environmental resource handed to parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceData {
    /// Absolute path of the resource on the machine.
    pub path: String,
    /// Resource kind.
    pub kind: ResourceKind,
    /// Raw content bytes.
    pub bytes: Vec<u8>,
}

impl ResourceData {
    /// Creates a resource view.
    pub fn new(path: impl Into<String>, kind: ResourceKind, bytes: Vec<u8>) -> Self {
        ResourceData {
            path: path.into(),
            kind,
            bytes,
        }
    }

    /// Returns the content interpreted as UTF-8, or an error.
    pub fn text(&self) -> Result<&str, ParseError> {
        std::str::from_utf8(&self.bytes).map_err(|_| ParseError::NotText {
            path: self.path.clone(),
        })
    }
}

/// Errors produced by resource parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The resource is not valid UTF-8 but the parser expected text.
    NotText {
        /// Path of the offending resource.
        path: String,
    },
    /// A structured header or syntax element was malformed.
    Malformed {
        /// Path of the offending resource.
        path: String,
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::NotText { path } => write!(f, "{path}: not valid UTF-8 text"),
            ParseError::Malformed { path, reason } => write!(f, "{path}: {reason}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parser that converts one resource into fingerprint items.
pub trait ResourceParser: Send + Sync {
    /// Short parser name for diagnostics.
    fn name(&self) -> &str;

    /// Parses `resource` into items.
    fn parse(&self, resource: &ResourceData) -> Result<Vec<Item>, ParseError>;
}

/// How a resource was fingerprinted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FingerprintSource {
    /// A Mirage- or vendor-supplied parser handled the resource.
    Parsed,
    /// No parser claimed the resource; content chunking was used.
    ContentBased,
}

/// The outcome of fingerprinting one resource.
#[derive(Debug, Clone)]
pub struct Fingerprinted {
    /// Items produced.
    pub items: Vec<Item>,
    /// Whether a parser or content chunking produced them.
    pub source: FingerprintSource,
    /// Name of the parser used, or `"rabin"` for content chunking.
    pub parser: String,
}

struct Registration {
    kind: Option<ResourceKind>,
    path_glob: Option<Glob>,
    parser: Box<dyn ResourceParser>,
}

impl Registration {
    fn claims(&self, resource: &ResourceData) -> bool {
        if let Some(kind) = self.kind {
            if kind != resource.kind {
                return false;
            }
        }
        if let Some(glob) = &self.path_glob {
            if !glob.matches(&resource.path) {
                return false;
            }
        }
        self.kind.is_some() || self.path_glob.is_some()
    }
}

/// A two-tier parser registry with a Rabin fallback.
///
/// Vendor parsers take precedence over Mirage parsers; within a tier the
/// first registered match wins. Resources claimed by no parser are chunked.
pub struct ParserRegistry {
    mirage: Vec<Registration>,
    vendor: Vec<Registration>,
    chunker: Chunker,
}

impl ParserRegistry {
    /// Creates an empty registry with the paper's default chunker.
    pub fn new() -> Self {
        ParserRegistry {
            mirage: Vec::new(),
            vendor: Vec::new(),
            chunker: Chunker::paper_default(),
        }
    }

    /// Creates an empty registry with explicit chunker parameters.
    pub fn with_chunker(params: ChunkerParams) -> Self {
        ParserRegistry {
            mirage: Vec::new(),
            vendor: Vec::new(),
            chunker: Chunker::new(params),
        }
    }

    /// Registers a Mirage-supplied parser for a resource kind.
    pub fn register_mirage(
        &mut self,
        kind: ResourceKind,
        parser: Box<dyn ResourceParser>,
    ) -> &mut Self {
        self.mirage.push(Registration {
            kind: Some(kind),
            path_glob: None,
            parser,
        });
        self
    }

    /// Registers a Mirage-supplied parser limited to paths matching `glob`.
    pub fn register_mirage_glob(
        &mut self,
        kind: ResourceKind,
        glob: Glob,
        parser: Box<dyn ResourceParser>,
    ) -> &mut Self {
        self.mirage.push(Registration {
            kind: Some(kind),
            path_glob: Some(glob),
            parser,
        });
        self
    }

    /// Registers a vendor-supplied parser for a resource kind.
    pub fn register_vendor(
        &mut self,
        kind: ResourceKind,
        parser: Box<dyn ResourceParser>,
    ) -> &mut Self {
        self.vendor.push(Registration {
            kind: Some(kind),
            path_glob: None,
            parser,
        });
        self
    }

    /// Registers a vendor-supplied parser for paths matching `glob`
    /// regardless of kind.
    pub fn register_vendor_glob(
        &mut self,
        glob: Glob,
        parser: Box<dyn ResourceParser>,
    ) -> &mut Self {
        self.vendor.push(Registration {
            kind: None,
            path_glob: Some(glob),
            parser,
        });
        self
    }

    /// Returns the number of registered parsers (both tiers).
    pub fn len(&self) -> usize {
        self.mirage.len() + self.vendor.len()
    }

    /// Returns `true` if no parsers are registered.
    pub fn is_empty(&self) -> bool {
        self.mirage.is_empty() && self.vendor.is_empty()
    }

    /// Fingerprints one resource.
    ///
    /// A parser that errors on a resource (e.g. binary data in a file that
    /// was labelled text) falls through to content chunking rather than
    /// failing the whole machine fingerprint: imprecise beats absent.
    pub fn fingerprint(&self, resource: &ResourceData) -> Fingerprinted {
        for reg in self.vendor.iter().chain(self.mirage.iter()) {
            if reg.claims(resource) {
                match reg.parser.parse(resource) {
                    Ok(items) => {
                        return Fingerprinted {
                            items,
                            source: FingerprintSource::Parsed,
                            parser: reg.parser.name().to_string(),
                        }
                    }
                    Err(_) => break,
                }
            }
        }
        let items = self
            .chunker
            .chunk(&resource.bytes)
            .into_iter()
            .map(|c| Item::new([resource.path.as_str(), "chunk", &c.hash.short()]))
            .collect();
        Fingerprinted {
            items,
            source: FingerprintSource::ContentBased,
            parser: "rabin".to_string(),
        }
    }
}

impl Default for ParserRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ParserRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParserRegistry")
            .field("mirage_parsers", &self.mirage.len())
            .field("vendor_parsers", &self.vendor.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedParser(&'static str);

    impl ResourceParser for FixedParser {
        fn name(&self) -> &str {
            self.0
        }
        fn parse(&self, resource: &ResourceData) -> Result<Vec<Item>, ParseError> {
            Ok(vec![Item::new([resource.path.as_str(), self.0])])
        }
    }

    struct FailingParser;

    impl ResourceParser for FailingParser {
        fn name(&self) -> &str {
            "failing"
        }
        fn parse(&self, resource: &ResourceData) -> Result<Vec<Item>, ParseError> {
            Err(ParseError::Malformed {
                path: resource.path.clone(),
                reason: "always fails".into(),
            })
        }
    }

    fn res(path: &str, kind: ResourceKind) -> ResourceData {
        ResourceData::new(path, kind, b"content".to_vec())
    }

    #[test]
    fn vendor_parser_takes_precedence() {
        let mut reg = ParserRegistry::new();
        reg.register_mirage(ResourceKind::Config, Box::new(FixedParser("mirage")));
        reg.register_vendor(ResourceKind::Config, Box::new(FixedParser("vendor")));
        let fp = reg.fingerprint(&res("/etc/x.conf", ResourceKind::Config));
        assert_eq!(fp.parser, "vendor");
        assert_eq!(fp.source as u8, FingerprintSource::Parsed as u8);
    }

    #[test]
    fn unclaimed_resource_falls_back_to_rabin() {
        let reg = ParserRegistry::new();
        let fp = reg.fingerprint(&res("/opt/blob", ResourceKind::Binary));
        assert_eq!(fp.parser, "rabin");
        assert!(matches!(fp.source, FingerprintSource::ContentBased));
        assert_eq!(fp.items.len(), 1); // "content" is tiny: one chunk
        assert_eq!(fp.items[0].resource(), "/opt/blob");
        assert_eq!(fp.items[0].segments()[1], "chunk");
    }

    #[test]
    fn glob_limited_registration() {
        let mut reg = ParserRegistry::new();
        reg.register_vendor_glob(Glob::new("/etc/mysql/**"), Box::new(FixedParser("mycnf")));
        let hit = reg.fingerprint(&res("/etc/mysql/my.cnf", ResourceKind::Config));
        assert_eq!(hit.parser, "mycnf");
        let miss = reg.fingerprint(&res("/etc/apache/httpd.conf", ResourceKind::Config));
        assert_eq!(miss.parser, "rabin");
    }

    #[test]
    fn parser_error_falls_back_to_content() {
        let mut reg = ParserRegistry::new();
        reg.register_mirage(ResourceKind::Text, Box::new(FailingParser));
        let fp = reg.fingerprint(&res("/etc/motd", ResourceKind::Text));
        assert_eq!(fp.parser, "rabin");
    }

    #[test]
    fn kind_mismatch_is_not_claimed() {
        let mut reg = ParserRegistry::new();
        reg.register_mirage(ResourceKind::Executable, Box::new(FixedParser("exe")));
        let fp = reg.fingerprint(&res("/etc/motd", ResourceKind::Text));
        assert_eq!(fp.parser, "rabin");
        assert!(!reg.is_empty());
        assert_eq!(reg.len(), 1);
    }
}
