//! Rabin fingerprinting and content-defined chunking.
//!
//! Resources with no parser are fingerprinted as a sequence of hashes of
//! content-delineated chunks (paper §3.2.3, following the LBFS approach the
//! paper cites \[23\]). A Rabin fingerprint — the residue of the sliding
//! window's polynomial over GF(2) modulo a fixed irreducible polynomial —
//! is maintained over a 48-byte window; a chunk boundary is declared
//! whenever the low bits of the fingerprint match a fixed pattern, which
//! yields content-defined boundaries with a configurable expected chunk
//! size (4 KB by default, as in the paper).
//!
//! Content-defined chunking is *local*: editing a byte only disturbs the
//! chunks overlapping the edit window, so two machines whose config files
//! differ in one line share all other chunk hashes. The property tests in
//! this module verify locality, determinism, and the size bounds.

use crate::hash::HashValue;

/// The irreducible polynomial used for fingerprinting (degree 63).
///
/// This is the polynomial used by the LBFS implementation the paper builds
/// on. Irreducibility matters only for fingerprint quality, not soundness.
const POLY: u64 = 0xbfe6_b8a5_bf37_8d83;

/// Degree of [`POLY`].
const POLY_DEGREE: u32 = 63;

/// Parameters of the content-defined chunker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkerParams {
    /// Sliding window width in bytes.
    pub window: usize,
    /// Minimum chunk size in bytes (boundaries are suppressed before this).
    pub min_size: usize,
    /// Average (expected) chunk size in bytes; must be a power of two.
    pub avg_size: usize,
    /// Maximum chunk size in bytes (a boundary is forced at this size).
    pub max_size: usize,
}

impl ChunkerParams {
    /// The paper's configuration: 48-byte window, 4 KB average chunks.
    pub fn paper_default() -> Self {
        ChunkerParams {
            window: 48,
            min_size: 1024,
            avg_size: 4096,
            max_size: 16384,
        }
    }

    /// A small configuration useful in tests (average 64-byte chunks).
    pub fn tiny() -> Self {
        ChunkerParams {
            window: 16,
            min_size: 16,
            avg_size: 64,
            max_size: 256,
        }
    }

    /// Validates the parameter combination.
    ///
    /// Returns an error string when sizes are inconsistent or the average
    /// is not a power of two.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be non-zero".into());
        }
        if !self.avg_size.is_power_of_two() {
            return Err(format!("avg_size {} is not a power of two", self.avg_size));
        }
        if self.min_size == 0 || self.min_size > self.max_size {
            return Err(format!(
                "invalid min/max sizes: {}/{}",
                self.min_size, self.max_size
            ));
        }
        if self.avg_size < self.min_size || self.avg_size > self.max_size {
            return Err(format!(
                "avg_size {} outside [min, max] = [{}, {}]",
                self.avg_size, self.min_size, self.max_size
            ));
        }
        Ok(())
    }

    fn boundary_mask(&self) -> u64 {
        (self.avg_size as u64) - 1
    }
}

/// Computes `(a * x^n) mod POLY` over GF(2), bit by bit.
///
/// `a` must be a residue (degree < 63); the invariant is maintained
/// throughout the shift loop.
fn shift_mod(mut a: u64, n: u32) -> u64 {
    for _ in 0..n {
        a <<= 1;
        if a & (1u64 << POLY_DEGREE) != 0 {
            a ^= POLY;
        }
    }
    a
}

/// Precomputed byte-folding tables for one window width.
///
/// Table construction costs ~100 µs; sharing the tables (behind an
/// [`Arc`](std::sync::Arc)) across the many small resources a machine
/// fingerprints keeps per-file chunking cheap.
#[derive(Debug, Clone)]
pub struct RabinTables {
    /// `(b * x^63) mod POLY` for the top byte folded on each shift-by-8.
    shift: [u64; 256],
    /// `(b * x^(8*(window-1))) mod POLY` for the byte leaving the window.
    out: [u64; 256],
    window: usize,
}

impl RabinTables {
    /// Builds the tables for a window of `window` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-zero");
        let mut shift = [0u64; 256];
        let mut out = [0u64; 256];
        for b in 0..256usize {
            // A residue `fp` shifted left 8 overflows by its top 8 bits
            // (bits 55..=62); their contribution is `t * x^63` ... but we
            // fold the whole top byte at once: `t * x^55 * x^8 = t * x^63`.
            shift[b] = shift_mod(b as u64, 63);
            out[b] = shift_mod(b as u64, (8 * (window - 1)) as u32);
        }
        RabinTables { shift, out, window }
    }
}

/// A rolling Rabin hash over a fixed-width byte window.
///
/// # Examples
///
/// ```
/// use mirage_fingerprint::RabinHasher;
/// let mut h = RabinHasher::new(4);
/// for b in b"abcdefgh" {
///     h.push(*b);
/// }
/// // The fingerprint depends only on the last `window` bytes:
/// let mut h2 = RabinHasher::new(4);
/// for b in b"efgh" {
///     h2.push(*b);
/// }
/// assert_eq!(h.fingerprint(), h2.fingerprint());
/// ```
#[derive(Debug, Clone)]
pub struct RabinHasher {
    tables: std::sync::Arc<RabinTables>,
    ring: Vec<u8>,
    pos: usize,
    filled: usize,
    fp: u64,
}

impl RabinHasher {
    /// Creates a hasher over windows of `window` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        Self::with_tables(std::sync::Arc::new(RabinTables::new(window)))
    }

    /// Creates a hasher sharing precomputed tables.
    pub fn with_tables(tables: std::sync::Arc<RabinTables>) -> Self {
        let window = tables.window;
        RabinHasher {
            tables,
            ring: vec![0; window],
            pos: 0,
            filled: 0,
            fp: 0,
        }
    }

    /// Pushes one byte through the window and returns the new fingerprint.
    pub fn push(&mut self, byte: u8) -> u64 {
        if self.filled == self.tables.window {
            let old = self.ring[self.pos];
            self.fp ^= self.tables.out[old as usize];
        } else {
            self.filled += 1;
        }
        self.ring[self.pos] = byte;
        self.pos = (self.pos + 1) % self.tables.window;
        // fp = (fp * x^8 + byte) mod POLY.
        let top = (self.fp >> 55) as usize;
        self.fp =
            (((self.fp & ((1u64 << 55) - 1)) << 8) | u64::from(byte)) ^ self.tables.shift[top];
        self.fp
    }

    /// Returns the current fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Clears the window and fingerprint.
    pub fn reset(&mut self) {
        self.ring.iter_mut().for_each(|b| *b = 0);
        self.pos = 0;
        self.filled = 0;
        self.fp = 0;
    }
}

/// One content-defined chunk of a byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Byte offset of the chunk start.
    pub offset: usize,
    /// Chunk length in bytes.
    pub len: usize,
    /// FNV-1a hash of the chunk contents.
    pub hash: HashValue,
}

/// Content-defined chunker producing [`Chunk`]s from a byte slice.
#[derive(Debug, Clone)]
pub struct Chunker {
    params: ChunkerParams,
    tables: std::sync::Arc<RabinTables>,
}

impl Chunker {
    /// Creates a chunker with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid; use
    /// [`ChunkerParams::validate`] to check beforehand.
    pub fn new(params: ChunkerParams) -> Self {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid chunker params: {e}"));
        let tables = std::sync::Arc::new(RabinTables::new(params.window));
        Chunker { params, tables }
    }

    /// Creates a chunker with the paper's default parameters.
    pub fn paper_default() -> Self {
        Self::new(ChunkerParams::paper_default())
    }

    /// Splits `data` into content-defined chunks.
    ///
    /// Every byte belongs to exactly one chunk; chunks respect the
    /// min/max size bounds except that the final chunk may be shorter
    /// than the minimum. Empty input yields no chunks.
    pub fn chunk(&self, data: &[u8]) -> Vec<Chunk> {
        let mut chunks = Vec::new();
        if data.is_empty() {
            return chunks;
        }
        let mask = self.params.boundary_mask();
        let mut hasher = RabinHasher::with_tables(std::sync::Arc::clone(&self.tables));
        let mut start = 0usize;
        for (i, &b) in data.iter().enumerate() {
            let fp = hasher.push(b);
            let len = i - start + 1;
            let at_boundary = len >= self.params.min_size && (fp & mask) == mask;
            if at_boundary || len >= self.params.max_size {
                chunks.push(Chunk {
                    offset: start,
                    len,
                    hash: HashValue::of(&data[start..=i]),
                });
                start = i + 1;
                hasher.reset();
            }
        }
        if start < data.len() {
            chunks.push(Chunk {
                offset: start,
                len: data.len() - start,
                hash: HashValue::of(&data[start..]),
            });
        }
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        // Simple xorshift generator; avoids pulling `rand` into unit tests.
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn rolling_hash_depends_only_on_window() {
        let mut a = RabinHasher::new(8);
        let mut b = RabinHasher::new(8);
        for byte in pseudo_random(100, 1) {
            a.push(byte);
        }
        let tail: Vec<u8> = pseudo_random(100, 1)[92..].to_vec();
        for byte in tail {
            b.push(byte);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn rolling_hash_differs_for_different_windows() {
        let mut a = RabinHasher::new(8);
        let mut b = RabinHasher::new(8);
        for byte in b"abcdefgh" {
            a.push(*byte);
        }
        for byte in b"abcdefgx" {
            b.push(*byte);
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut a = RabinHasher::new(4);
        a.push(1);
        a.push(2);
        a.reset();
        assert_eq!(a.fingerprint(), 0);
        let x = a.push(7);
        let mut fresh = RabinHasher::new(4);
        assert_eq!(fresh.push(7), x);
    }

    #[test]
    fn chunks_cover_input_exactly() {
        let data = pseudo_random(100_000, 42);
        let chunker = Chunker::new(ChunkerParams::tiny());
        let chunks = chunker.chunk(&data);
        assert!(!chunks.is_empty());
        let mut expected_offset = 0;
        for c in &chunks {
            assert_eq!(c.offset, expected_offset);
            expected_offset += c.len;
        }
        assert_eq!(expected_offset, data.len());
    }

    #[test]
    fn chunk_sizes_respect_bounds() {
        let data = pseudo_random(200_000, 7);
        let params = ChunkerParams::tiny();
        let chunks = Chunker::new(params).chunk(&data);
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len <= params.max_size, "chunk too big: {}", c.len);
            if i + 1 != chunks.len() {
                assert!(c.len >= params.min_size, "chunk too small: {}", c.len);
            }
        }
    }

    #[test]
    fn average_chunk_size_is_plausible() {
        let data = pseudo_random(1_000_000, 3);
        let params = ChunkerParams::paper_default();
        let chunks = Chunker::new(params).chunk(&data);
        let avg = data.len() / chunks.len();
        // Expected ~4096 with truncation effects; accept a generous band.
        assert!(
            (1500..=12000).contains(&avg),
            "average chunk size {avg} wildly off"
        );
    }

    #[test]
    fn single_byte_edit_is_local() {
        let data = pseudo_random(300_000, 11);
        let mut edited = data.clone();
        edited[150_000] ^= 0xff;
        let chunker = Chunker::new(ChunkerParams::tiny());
        let a = chunker.chunk(&data);
        let b = chunker.chunk(&edited);
        let set_a: std::collections::BTreeSet<_> = a.iter().map(|c| c.hash).collect();
        let set_b: std::collections::BTreeSet<_> = b.iter().map(|c| c.hash).collect();
        let differing = set_a.symmetric_difference(&set_b).count();
        // The edit may split/merge a few chunks around it but must not
        // perturb distant chunks.
        assert!(differing <= 8, "edit perturbed {differing} chunks");
        assert!(differing >= 1, "edit went unnoticed");
    }

    #[test]
    fn empty_input_has_no_chunks() {
        assert!(Chunker::paper_default().chunk(&[]).is_empty());
    }

    #[test]
    fn small_file_is_single_chunk() {
        let data = b"[mysqld]\nkey = value\n";
        let chunks = Chunker::paper_default().chunk(data);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].hash, HashValue::of(data));
    }

    #[test]
    fn params_validation() {
        assert!(ChunkerParams::paper_default().validate().is_ok());
        assert!(ChunkerParams {
            avg_size: 100, // not a power of two
            ..ChunkerParams::paper_default()
        }
        .validate()
        .is_err());
        assert!(ChunkerParams {
            min_size: 0,
            ..ChunkerParams::paper_default()
        }
        .validate()
        .is_err());
        assert!(ChunkerParams {
            window: 0,
            ..ChunkerParams::paper_default()
        }
        .validate()
        .is_err());
        assert!(ChunkerParams {
            min_size: 8192,
            avg_size: 4096,
            ..ChunkerParams::paper_default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn chunking_is_deterministic() {
        let data = pseudo_random(50_000, 5);
        let chunker = Chunker::paper_default();
        assert_eq!(chunker.chunk(&data), chunker.chunk(&data));
    }
}
