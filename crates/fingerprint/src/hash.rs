//! Content hashing.
//!
//! Mirage needs stable, deterministic content hashes for fingerprint items.
//! Cryptographic strength is not required for the evaluation (collisions
//! only make clusters *coarser*), so a 64-bit FNV-1a is used. The type is
//! wrapped in [`HashValue`] so call sites never confuse a content hash with
//! other integers.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HashValue(pub u64);

impl HashValue {
    /// Hashes a byte slice with FNV-1a.
    pub fn of(bytes: &[u8]) -> Self {
        HashValue(fnv1a(bytes))
    }

    /// Hashes the UTF-8 bytes of a string with FNV-1a.
    pub fn of_str(s: &str) -> Self {
        Self::of(s.as_bytes())
    }

    /// Returns the short (8 hex digit) rendering used inside item labels.
    pub fn short(&self) -> String {
        format!("{:08x}", self.0 >> 32)
    }
}

impl fmt::Display for HashValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Computes the 64-bit FNV-1a hash of `bytes`.
///
/// # Examples
///
/// ```
/// use mirage_fingerprint::fnv1a;
/// assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Incremental FNV-1a hasher for streaming input.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Returns the hash of everything fed so far.
    pub fn finish(&self) -> HashValue {
        HashValue(self.state)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), HashValue::of(b"foobar"));
    }

    #[test]
    fn display_and_short() {
        let h = HashValue(0x0123_4567_89ab_cdef);
        assert_eq!(h.to_string(), "0123456789abcdef");
        assert_eq!(h.short(), "01234567");
    }

    #[test]
    fn of_str_equals_of_bytes() {
        assert_eq!(HashValue::of_str("my.cnf"), HashValue::of(b"my.cnf"));
    }
}
