//! Machine fingerprints and diff sets.
//!
//! The vendor fingerprints its reference machine and publishes the item
//! list; each user machine fingerprints itself, computes the set of items
//! that differ (present on exactly one side), and reports that *diff set*
//! back. Clustering operates entirely on diff sets, which also gives a
//! useful identity: because symmetric difference cancels, the distance
//! between two machines equals the distance between their diff sets.

use std::collections::BTreeSet;

use crate::item::{symmetric_difference, Item, ItemSet};
use crate::parser::{FingerprintSource, ParserRegistry, ResourceData};

/// The complete fingerprint of one machine, split by provenance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineFingerprint {
    /// Machine identifier.
    pub machine: String,
    /// Items produced by (Mirage or vendor) parsers.
    pub parsed: ItemSet,
    /// Items produced by content chunking (no parser available).
    pub content: ItemSet,
}

impl MachineFingerprint {
    /// Creates an empty fingerprint for `machine`.
    pub fn new(machine: impl Into<String>) -> Self {
        MachineFingerprint {
            machine: machine.into(),
            parsed: BTreeSet::new(),
            content: BTreeSet::new(),
        }
    }

    /// Fingerprints a list of resources with `registry`.
    pub fn of_resources(
        machine: impl Into<String>,
        resources: &[ResourceData],
        registry: &ParserRegistry,
    ) -> Self {
        let mut fp = MachineFingerprint::new(machine);
        for res in resources {
            let out = registry.fingerprint(res);
            match out.source {
                FingerprintSource::Parsed => fp.parsed.extend(out.items),
                FingerprintSource::ContentBased => fp.content.extend(out.items),
            }
        }
        fp
    }

    /// Total number of items.
    pub fn len(&self) -> usize {
        self.parsed.len() + self.content.len()
    }

    /// Returns `true` if the fingerprint holds no items.
    pub fn is_empty(&self) -> bool {
        self.parsed.is_empty() && self.content.is_empty()
    }

    /// Computes the diff set of this machine against the vendor reference.
    pub fn diff(&self, reference: &MachineFingerprint) -> DiffSet {
        DiffSet {
            machine: self.machine.clone(),
            parsed: symmetric_difference(&self.parsed, &reference.parsed),
            content: symmetric_difference(&self.content, &reference.content),
        }
    }
}

/// The set of items on which a machine differs from the vendor reference.
///
/// This is what user machines send back to the vendor (paper §3.2.3); it
/// contains items present on the reference but missing locally *and*
/// vice-versa.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffSet {
    /// Machine identifier.
    pub machine: String,
    /// Differing parser-produced items.
    pub parsed: ItemSet,
    /// Differing content-based items.
    pub content: ItemSet,
}

impl DiffSet {
    /// Creates an empty diff set (a machine identical to the reference).
    pub fn empty(machine: impl Into<String>) -> Self {
        DiffSet {
            machine: machine.into(),
            parsed: BTreeSet::new(),
            content: BTreeSet::new(),
        }
    }

    /// Total number of differing items.
    pub fn len(&self) -> usize {
        self.parsed.len() + self.content.len()
    }

    /// Returns `true` if the machine matches the reference exactly.
    pub fn is_empty(&self) -> bool {
        self.parsed.is_empty() && self.content.is_empty()
    }

    /// Manhattan distance to another machine over *content-based* items.
    ///
    /// Because `A Δ V Δ (B Δ V) = A Δ B`, comparing diff sets equals
    /// comparing the machines directly; this is the phase-2 clustering
    /// distance.
    pub fn content_distance(&self, other: &DiffSet) -> usize {
        self.content.symmetric_difference(&other.content).count()
    }

    /// Manhattan distance over *all* items (used for vendor-to-cluster
    /// distance when ordering deployments).
    pub fn total_distance(&self, other: &DiffSet) -> usize {
        self.parsed.symmetric_difference(&other.parsed).count() + self.content_distance(other)
    }

    /// Distance from the vendor reference itself (= size of the diff set).
    pub fn vendor_distance(&self) -> usize {
        self.len()
    }

    /// Returns the union of parsed and content items (for labels).
    pub fn all_items(&self) -> ItemSet {
        self.parsed.union(&self.content).cloned().collect()
    }
}

/// Convenience: builds an [`ItemSet`] from an iterator of items.
pub fn item_set<I: IntoIterator<Item = Item>>(items: I) -> ItemSet {
    items.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(s: &str) -> Item {
        Item::new(s.split('.').collect::<Vec<_>>())
    }

    fn fp(machine: &str, parsed: &[&str], content: &[&str]) -> MachineFingerprint {
        MachineFingerprint {
            machine: machine.into(),
            parsed: parsed.iter().map(|s| item(s)).collect(),
            content: content.iter().map(|s| item(s)).collect(),
        }
    }

    #[test]
    fn diff_is_symmetric_difference() {
        let vendor = fp("vendor", &["a.1", "b.1"], &["c.1"]);
        let user = fp("u1", &["a.1", "b.2"], &["c.1", "d.1"]);
        let d = user.diff(&vendor);
        assert_eq!(d.machine, "u1");
        assert_eq!(d.parsed.len(), 2); // b.1 (vendor only) + b.2 (user only)
        assert_eq!(d.content.len(), 1); // d.1
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn identical_machine_has_empty_diff() {
        let vendor = fp("vendor", &["a.1"], &["c.1"]);
        let user = fp("u", &["a.1"], &["c.1"]);
        assert!(user.diff(&vendor).is_empty());
        assert_eq!(user.diff(&vendor).vendor_distance(), 0);
    }

    #[test]
    fn diffset_distance_equals_machine_distance() {
        let vendor = fp("vendor", &[], &["x.1", "y.1"]);
        let a = fp("a", &[], &["x.1", "y.2"]);
        let b = fp("b", &[], &["x.2", "y.1"]);
        let da = a.diff(&vendor);
        let db = b.diff(&vendor);
        // Direct machine distance: items {x.1,y.2} vs {x.2,y.1} → 4.
        assert_eq!(da.content_distance(&db), 4);
        // Distance to self is zero.
        assert_eq!(da.content_distance(&da), 0);
    }

    #[test]
    fn total_distance_includes_parsed() {
        let da = DiffSet {
            machine: "a".into(),
            parsed: [item("p.1")].into_iter().collect(),
            content: [item("c.1")].into_iter().collect(),
        };
        let db = DiffSet::empty("b");
        assert_eq!(da.total_distance(&db), 2);
        assert_eq!(da.all_items().len(), 2);
    }

    #[test]
    fn of_resources_splits_by_source() {
        use crate::parser::ResourceKind;
        use crate::parsers::{image, mirage_default_registry};
        let reg = mirage_default_registry();
        let resources = vec![
            ResourceData::new(
                "/usr/bin/app",
                ResourceKind::Executable,
                image::exe_bytes("app", 1),
            ),
            ResourceData::new("/opt/blob.bin", ResourceKind::Binary, vec![1, 2, 3]),
        ];
        let fp = MachineFingerprint::of_resources("m", &resources, &reg);
        assert_eq!(fp.parsed.len(), 1);
        assert_eq!(fp.content.len(), 1);
        assert_eq!(fp.len(), 2);
        assert!(!fp.is_empty());
    }
}
