//! Concrete resource parsers.
//!
//! The Mirage-supplied tier covers executables, shared libraries, plain
//! text, and INI-style system configuration files; the vendor tier is
//! exemplified by [`PrefsParser`], the application-specific preferences
//! parser the paper's Firefox evaluation relies on (it discards irrelevant
//! keys such as timestamps and window coordinates).
//!
//! Simulated binary images carry a small structured header so that parsers
//! have real structure to parse:
//!
//! * executables: `EXESIM\0<name>\0<build-hash-hex>\0<payload>`
//! * shared libraries: `LIBSIM\0<name>\0<version>\0<build-hash-hex>\0<payload>`

use crate::glob::Glob;
use crate::hash::HashValue;
use crate::item::Item;
use crate::parser::{ParseError, ResourceData, ResourceKind, ResourceParser};

/// Splits a NUL-separated header of `n` fields, returning the fields.
fn split_header<'a>(
    resource: &'a ResourceData,
    magic: &str,
    n: usize,
) -> Result<Vec<&'a str>, ParseError> {
    let text = std::str::from_utf8(&resource.bytes).map_err(|_| ParseError::Malformed {
        path: resource.path.clone(),
        reason: format!("missing {magic} header"),
    })?;
    let mut fields = text.splitn(n + 2, '\0');
    let found_magic = fields.next().unwrap_or("");
    if found_magic != magic {
        return Err(ParseError::Malformed {
            path: resource.path.clone(),
            reason: format!("expected {magic} header, found {found_magic:?}"),
        });
    }
    let collected: Vec<&str> = fields.take(n).collect();
    if collected.len() != n {
        return Err(ParseError::Malformed {
            path: resource.path.clone(),
            reason: format!("truncated {magic} header"),
        });
    }
    Ok(collected)
}

/// Mirage-supplied parser for executable images.
///
/// Produces a single `path.exe.FILE_HASH` item: executables are opaque, so
/// finer granularity would be useless (paper §3.2.3).
#[derive(Debug, Default, Clone, Copy)]
pub struct ExecutableParser;

impl ResourceParser for ExecutableParser {
    fn name(&self) -> &str {
        "mirage-executable"
    }

    fn parse(&self, resource: &ResourceData) -> Result<Vec<Item>, ParseError> {
        split_header(resource, "EXESIM", 2)?;
        let hash = HashValue::of(&resource.bytes);
        Ok(vec![Item::new([
            resource.path.as_str(),
            "exe",
            &hash.short(),
        ])])
    }
}

/// Mirage-supplied parser for shared libraries.
///
/// Produces a single `path.lib.VERSION.HASH` item. Keeping the version as
/// its own segment lets the vendor truncate away the build hash while
/// preserving the version (the libc-compiled-with-different-flags example
/// in the paper).
#[derive(Debug, Default, Clone, Copy)]
pub struct SharedLibraryParser;

impl ResourceParser for SharedLibraryParser {
    fn name(&self) -> &str {
        "mirage-shared-library"
    }

    fn parse(&self, resource: &ResourceData) -> Result<Vec<Item>, ParseError> {
        let fields = split_header(resource, "LIBSIM", 3)?;
        let version = fields[1];
        let hash = HashValue::of(&resource.bytes);
        Ok(vec![Item::new([
            resource.path.as_str(),
            "lib",
            version,
            &hash.short(),
        ])])
    }
}

/// Mirage-supplied parser for plain text files.
///
/// Produces one `path.line.N.LINE_HASH` item per line.
#[derive(Debug, Default, Clone, Copy)]
pub struct TextParser;

impl ResourceParser for TextParser {
    fn name(&self) -> &str {
        "mirage-text"
    }

    fn parse(&self, resource: &ResourceData) -> Result<Vec<Item>, ParseError> {
        let text = resource.text()?;
        Ok(text
            .lines()
            .enumerate()
            .map(|(i, line)| {
                Item::new([
                    resource.path.as_str(),
                    "line",
                    &i.to_string(),
                    &HashValue::of_str(line).short(),
                ])
            })
            .collect())
    }
}

/// Mirage-supplied parser for INI-style configuration files.
///
/// Produces one `path.SECTION.KEY.VALUE_HASH` item per key. Comments
/// (`#` or `;`) and blank lines are discarded — they are irrelevant to
/// application behaviour, and discarding them is exactly what lets the
/// full-parser clustering of Figure 6 place comment-edited machines with
/// their unedited twins.
#[derive(Debug, Default, Clone, Copy)]
pub struct IniConfigParser;

impl ResourceParser for IniConfigParser {
    fn name(&self) -> &str {
        "mirage-ini-config"
    }

    fn parse(&self, resource: &ResourceData) -> Result<Vec<Item>, ParseError> {
        let text = resource.text()?;
        let mut items = Vec::new();
        let mut section = "global".to_string();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            match line.split_once('=') {
                Some((key, value)) => {
                    items.push(Item::new([
                        resource.path.as_str(),
                        section.as_str(),
                        key.trim(),
                        &HashValue::of_str(value.trim()).short(),
                    ]));
                }
                None => {
                    // Bare directive (e.g. `skip-networking`).
                    if line.contains(char::is_whitespace) {
                        return Err(ParseError::Malformed {
                            path: resource.path.clone(),
                            reason: format!("line {}: not a key=value or directive", lineno + 1),
                        });
                    }
                    items.push(Item::new([
                        resource.path.as_str(),
                        section.as_str(),
                        line,
                        &HashValue::of_str("").short(),
                    ]));
                }
            }
        }
        Ok(items)
    }
}

/// Vendor-supplied parser for browser-style preference files.
///
/// Accepts lines of the form `user_pref("key", value);`, skipping blanks
/// and `//` comments. Keys matching any of the `irrelevant` globs —
/// timestamps, window geometry, and similar user-specific noise — are
/// discarded, which is the vendor's lever for sound clustering in the
/// paper's Figure 8.
#[derive(Debug, Default, Clone)]
pub struct PrefsParser {
    irrelevant: Vec<Glob>,
}

impl PrefsParser {
    /// Creates a parser that keeps every key.
    pub fn new() -> Self {
        PrefsParser {
            irrelevant: Vec::new(),
        }
    }

    /// Creates a parser that discards keys matching any of `patterns`.
    pub fn ignoring<I, S>(patterns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PrefsParser {
            irrelevant: patterns.into_iter().map(|p| Glob::new(p.into())).collect(),
        }
    }

    fn is_irrelevant(&self, key: &str) -> bool {
        self.irrelevant.iter().any(|g| g.matches(key))
    }
}

impl ResourceParser for PrefsParser {
    fn name(&self) -> &str {
        "vendor-prefs"
    }

    fn parse(&self, resource: &ResourceData) -> Result<Vec<Item>, ParseError> {
        let text = resource.text()?;
        let mut items = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            let inner = line
                .strip_prefix("user_pref(")
                .and_then(|l| l.strip_suffix(");"))
                .ok_or_else(|| ParseError::Malformed {
                    path: resource.path.clone(),
                    reason: format!("line {}: not a user_pref statement", lineno + 1),
                })?;
            let (key_part, value_part) =
                inner.split_once(',').ok_or_else(|| ParseError::Malformed {
                    path: resource.path.clone(),
                    reason: format!("line {}: missing value", lineno + 1),
                })?;
            let key = key_part.trim().trim_matches('"');
            let value = value_part.trim();
            if self.is_irrelevant(key) {
                continue;
            }
            items.push(Item::new([
                resource.path.as_str(),
                "pref",
                key,
                &HashValue::of_str(value).short(),
            ]));
        }
        Ok(items)
    }
}

/// Builds a registry preloaded with the Mirage-supplied parsers.
///
/// Mirror of the paper's statement that Mirage itself provides parsers for
/// executables, shared libraries, and system-wide configuration files:
/// the config parser registered here is limited to `/etc/*` (one level),
/// leaving application-owned config files to vendor parsers or chunking.
pub fn mirage_default_registry() -> crate::parser::ParserRegistry {
    let mut reg = crate::parser::ParserRegistry::new();
    reg.register_mirage(ResourceKind::Executable, Box::new(ExecutableParser));
    reg.register_mirage(ResourceKind::SharedLibrary, Box::new(SharedLibraryParser));
    reg.register_mirage_glob(
        ResourceKind::Config,
        Glob::new("/etc/*"),
        Box::new(IniConfigParser),
    );
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::FingerprintSource;

    /// Renders a simulated executable image.
    pub fn exe_bytes(name: &str, build_hash: u64) -> Vec<u8> {
        format!("EXESIM\0{name}\0{build_hash:016x}\0payload").into_bytes()
    }

    /// Renders a simulated shared library image.
    pub fn lib_bytes(name: &str, version: &str, build_hash: u64) -> Vec<u8> {
        format!("LIBSIM\0{name}\0{version}\0{build_hash:016x}\0payload").into_bytes()
    }

    #[test]
    fn executable_single_item() {
        let res = ResourceData::new(
            "/usr/bin/php",
            ResourceKind::Executable,
            exe_bytes("php", 1),
        );
        let items = ExecutableParser.parse(&res).unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].segments()[0], "/usr/bin/php");
        assert_eq!(items[0].segments()[1], "exe");
        // Different build → different item.
        let res2 = ResourceData::new(
            "/usr/bin/php",
            ResourceKind::Executable,
            exe_bytes("php", 2),
        );
        assert_ne!(items, ExecutableParser.parse(&res2).unwrap());
    }

    #[test]
    fn executable_rejects_bad_magic() {
        let res = ResourceData::new("/usr/bin/php", ResourceKind::Executable, b"ELF".to_vec());
        assert!(ExecutableParser.parse(&res).is_err());
    }

    #[test]
    fn library_keeps_version_segment() {
        let res = ResourceData::new(
            "/lib/libc.so.6",
            ResourceKind::SharedLibrary,
            lib_bytes("libc", "2.4", 77),
        );
        let items = SharedLibraryParser.parse(&res).unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].segments()[1], "lib");
        assert_eq!(items[0].segments()[2], "2.4");
        // Same version, different flags (build hash) → same truncated item.
        let res2 = ResourceData::new(
            "/lib/libc.so.6",
            ResourceKind::SharedLibrary,
            lib_bytes("libc", "2.4", 78),
        );
        let items2 = SharedLibraryParser.parse(&res2).unwrap();
        assert_ne!(items[0], items2[0]);
        assert_eq!(items[0].truncated(3), items2[0].truncated(3));
    }

    #[test]
    fn text_parser_one_item_per_line() {
        let res = ResourceData::new("/etc/motd", ResourceKind::Text, b"hello\nworld\n".to_vec());
        let items = TextParser.parse(&res).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].segments()[2], "0");
        assert_eq!(items[1].segments()[2], "1");
    }

    #[test]
    fn text_parser_rejects_binary() {
        let res = ResourceData::new("/etc/motd", ResourceKind::Text, vec![0xff, 0xfe]);
        assert!(TextParser.parse(&res).is_err());
    }

    #[test]
    fn ini_parser_discards_comments_and_blanks() {
        let content = b"# a comment\n\n[mysqld]\ndatadir = /var/lib/mysql\nskip-networking\n; more\n[client]\nport = 3306\n";
        let res = ResourceData::new("/etc/mysql/my.cnf", ResourceKind::Config, content.to_vec());
        let items = IniConfigParser.parse(&res).unwrap();
        assert_eq!(items.len(), 3);
        assert!(items
            .iter()
            .any(|i| i.segments()[1] == "mysqld" && i.segments()[2] == "datadir"));
        assert!(items
            .iter()
            .any(|i| i.segments()[1] == "mysqld" && i.segments()[2] == "skip-networking"));
        assert!(items
            .iter()
            .any(|i| i.segments()[1] == "client" && i.segments()[2] == "port"));

        // Comment-only changes leave items untouched.
        let edited =
            b"# different comment entirely\n[mysqld]\ndatadir = /var/lib/mysql\nskip-networking\n[client]\nport = 3306\n";
        let res2 = ResourceData::new("/etc/mysql/my.cnf", ResourceKind::Config, edited.to_vec());
        assert_eq!(items, IniConfigParser.parse(&res2).unwrap());
    }

    #[test]
    fn ini_parser_value_changes_item() {
        let a = ResourceData::new(
            "/etc/my.cnf",
            ResourceKind::Config,
            b"[mysqld]\nport = 3306\n".to_vec(),
        );
        let b = ResourceData::new(
            "/etc/my.cnf",
            ResourceKind::Config,
            b"[mysqld]\nport = 3307\n".to_vec(),
        );
        let ia = IniConfigParser.parse(&a).unwrap();
        let ib = IniConfigParser.parse(&b).unwrap();
        assert_ne!(ia, ib);
        // Key path identical, only the value hash differs.
        assert_eq!(ia[0].truncated(3), ib[0].truncated(3));
    }

    #[test]
    fn ini_parser_keys_before_section_go_to_global() {
        let res = ResourceData::new("/etc/x", ResourceKind::Config, b"a = 1\n".to_vec());
        let items = IniConfigParser.parse(&res).unwrap();
        assert_eq!(items[0].segments()[1], "global");
    }

    #[test]
    fn ini_parser_rejects_garbage_line() {
        let res = ResourceData::new(
            "/etc/x",
            ResourceKind::Config,
            b"this is not a directive\n".to_vec(),
        );
        assert!(IniConfigParser.parse(&res).is_err());
    }

    #[test]
    fn prefs_parser_discards_irrelevant_keys() {
        let content = b"// Mozilla prefs\nuser_pref(\"javascript.enabled\", true);\nuser_pref(\"app.update.lastUpdateTime\", 1161100000);\nuser_pref(\"browser.window.width\", 1024);\n";
        let res = ResourceData::new(
            "/home/u/.mozilla/prefs.js",
            ResourceKind::Prefs,
            content.to_vec(),
        );
        let all = PrefsParser::new().parse(&res).unwrap();
        assert_eq!(all.len(), 3);
        let relevant = PrefsParser::ignoring(["*.lastUpdateTime", "browser.window.*"])
            .parse(&res)
            .unwrap();
        assert_eq!(relevant.len(), 1);
        assert_eq!(relevant[0].segments()[2], "javascript.enabled");
    }

    #[test]
    fn prefs_parser_rejects_malformed() {
        let res = ResourceData::new(
            "/home/u/prefs.js",
            ResourceKind::Prefs,
            b"set_pref(\"a\", 1);\n".to_vec(),
        );
        assert!(PrefsParser::new().parse(&res).is_err());
    }

    #[test]
    fn default_registry_covers_common_kinds() {
        let reg = mirage_default_registry();
        let exe = reg.fingerprint(&ResourceData::new(
            "/usr/bin/x",
            ResourceKind::Executable,
            exe_bytes("x", 0),
        ));
        assert!(matches!(exe.source, FingerprintSource::Parsed));
        // System-wide config parsed...
        let sys = reg.fingerprint(&ResourceData::new(
            "/etc/fstab",
            ResourceKind::Config,
            b"a = 1\n".to_vec(),
        ));
        assert!(matches!(sys.source, FingerprintSource::Parsed));
        // ...but application-owned config (deeper path) falls to chunking.
        let app = reg.fingerprint(&ResourceData::new(
            "/etc/mysql/my.cnf",
            ResourceKind::Config,
            b"a = 1\n".to_vec(),
        ));
        assert!(matches!(app.source, FingerprintSource::ContentBased));
    }
}

// Re-export the test-image builders for other crates' use.
pub use image::{exe_bytes, lib_bytes};

/// Builders for simulated binary images (used by the environment model).
pub mod image {
    /// Renders a simulated executable image with a payload derived from the
    /// build hash so that different builds have different bytes.
    pub fn exe_bytes(name: &str, build_hash: u64) -> Vec<u8> {
        format!("EXESIM\0{name}\0{build_hash:016x}\0payload-{build_hash:x}").into_bytes()
    }

    /// Renders a simulated shared library image.
    pub fn lib_bytes(name: &str, version: &str, build_hash: u64) -> Vec<u8> {
        format!("LIBSIM\0{name}\0{version}\0{build_hash:016x}\0payload-{build_hash:x}").into_bytes()
    }
}

/// Mirage-supplied parser for Windows-registry-style hives.
///
/// The paper notes that "the environmental resources on a Windows-based
/// system would include the registry as well" (§3.2.3). A hive renders
/// as lines of `\Key\Path\Name = value`; the parser emits one
/// `path.reg.KEY_PATH.VALUE_HASH` item per entry, giving registry
/// content the same fine-grained, comment-free treatment as INI
/// configuration files.
#[derive(Debug, Default, Clone, Copy)]
pub struct RegistryParser;

impl ResourceParser for RegistryParser {
    fn name(&self) -> &str {
        "mirage-registry"
    }

    fn parse(&self, resource: &ResourceData) -> Result<Vec<Item>, ParseError> {
        let text = resource.text()?;
        let mut items = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ParseError::Malformed {
                path: resource.path.clone(),
                reason: format!("line {}: not a registry assignment", lineno + 1),
            })?;
            let key = key.trim();
            if !key.starts_with('\\') {
                return Err(ParseError::Malformed {
                    path: resource.path.clone(),
                    reason: format!("line {}: registry keys start with a backslash", lineno + 1),
                });
            }
            items.push(Item::new([
                resource.path.as_str(),
                "reg",
                key,
                &HashValue::of_str(value.trim()).short(),
            ]));
        }
        Ok(items)
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_parser_items() {
        let content =
            b"; boot hive\n\\Software\\App\\Version = 2.0\n\\Software\\App\\InstallDir = C:\\App\n";
        let res = ResourceData::new("HKLM.hive", ResourceKind::Config, content.to_vec());
        let items = RegistryParser.parse(&res).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].segments()[1], "reg");
        assert_eq!(items[0].segments()[2], "\\Software\\App\\Version");
        // Value changes change the item; comments do not.
        let changed = b"\\Software\\App\\Version = 2.1\n\\Software\\App\\InstallDir = C:\\App\n";
        let res2 = ResourceData::new("HKLM.hive", ResourceKind::Config, changed.to_vec());
        let items2 = RegistryParser.parse(&res2).unwrap();
        assert_ne!(items[0], items2[0]);
        assert_eq!(items[1], items2[1]);
    }

    #[test]
    fn registry_parser_rejects_malformed() {
        let res = ResourceData::new(
            "HKLM.hive",
            ResourceKind::Config,
            b"Software\\App = 1\n".to_vec(),
        );
        assert!(RegistryParser.parse(&res).is_err());
        let res = ResourceData::new("HKLM.hive", ResourceKind::Config, b"no equals\n".to_vec());
        assert!(RegistryParser.parse(&res).is_err());
    }
}

/// Vendor-supplied parser for Apache-style directive configuration.
///
/// Parses `httpd.conf`-like files: `Directive arg...` lines, nested
/// `<Section arg>` ... `</Section>` blocks, and `#` comments (discarded).
/// Items take the form `path.SECTION_PATH.DIRECTIVE.ARGS_HASH`, so an
/// added `Include /etc/apache/acl.conf` line — the trigger of the
/// paper's Apache 1.3.24→1.3.26 problem \[3\] — surfaces as exactly one
/// differing item.
#[derive(Debug, Default, Clone, Copy)]
pub struct HttpdConfParser;

impl ResourceParser for HttpdConfParser {
    fn name(&self) -> &str {
        "vendor-httpd-conf"
    }

    fn parse(&self, resource: &ResourceData) -> Result<Vec<Item>, ParseError> {
        let text = resource.text()?;
        let mut items = Vec::new();
        let mut sections: Vec<String> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(close) = line.strip_prefix("</") {
                let name = close.trim_end_matches('>').trim();
                match sections.last() {
                    Some(open) if open.split(' ').next() == Some(name) => {
                        sections.pop();
                    }
                    _ => {
                        return Err(ParseError::Malformed {
                            path: resource.path.clone(),
                            reason: format!("line {}: mismatched </{name}>", lineno + 1),
                        })
                    }
                }
                continue;
            }
            if let Some(open) = line.strip_prefix('<') {
                let name = open.trim_end_matches('>').trim();
                sections.push(name.to_string());
                continue;
            }
            let mut parts = line.splitn(2, char::is_whitespace);
            let directive = parts.next().unwrap_or_default();
            let args = parts.next().unwrap_or("").trim();
            let section_path = if sections.is_empty() {
                "global".to_string()
            } else {
                sections.join("/")
            };
            items.push(Item::new([
                resource.path.as_str(),
                &section_path,
                directive,
                &HashValue::of_str(args).short(),
            ]));
        }
        if !sections.is_empty() {
            return Err(ParseError::Malformed {
                path: resource.path.clone(),
                reason: format!("unclosed section {}", sections.join("/")),
            });
        }
        Ok(items)
    }
}

#[cfg(test)]
mod httpd_tests {
    use super::*;

    fn conf(content: &str) -> ResourceData {
        ResourceData::new(
            "/etc/apache/httpd.conf",
            ResourceKind::Config,
            content.as_bytes().to_vec(),
        )
    }

    #[test]
    fn directives_and_sections() {
        let res = conf(
            "# Apache config\nServerRoot /srv\n<Directory /srv/www>\nOptions Indexes\n</Directory>\nInclude /etc/apache/acl.conf\n",
        );
        let items = HttpdConfParser.parse(&res).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].segments()[1], "global");
        assert_eq!(items[0].segments()[2], "ServerRoot");
        assert_eq!(items[1].segments()[1], "Directory /srv/www");
        assert_eq!(items[1].segments()[2], "Options");
        assert_eq!(items[2].segments()[2], "Include");
    }

    #[test]
    fn include_line_is_one_item_difference() {
        let base = conf("ServerRoot /srv\n");
        let with_include = conf("ServerRoot /srv\nInclude /etc/apache/acl.conf\n");
        let a: std::collections::BTreeSet<Item> =
            HttpdConfParser.parse(&base).unwrap().into_iter().collect();
        let b: std::collections::BTreeSet<Item> = HttpdConfParser
            .parse(&with_include)
            .unwrap()
            .into_iter()
            .collect();
        assert_eq!(a.symmetric_difference(&b).count(), 1);
    }

    #[test]
    fn comments_are_discarded() {
        let a = conf("# one comment\nServerRoot /srv\n");
        let b = conf("# a different comment\nServerRoot /srv\n");
        assert_eq!(
            HttpdConfParser.parse(&a).unwrap(),
            HttpdConfParser.parse(&b).unwrap()
        );
    }

    #[test]
    fn mismatched_sections_rejected() {
        assert!(HttpdConfParser.parse(&conf("</Directory>\n")).is_err());
        assert!(HttpdConfParser
            .parse(&conf("<Directory /x>\nOptions None\n"))
            .is_err());
        assert!(HttpdConfParser
            .parse(&conf("<IfModule a>\n</Directory>\n"))
            .is_err());
    }
}
