//! Property-based tests for the fingerprinting substrate.

use proptest::prelude::*;

use mirage_fingerprint::{fnv1a, Chunker, ChunkerParams, Glob, Item, RabinHasher};

proptest! {
    /// Chunks must tile the input exactly: contiguous, complete, in order.
    #[test]
    fn chunks_tile_input(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let chunker = Chunker::new(ChunkerParams::tiny());
        let chunks = chunker.chunk(&data);
        let mut offset = 0;
        for c in &chunks {
            prop_assert_eq!(c.offset, offset);
            prop_assert!(c.len > 0);
            offset += c.len;
        }
        prop_assert_eq!(offset, data.len());
    }

    /// All chunks except the last respect the minimum size; all chunks
    /// respect the maximum.
    #[test]
    fn chunk_bounds(data in proptest::collection::vec(any::<u8>(), 1..20_000)) {
        let params = ChunkerParams::tiny();
        let chunks = Chunker::new(params).chunk(&data);
        for (i, c) in chunks.iter().enumerate() {
            prop_assert!(c.len <= params.max_size);
            if i + 1 < chunks.len() {
                prop_assert!(c.len >= params.min_size);
            }
        }
    }

    /// Chunking is a pure function of the content.
    #[test]
    fn chunking_deterministic(data in proptest::collection::vec(any::<u8>(), 0..8_000)) {
        let chunker = Chunker::new(ChunkerParams::tiny());
        prop_assert_eq!(chunker.chunk(&data), chunker.chunk(&data));
    }

    /// Appending a suffix never changes chunk boundaries that were sealed
    /// more than one max-chunk before the old end of input.
    #[test]
    fn chunking_is_prefix_stable(
        data in proptest::collection::vec(any::<u8>(), 1000..8_000),
        suffix in proptest::collection::vec(any::<u8>(), 1..2_000),
    ) {
        let params = ChunkerParams::tiny();
        let chunker = Chunker::new(params);
        let base = chunker.chunk(&data);
        let mut extended_data = data.clone();
        extended_data.extend_from_slice(&suffix);
        let extended = chunker.chunk(&extended_data);
        // Every base chunk that ends at least one full chunk before the
        // old EOF must appear identically in the extended chunking.
        for c in &base {
            if c.offset + c.len + params.max_size <= data.len() {
                prop_assert!(
                    extended.iter().any(|e| e == c),
                    "sealed chunk at {} vanished", c.offset
                );
            }
        }
    }

    /// The rolling hash depends only on the final window of bytes.
    #[test]
    fn rabin_window_locality(
        prefix in proptest::collection::vec(any::<u8>(), 0..200),
        window in proptest::collection::vec(any::<u8>(), 16..17),
    ) {
        let mut a = RabinHasher::new(16);
        for &b in prefix.iter().chain(window.iter()) {
            a.push(b);
        }
        let mut b = RabinHasher::new(16);
        for &byte in &window {
            b.push(byte);
        }
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// FNV is deterministic and content-sensitive in the common case.
    #[test]
    fn fnv_deterministic(data in proptest::collection::vec(any::<u8>(), 0..500)) {
        prop_assert_eq!(fnv1a(&data), fnv1a(&data));
    }

    /// A literal glob (no metacharacters) matches exactly itself.
    #[test]
    fn literal_glob_matches_self(path in "[a-z/]{0,30}") {
        let g = Glob::new(path.clone());
        prop_assert!(g.matches(&path));
        let other = format!("{path}x");
        prop_assert!(!g.matches(&other));
    }

    /// `**` matches any path at all when used alone.
    #[test]
    fn double_star_matches_everything(path in "[ -~]{0,40}") {
        prop_assert!(Glob::new("**").matches(&path));
    }

    /// Item truncation produces a prefix of the original item.
    #[test]
    fn truncation_is_prefix(
        segs in proptest::collection::vec("[a-z0-9]{1,8}", 1..6),
        keep in 1usize..6,
    ) {
        let item = Item::new(segs.clone());
        let keep = keep.min(item.depth());
        let t = item.truncated(keep);
        prop_assert_eq!(t.depth(), keep);
        prop_assert!(item.starts_with(t.segments()));
    }
}
