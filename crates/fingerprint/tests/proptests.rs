//! Randomised property tests for the fingerprinting substrate.
//!
//! Inputs are generated with a seeded xorshift generator, so every run
//! exercises the same cases: failures reproduce exactly, offline, with
//! no external test-framework dependency.

use mirage_fingerprint::{fnv1a, Chunker, ChunkerParams, Glob, Item, RabinHasher};

/// Deterministic xorshift64 generator for test inputs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// A value in `0..n` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }

    /// A byte vector whose length is drawn from `min..max`.
    fn bytes_in(&mut self, min: usize, max: usize) -> Vec<u8> {
        let len = min + self.below(max - min);
        self.bytes(len)
    }
}

/// Chunks must tile the input exactly: contiguous, complete, in order.
#[test]
fn chunks_tile_input() {
    let mut rng = Rng::new(0xf1);
    let chunker = Chunker::new(ChunkerParams::tiny());
    for case in 0..40 {
        let data = rng.bytes_in(0, 20_000);
        let chunks = chunker.chunk(&data);
        let mut offset = 0;
        for c in &chunks {
            assert_eq!(c.offset, offset, "case {case}");
            assert!(c.len > 0, "case {case}");
            offset += c.len;
        }
        assert_eq!(offset, data.len(), "case {case}");
    }
}

/// All chunks except the last respect the minimum size; all chunks
/// respect the maximum.
#[test]
fn chunk_bounds() {
    let mut rng = Rng::new(0xf2);
    let params = ChunkerParams::tiny();
    for case in 0..40 {
        let data = rng.bytes_in(1, 20_000);
        let chunks = Chunker::new(params).chunk(&data);
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len <= params.max_size, "case {case}");
            if i + 1 < chunks.len() {
                assert!(c.len >= params.min_size, "case {case}");
            }
        }
    }
}

/// Chunking is a pure function of the content.
#[test]
fn chunking_deterministic() {
    let mut rng = Rng::new(0xf3);
    let chunker = Chunker::new(ChunkerParams::tiny());
    for _ in 0..30 {
        let data = rng.bytes_in(0, 8_000);
        assert_eq!(chunker.chunk(&data), chunker.chunk(&data));
    }
}

/// Appending a suffix never changes chunk boundaries that were sealed
/// more than one max-chunk before the old end of input.
#[test]
fn chunking_is_prefix_stable() {
    let mut rng = Rng::new(0xf4);
    let params = ChunkerParams::tiny();
    let chunker = Chunker::new(params);
    for case in 0..30 {
        let data = rng.bytes_in(1_000, 8_000);
        let suffix = rng.bytes_in(1, 2_000);
        let base = chunker.chunk(&data);
        let mut extended_data = data.clone();
        extended_data.extend_from_slice(&suffix);
        let extended = chunker.chunk(&extended_data);
        // Every base chunk that ends at least one full chunk before the
        // old EOF must appear identically in the extended chunking.
        for c in &base {
            if c.offset + c.len + params.max_size <= data.len() {
                assert!(
                    extended.iter().any(|e| e == c),
                    "case {case}: sealed chunk at {} vanished",
                    c.offset
                );
            }
        }
    }
}

/// The rolling hash depends only on the final window of bytes.
#[test]
fn rabin_window_locality() {
    let mut rng = Rng::new(0xf5);
    for _ in 0..50 {
        let prefix = rng.bytes_in(0, 200);
        let window = rng.bytes(16);
        let mut a = RabinHasher::new(16);
        for &b in prefix.iter().chain(window.iter()) {
            a.push(b);
        }
        let mut b = RabinHasher::new(16);
        for &byte in &window {
            b.push(byte);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}

/// FNV is deterministic and content-sensitive in the common case.
#[test]
fn fnv_deterministic() {
    let mut rng = Rng::new(0xf6);
    for _ in 0..50 {
        let data = rng.bytes_in(0, 500);
        assert_eq!(fnv1a(&data), fnv1a(&data));
        let mut flipped = data.clone();
        if !flipped.is_empty() {
            flipped[0] ^= 0xff;
            assert_ne!(fnv1a(&data), fnv1a(&flipped));
        }
    }
}

/// A literal glob (no metacharacters) matches exactly itself.
#[test]
fn literal_glob_matches_self() {
    let mut rng = Rng::new(0xf7);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz/".chars().collect();
    for _ in 0..60 {
        let len = rng.below(31);
        let path: String = (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect();
        let g = Glob::new(path.clone());
        assert!(g.matches(&path));
        let other = format!("{path}x");
        assert!(!g.matches(&other));
    }
}

/// `**` matches any path at all when used alone.
#[test]
fn double_star_matches_everything() {
    let mut rng = Rng::new(0xf8);
    for _ in 0..60 {
        let len = rng.below(41);
        // Printable ASCII: ' ' (0x20) through '~' (0x7e).
        let path: String = (0..len)
            .map(|_| char::from(0x20 + rng.below(0x5f) as u8))
            .collect();
        assert!(Glob::new("**").matches(&path));
    }
}

/// Item truncation produces a prefix of the original item.
#[test]
fn truncation_is_prefix() {
    let mut rng = Rng::new(0xf9);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789".chars().collect();
    for _ in 0..60 {
        let depth = 1 + rng.below(5);
        let segs: Vec<String> = (0..depth)
            .map(|_| {
                let len = 1 + rng.below(8);
                (0..len)
                    .map(|_| alphabet[rng.below(alphabet.len())])
                    .collect()
            })
            .collect();
        let keep = 1 + rng.below(5);
        let item = Item::new(segs.clone());
        let keep = keep.min(item.depth());
        let t = item.truncated(keep);
        assert_eq!(t.depth(), keep);
        assert!(item.starts_with(t.segments()));
    }
}

/// The interned distance kernel agrees exactly with
/// `DiffSet::content_distance` on random item sets — including empty
/// sets, identical sets, and sets sharing one pool across many diffs.
#[test]
fn lowered_distance_equals_content_distance() {
    use mirage_fingerprint::{DiffSet, ItemPool};

    let mut rng = Rng::new(0xfa);
    let letters = ["a", "b", "c", "d", "e", "f", "g", "h"];
    for case in 0..60 {
        // A shared pool across the whole population, as the clustering
        // hot path uses it.
        let mut pool = ItemPool::new();
        let diffs: Vec<DiffSet> = (0..8)
            .map(|i| {
                let mut d = DiffSet::empty(format!("m{i}"));
                for _ in 0..rng.below(6) {
                    let depth = 1 + rng.below(3);
                    let segs: Vec<&str> = (0..depth)
                        .map(|_| letters[rng.below(letters.len())])
                        .collect();
                    d.content.insert(Item::new(segs));
                }
                d
            })
            .collect();
        let lowered: Vec<_> = diffs.iter().map(|d| pool.lower(&d.content)).collect();
        for i in 0..diffs.len() {
            for j in 0..diffs.len() {
                assert_eq!(
                    lowered[i].distance(&lowered[j]),
                    diffs[i].content_distance(&diffs[j]),
                    "case {case}: machines {i} and {j}"
                );
            }
        }
    }
}

/// Lowering is order-insensitive: interning items in any order yields
/// the same pairwise distances.
#[test]
fn lowered_distance_is_pool_order_invariant() {
    use mirage_fingerprint::{ItemPool, ItemSet};

    let mut rng = Rng::new(0xfb);
    for case in 0..40 {
        let items: Vec<Item> = (0..10)
            .map(|i| Item::new([format!("seg{}", rng.below(6)), format!("v{i}")]))
            .collect();
        let a: ItemSet = items.iter().take(6).cloned().collect();
        let b: ItemSet = items.iter().skip(3).cloned().collect();

        // Pool 1: lower a then b. Pool 2: pre-intern in reverse, then
        // lower b then a.
        let mut p1 = ItemPool::new();
        let (la1, lb1) = (p1.lower(&a), p1.lower(&b));
        let mut p2 = ItemPool::new();
        for item in items.iter().rev() {
            p2.intern(item);
        }
        let (lb2, la2) = (p2.lower(&b), p2.lower(&a));
        assert_eq!(la1.distance(&lb1), la2.distance(&lb2), "case {case}");
        assert_eq!(
            la1.distance(&lb1),
            lb1.distance(&la1),
            "case {case} symmetry"
        );
    }
}
