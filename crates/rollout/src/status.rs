//! The rollout health lattice.
//!
//! A rollout's health is assessed from many independent observations
//! (one per reporting cluster, plus fleet-wide regression queries).
//! Rather than branching on observation *order*, assessments form a
//! join-semilattice: [`RolloutHealth::combine`] takes the worse of two
//! verdicts, so folding any permutation of the same observations yields
//! the same overall verdict, and adding evidence can only hold a
//! verdict steady or worsen it — never improve it mid-evaluation.

/// Overall rollout status, ordered by severity (derived `Ord`: later
/// variants are strictly worse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum RolloutStatus {
    /// No adverse evidence; the rollout may widen.
    #[default]
    Clean,
    /// The rollout is mid-flight (widening, baking, or holding) but
    /// nothing warrants an abort.
    InProgress,
    /// The guard tripped: the release is considered bad and must be
    /// rolled back (or already was).
    Failed,
}

impl RolloutStatus {
    /// Monotone join: the worse of the two statuses.
    pub fn combine(self, other: RolloutStatus) -> RolloutStatus {
        self.max(other)
    }
}

/// Why a rollout carries its current status, ordered by severity so
/// the most damning reason wins a [`RolloutHealth::combine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum RolloutStatusReason {
    /// Nothing to report.
    #[default]
    Clean,
    /// Cohorts remain to be notified.
    Widening,
    /// The frontier cohort passed but its bake timer has not elapsed.
    Baking,
    /// The guard is holding the frontier until a healthy streak
    /// accumulates (hysteresis).
    Holding,
    /// A cluster's failure rate exceeded the guard threshold.
    FailureRateExceeded,
    /// A single failure signature's population exceeded the guard's
    /// regression ceiling (top-k query).
    RegressionPopulation,
    /// The rollout was aborted and the fleet reverted.
    RolledBack,
}

impl RolloutStatusReason {
    /// The status a reason implies on its own.
    pub fn status(self) -> RolloutStatus {
        match self {
            RolloutStatusReason::Clean => RolloutStatus::Clean,
            RolloutStatusReason::Widening
            | RolloutStatusReason::Baking
            | RolloutStatusReason::Holding => RolloutStatus::InProgress,
            RolloutStatusReason::FailureRateExceeded
            | RolloutStatusReason::RegressionPopulation
            | RolloutStatusReason::RolledBack => RolloutStatus::Failed,
        }
    }

    /// Stable lowercase name for reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            RolloutStatusReason::Clean => "clean",
            RolloutStatusReason::Widening => "widening",
            RolloutStatusReason::Baking => "baking",
            RolloutStatusReason::Holding => "holding",
            RolloutStatusReason::FailureRateExceeded => "failure_rate_exceeded",
            RolloutStatusReason::RegressionPopulation => "regression_population",
            RolloutStatusReason::RolledBack => "rolled_back",
        }
    }
}

/// A `(status, reason)` verdict; the lattice element the guard and
/// controller fold observations into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RolloutHealth {
    /// Overall status.
    pub status: RolloutStatus,
    /// Most severe contributing reason.
    pub reason: RolloutStatusReason,
}

impl RolloutHealth {
    /// The bottom element: clean with no reason.
    pub fn clean() -> Self {
        RolloutHealth::default()
    }

    /// A verdict from a single reason (status implied).
    pub fn from_reason(reason: RolloutStatusReason) -> Self {
        RolloutHealth {
            status: reason.status(),
            reason,
        }
    }

    /// Monotone join: worse status wins; on equal status the more
    /// severe reason wins.
    pub fn combine(self, other: RolloutHealth) -> RolloutHealth {
        RolloutHealth {
            status: self.status.combine(other.status),
            reason: self.reason.max(other.reason),
        }
    }

    /// `true` when the verdict calls for an abort.
    pub fn failed(self) -> bool {
        self.status == RolloutStatus::Failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REASONS: [RolloutStatusReason; 7] = [
        RolloutStatusReason::Clean,
        RolloutStatusReason::Widening,
        RolloutStatusReason::Baking,
        RolloutStatusReason::Holding,
        RolloutStatusReason::FailureRateExceeded,
        RolloutStatusReason::RegressionPopulation,
        RolloutStatusReason::RolledBack,
    ];

    #[test]
    fn combine_is_commutative_associative_idempotent() {
        for a in REASONS {
            for b in REASONS {
                let ha = RolloutHealth::from_reason(a);
                let hb = RolloutHealth::from_reason(b);
                assert_eq!(ha.combine(hb), hb.combine(ha), "commutative");
                assert_eq!(ha.combine(ha), ha, "idempotent");
                for c in REASONS {
                    let hc = RolloutHealth::from_reason(c);
                    assert_eq!(
                        ha.combine(hb).combine(hc),
                        ha.combine(hb.combine(hc)),
                        "associative"
                    );
                }
            }
        }
    }

    #[test]
    fn combine_is_monotone() {
        // Joining never improves either component.
        for a in REASONS {
            for b in REASONS {
                let joined = RolloutHealth::from_reason(a).combine(RolloutHealth::from_reason(b));
                assert!(joined.status >= a.status() && joined.status >= b.status());
                assert!(joined.reason >= a && joined.reason >= b);
            }
        }
    }

    #[test]
    fn reason_status_mapping() {
        assert_eq!(RolloutStatusReason::Clean.status(), RolloutStatus::Clean);
        assert_eq!(
            RolloutStatusReason::Baking.status(),
            RolloutStatus::InProgress
        );
        assert!(RolloutHealth::from_reason(RolloutStatusReason::FailureRateExceeded).failed());
        assert!(!RolloutHealth::clean().failed());
    }

    #[test]
    fn reason_names_are_stable() {
        let names: Vec<&str> = REASONS.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            [
                "clean",
                "widening",
                "baking",
                "holding",
                "failure_rate_exceeded",
                "regression_population",
                "rolled_back"
            ]
        );
    }
}
