//! Strategy-driven rollout control with URR-closed-loop rollback.
//!
//! The deployment protocols in `mirage-deploy` answer *how to stage a
//! release across clusters*; this crate answers the question one layer
//! up: *how aggressively to widen a release across the fleet, and when
//! to abort it*. It supplies three pieces:
//!
//! 1. **A strategy vocabulary** ([`RolloutStrategy`]): `Staged` (the
//!    paper's distance-ordered cluster waves), `Canary` (a small
//!    fixed-percentage cohort plus a bake timer), `Rolling`
//!    (fixed-size machine batches), and `BlueGreen` (representatives
//!    first, everyone else second). [`RolloutPlan`] turns a strategy
//!    plus a [`mirage_deploy::DeployPlan`] into ordered machine
//!    *cohorts* — the pure planning half of what used to be a
//!    monolithic deploy loop.
//! 2. **A closed-loop controller** ([`RolloutController`]): a
//!    [`mirage_deploy::Protocol`] implementation that widens cohort by
//!    cohort and, on every driver tick, consults an [`UrrGuard`] —
//!    live per-cluster failure rates and top-k regression queries
//!    against the Upgrade Report Repository — to decide Widen / Hold /
//!    RollBack. A rollback re-notifies every enrolled machine with
//!    [`mirage_deploy::PRIOR_RELEASE`] through the same hardened
//!    notify/retry path as forward deployment and is recorded as a
//!    [`RollbackInfo`].
//! 3. **A clock-free campaign driver** ([`drive()`]): the generic
//!    command-pump half of the old end-to-end deploy loop, pluggable
//!    over any [`WaveExecutor`] (the live fleet, a test double).
//!
//! Health is a monotone lattice ([`RolloutStatus`] /
//! [`RolloutStatusReason`]): independent per-cluster assessments are
//! [`RolloutHealth::combine`]d so the overall verdict can only get
//! worse as evidence accumulates within a tick, never flap with
//! iteration order.
//!
//! # Example
//!
//! ```
//! use mirage_deploy::DeployPlan;
//! use mirage_rollout::{RolloutPlan, RolloutStrategy};
//!
//! let deploy = DeployPlan::from_named([
//!     (["a", "b", "c", "d"], 1, 1.0),
//!     (["e", "f", "g", "h"], 1, 2.0),
//! ]);
//! let plan = RolloutPlan::new(
//!     deploy,
//!     RolloutStrategy::Canary { percentage: 25.0, bake_time: 50 },
//! );
//! assert_eq!(plan.cohorts.len(), 2);
//! assert_eq!(plan.exposure_limit(), 2); // ceil(25% of 8)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod controller;
pub mod drive;
pub mod guard;
pub mod plan;
pub mod status;

pub use controller::{RollbackInfo, RolloutController, RolloutOutcome};
pub use drive::{drive, WaveExecutor, WaveOutcome};
pub use guard::{GuardSettings, UrrGuard};
pub use plan::{Cohort, RolloutPlan, RolloutStrategy};
pub use status::{RolloutHealth, RolloutStatus, RolloutStatusReason};
