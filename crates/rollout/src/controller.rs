//! The closed-loop rollout controller.
//!
//! [`RolloutController`] is a [`Protocol`]: it plugs into every
//! existing driver (the sequential simulator, the live campaign pump)
//! unchanged, because widening, holding, and rolling back are all
//! expressed through the same `Notify`/`Complete` command vocabulary
//! the staging protocols already speak. Nothing on the wire changed —
//! a rollback is an ordinary notification carrying [`PRIOR_RELEASE`],
//! so it rides the hardened retry/backoff/churn path for free.
//!
//! Two operating modes, chosen by the plan's [`RolloutStrategy`]:
//!
//! - **Staged** delegates the wire behaviour verbatim to a classic
//!   staging protocol built from a [`ProtocolChoice`] (Balanced by
//!   default). Without a guard the controller is a transparent
//!   pass-through — bit-identical to running the staging protocol
//!   directly (a property test in `mirage-sim` proves it). With a
//!   guard it adds abort authority on top of the paper's staging.
//! - **Canary / Rolling / BlueGreen** run the controller's own cohort
//!   engine: notify cohort 0, watch reports, and widen one cohort per
//!   decision tick once the frontier cohort clears the pass threshold
//!   (and, for canaries, its bake timer).
//!
//! Decisions happen **only on ticks** ([`Protocol::on_tick`]) — the
//! controller's decision clock. Each tick the attached [`UrrGuard`]
//! (if any) assesses live repository health; hysteresis counters turn
//! raw verdicts into Widen / Hold / RollBack so a failure rate
//! flapping around the threshold can neither abort the rollout nor
//! let it widen.

use mirage_deploy::protocol::MachineStatus;
use mirage_deploy::{
    AnyProtocol, Command, MachineId, MachineSet, ProblemId, ProblemSet, Protocol, ProtocolChoice,
    Release, SimTime, TestOutcome, TestReport, PRIOR_RELEASE,
};
use mirage_telemetry::journal::RolloutStep;
use mirage_telemetry::{JournalEvent, Telemetry};

use crate::guard::UrrGuard;
use crate::plan::{RolloutPlan, RolloutStrategy};
use crate::status::{RolloutHealth, RolloutStatus, RolloutStatusReason};

/// Record of an executed rollback, attached to campaign results and
/// bench artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollbackInfo {
    /// The release the fleet was reverted *from* (latest forward
    /// release at abort time).
    pub from_release: Release,
    /// The release machines were told to reinstall ([`PRIOR_RELEASE`]).
    pub prior_release: Release,
    /// Frontier cohort index when the guard tripped.
    pub at_cohort: usize,
    /// Machines that had been notified of the bad release (each one
    /// receives the revert notification).
    pub exposed_machines: usize,
    /// The guard verdict that triggered the abort.
    pub reason: RolloutStatusReason,
    /// Simulated time of the abort decision.
    pub at_time: SimTime,
}

/// Summary of a finished (or in-flight) rollout, read off the
/// controller after a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RolloutOutcome {
    /// The strategy that shaped the rollout.
    pub strategy: RolloutStrategy,
    /// Final status (lattice top seen).
    pub status: RolloutStatus,
    /// Most severe reason behind the status.
    pub reason: RolloutStatusReason,
    /// Widen decisions taken (cohorts notified beyond the first).
    pub cohorts_widened: usize,
    /// Machines notified of a forward release.
    pub enrolled: usize,
    /// Machines confirmed reverted to the prior release.
    pub reverted: usize,
    /// The rollback, if the guard aborted the rollout.
    pub rollback: Option<RollbackInfo>,
}

/// Cohort-engine state (Canary / Rolling / BlueGreen modes).
#[derive(Debug, Clone)]
struct CohortEngine {
    /// Per-machine deployment status, indexed by dense machine id.
    status: Vec<MachineStatus>,
    /// Cohort index per machine (dense; every machine is in exactly
    /// one cohort). Keeps pass accounting O(1) per report.
    cohort_of: Vec<u32>,
    /// Last reported problem per machine (for fix re-notification).
    failed_problem: Vec<Option<ProblemId>>,
    /// Passing machines per cohort.
    passes: Vec<usize>,
    /// Next cohort to notify (0 = not started).
    next_cohort: usize,
    /// Machines enrolled and passed so far (completion check).
    total_passed: usize,
    /// When the frontier cohort first cleared the pass threshold
    /// (feeds the canary bake timer). Reset on each widen.
    ready_since: Option<SimTime>,
}

/// Which wire engine is running underneath the controller.
#[derive(Debug, Clone)]
enum Mode {
    /// Transparent delegation to a classic staging protocol.
    Staged(Box<AnyProtocol>),
    /// The controller's own cohort engine.
    Cohort(CohortEngine),
}

/// A strategy-driven rollout state machine with optional URR-guarded
/// abort authority. See the module docs for the operating model.
#[derive(Debug, Clone)]
pub struct RolloutController {
    plan: RolloutPlan,
    threshold: f64,
    mode: Mode,
    guard: Option<UrrGuard>,
    telemetry: Telemetry,
    /// Machines notified of any forward release, in first-notification
    /// order (the revert wave re-notifies exactly these).
    enrolled: MachineSet,
    enrolled_order: Vec<MachineId>,
    /// Machines confirmed back on the prior release.
    reverted: MachineSet,
    /// Highest forward release announced so far.
    latest_release: Release,
    /// Hysteresis counters over guard verdicts.
    healthy_streak: u32,
    unhealthy_streak: u32,
    /// Worst guard verdict observed (monotone).
    worst: RolloutHealth,
    rollback: Option<RollbackInfo>,
    completed: bool,
}

impl RolloutController {
    /// Builds a controller over `plan`. `choice` selects the staging
    /// protocol the `Staged` strategy delegates to (other strategies
    /// run the cohort engine and ignore it); `threshold` is the
    /// fraction of a cohort (or staging stage) that must pass before
    /// widening.
    pub fn new(plan: RolloutPlan, choice: ProtocolChoice, threshold: f64) -> Self {
        let n = plan.deploy.machine_count();
        let mode = match plan.strategy {
            RolloutStrategy::Staged { .. } => {
                Mode::Staged(Box::new(choice.build(plan.deploy.clone(), threshold)))
            }
            _ => Mode::Cohort(CohortEngine {
                status: vec![MachineStatus::Idle; n],
                cohort_of: {
                    let mut cohort_of = vec![0u32; n];
                    for cohort in &plan.cohorts {
                        for m in &cohort.machines {
                            cohort_of[m.index()] = cohort.index as u32;
                        }
                    }
                    cohort_of
                },
                failed_problem: vec![None; n],
                passes: vec![0; plan.cohorts.len()],
                next_cohort: 0,
                total_passed: 0,
                ready_since: None,
            }),
        };
        RolloutController {
            plan,
            threshold,
            mode,
            guard: None,
            telemetry: Telemetry::noop(),
            enrolled: MachineSet::new(),
            enrolled_order: Vec::new(),
            reverted: MachineSet::new(),
            latest_release: Release(0),
            healthy_streak: 0,
            unhealthy_streak: 0,
            worst: RolloutHealth::clean(),
            rollback: None,
            completed: false,
        }
    }

    /// Attaches a URR guard, arming the closed loop (and the decision
    /// clock: a guarded controller requests driver ticks).
    pub fn with_guard(mut self, guard: UrrGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Attaches a telemetry handle (decision counters, journal
    /// events, rollout state gauge). A `Staged` delegation forwards
    /// the handle to the inner staging protocol, so wave counters and
    /// flight events land exactly as they would running it directly.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.mode = match self.mode {
            Mode::Staged(inner) => {
                Mode::Staged(Box::new((*inner).with_telemetry(telemetry.clone())))
            }
            cohort => cohort,
        };
        self.telemetry = telemetry;
        self
    }

    /// The rollout plan this controller drives.
    pub fn plan(&self) -> &RolloutPlan {
        &self.plan
    }

    /// The rollback record, if the guard aborted the rollout.
    pub fn rollback(&self) -> Option<&RollbackInfo> {
        self.rollback.as_ref()
    }

    /// Snapshot of the rollout's outcome.
    pub fn outcome(&self) -> RolloutOutcome {
        let (status, reason) = if let Some(info) = &self.rollback {
            (RolloutStatus::Failed, info.reason.max(self.worst.reason))
        } else if self.done() {
            (RolloutStatus::Clean, RolloutStatusReason::Clean)
        } else {
            (
                RolloutStatus::InProgress.combine(self.worst.status),
                self.worst.reason.max(RolloutStatusReason::Widening),
            )
        };
        let cohorts_widened = match &self.mode {
            Mode::Staged(_) => 0,
            Mode::Cohort(engine) => engine.next_cohort.saturating_sub(1),
        };
        RolloutOutcome {
            strategy: self.plan.strategy,
            status,
            reason,
            cohorts_widened,
            enrolled: self.enrolled.len(),
            reverted: self.reverted.len(),
            rollback: self.rollback,
        }
    }

    /// Records every machine a forward `Notify` touches; pass-through
    /// observation on the staged delegation path.
    fn observe(&mut self, commands: &[Command]) {
        for command in commands {
            if let Command::Notify { machines, release } = command {
                if *release == PRIOR_RELEASE {
                    continue;
                }
                self.latest_release = self.latest_release.max(*release);
                for &m in machines {
                    if self.enrolled.insert(m) {
                        self.enrolled_order.push(m);
                    }
                }
            }
        }
    }

    /// Notifies cohort `index` of the latest forward release.
    fn notify_cohort(&mut self, index: usize) -> Command {
        let machines = self.plan.cohorts[index].machines.clone();
        let release = self.latest_release;
        let command = Command::Notify { machines, release };
        self.observe(std::slice::from_ref(&command));
        if let Mode::Cohort(engine) = &mut self.mode {
            for &m in &self.plan.cohorts[index].machines {
                engine.status[m.index()] = MachineStatus::Testing;
            }
            engine.next_cohort = index + 1;
            engine.ready_since = None;
        }
        command
    }

    /// Whether the frontier (most recently notified) cohort has
    /// cleared the pass threshold.
    fn frontier_ready(&self) -> bool {
        let Mode::Cohort(engine) = &self.mode else {
            return false;
        };
        if engine.next_cohort == 0 {
            return false;
        }
        let frontier = engine.next_cohort - 1;
        let size = self.plan.cohorts[frontier].len();
        (engine.passes[frontier] as f64) + 1e-9 >= self.threshold * size as f64
    }

    /// Executes the abort: journal + counters, then one revert wave
    /// over every enrolled machine.
    fn roll_back(&mut self, now: SimTime, reason: RolloutStatusReason) -> Vec<Command> {
        let at_cohort = match &self.mode {
            Mode::Staged(_) => 0,
            Mode::Cohort(engine) => engine.next_cohort.saturating_sub(1),
        };
        let machines: Vec<MachineId> = self
            .enrolled_order
            .iter()
            .copied()
            .filter(|&m| !self.reverted.contains(m))
            .collect();
        self.rollback = Some(RollbackInfo {
            from_release: self.latest_release,
            prior_release: PRIOR_RELEASE,
            at_cohort,
            exposed_machines: self.enrolled.len(),
            reason,
            at_time: now,
        });
        self.telemetry.counter("deploy.rollbacks", 1);
        self.telemetry.gauge("rollout.state", 2);
        self.telemetry.journal_timed(&[(
            now,
            JournalEvent::Rollout {
                step: RolloutStep::RollBack,
                cohort: at_cohort as u32,
                machines: machines.len() as u32,
            },
        )]);
        if machines.is_empty() {
            self.completed = true;
            return vec![Command::Complete];
        }
        vec![Command::Notify {
            machines,
            release: PRIOR_RELEASE,
        }]
    }

    /// Handles a report after a rollback: only revert confirmations
    /// matter; forward-release stragglers are ignored.
    fn on_report_rolled_back(&mut self, report: &TestReport) -> Vec<Command> {
        if report.release == PRIOR_RELEASE && self.enrolled.contains(report.machine) {
            self.reverted.insert(report.machine);
            if self.reverted.len() == self.enrolled.len() && !self.completed {
                self.completed = true;
                return vec![Command::Complete];
            }
        }
        Vec::new()
    }

    /// The guard's hysteresis step: updates streaks from one verdict
    /// and reports whether the rollback trigger fired.
    fn guard_step(&mut self) -> Option<RolloutStatusReason> {
        let guard = self.guard.as_ref()?;
        let settings = guard.settings;
        let verdict = guard.assess();
        self.worst = self.worst.combine(verdict);
        if verdict.failed() {
            self.unhealthy_streak += 1;
            self.healthy_streak = 0;
            if self.unhealthy_streak >= settings.unhealthy_ticks {
                return Some(verdict.reason);
            }
        } else {
            self.healthy_streak += 1;
            self.unhealthy_streak = 0;
        }
        None
    }

    /// Whether the guard (if any) currently permits widening.
    fn guard_allows_widen(&self) -> bool {
        match &self.guard {
            None => true,
            Some(guard) => self.healthy_streak >= guard.settings.healthy_ticks,
        }
    }
}

impl Protocol for RolloutController {
    fn name(&self) -> &'static str {
        match &self.mode {
            Mode::Staged(inner) => inner.name(),
            Mode::Cohort(_) => match self.plan.strategy {
                RolloutStrategy::Canary { .. } => "Canary",
                RolloutStrategy::Rolling { .. } => "Rolling",
                RolloutStrategy::BlueGreen => "BlueGreen",
                RolloutStrategy::Staged { .. } => "Staged",
            },
        }
    }

    fn start(&mut self) -> Vec<Command> {
        self.telemetry.gauge("rollout.state", 1);
        match &mut self.mode {
            Mode::Staged(inner) => {
                let commands = inner.start();
                self.observe(&commands);
                commands
            }
            Mode::Cohort(_) => {
                if self.plan.cohorts.is_empty() {
                    self.completed = true;
                    return vec![Command::Complete];
                }
                vec![self.notify_cohort(0)]
            }
        }
    }

    fn on_report(&mut self, report: &TestReport) -> Vec<Command> {
        if self.rollback.is_some() {
            return self.on_report_rolled_back(report);
        }
        match &mut self.mode {
            Mode::Staged(inner) => {
                let commands = inner.on_report(report);
                self.observe(&commands);
                commands
            }
            Mode::Cohort(engine) => {
                let m = report.machine.index();
                match report.outcome {
                    TestOutcome::Pass => {
                        // Duplicate deliveries and stale-release passes
                        // must not double-count.
                        if engine.status[m] != MachineStatus::Passed {
                            engine.status[m] = MachineStatus::Passed;
                            engine.total_passed += 1;
                            engine.passes[engine.cohort_of[m] as usize] += 1;
                        }
                    }
                    TestOutcome::Fail { problem } => {
                        if engine.status[m] != MachineStatus::Passed {
                            engine.status[m] = MachineStatus::Failed;
                            engine.failed_problem[m] = Some(problem);
                        }
                    }
                }
                if engine.next_cohort >= self.plan.cohorts.len()
                    && engine.total_passed == self.enrolled.len()
                    && !self.completed
                {
                    self.completed = true;
                    self.telemetry.gauge("rollout.state", 0);
                    return vec![Command::Complete];
                }
                Vec::new()
            }
        }
    }

    fn absorb_passes(&mut self, reports: &[(MachineId, Release)]) -> usize {
        match &mut self.mode {
            // Transparent on the staged path (pure observation cannot
            // be affected by silently absorbed passes).
            Mode::Staged(inner) if self.rollback.is_none() => inner.absorb_passes(reports),
            _ => 0,
        }
    }

    fn absorb_pass_batch(&mut self, reports: &[(MachineId, Release)]) -> bool {
        match &mut self.mode {
            Mode::Staged(inner) if self.rollback.is_none() => inner.absorb_pass_batch(reports),
            _ => false,
        }
    }

    fn on_release(&mut self, release: Release, fixed: &ProblemSet) -> Vec<Command> {
        if self.rollback.is_some() {
            // The abort already happened; a late fix changes nothing.
            return Vec::new();
        }
        match &mut self.mode {
            Mode::Staged(inner) => {
                let commands = inner.on_release(release, fixed);
                self.observe(&commands);
                commands
            }
            Mode::Cohort(engine) => {
                self.latest_release = self.latest_release.max(release);
                let mut machines = Vec::new();
                for (m, status) in engine.status.iter_mut().enumerate() {
                    if *status == MachineStatus::Failed
                        && engine.failed_problem[m].is_some_and(|p| fixed.contains(p))
                    {
                        *status = MachineStatus::Testing;
                        machines.push(MachineId(m as u32));
                    }
                }
                if machines.is_empty() {
                    Vec::new()
                } else {
                    vec![Command::Notify { machines, release }]
                }
            }
        }
    }

    fn on_tick(&mut self, now: SimTime) -> Vec<Command> {
        if self.rollback.is_some() || self.completed {
            return Vec::new();
        }
        if let Some(reason) = self.guard_step() {
            return self.roll_back(now, reason);
        }
        match &mut self.mode {
            Mode::Staged(inner) => {
                let commands = inner.on_tick(now);
                self.observe(&commands);
                commands
            }
            Mode::Cohort(_) => {
                if !self.frontier_ready() {
                    return Vec::new();
                }
                let Mode::Cohort(engine) = &mut self.mode else {
                    unreachable!();
                };
                if engine.next_cohort >= self.plan.cohorts.len() {
                    return Vec::new();
                }
                if engine.ready_since.is_none() {
                    engine.ready_since = Some(now);
                }
                let baked = match self.plan.strategy {
                    RolloutStrategy::Canary { bake_time, .. } => engine
                        .ready_since
                        .is_some_and(|since| now >= since.saturating_add(bake_time)),
                    _ => true,
                };
                let next = engine.next_cohort;
                if baked && self.guard_allows_widen() {
                    self.telemetry.counter("rollout.widens", 1);
                    self.telemetry.journal_timed(&[(
                        now,
                        JournalEvent::Rollout {
                            step: RolloutStep::Widen,
                            cohort: next as u32,
                            machines: self.plan.cohorts[next].len() as u32,
                        },
                    )]);
                    vec![self.notify_cohort(next)]
                } else {
                    self.telemetry.counter("rollout.holds", 1);
                    Vec::new()
                }
            }
        }
    }

    fn rep_timeouts(&self) -> u64 {
        match &self.mode {
            Mode::Staged(inner) => inner.rep_timeouts(),
            Mode::Cohort(_) => 0,
        }
    }

    fn wants_ticks(&self) -> bool {
        // Cohort widening and guard evaluation both run on the
        // decision clock; an unguarded staged delegation stays
        // clock-free (bit-identical to the bare staging protocol).
        self.guard.is_some() || matches!(self.mode, Mode::Cohort(_))
    }

    fn done(&self) -> bool {
        if self.rollback.is_some() {
            return self.reverted.len() == self.enrolled.len();
        }
        match &self.mode {
            Mode::Staged(inner) => inner.done(),
            Mode::Cohort(engine) => {
                engine.next_cohort >= self.plan.cohorts.len()
                    && engine.total_passed == self.enrolled.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardSettings;
    use mirage_deploy::DeployPlan;
    use mirage_report::{Report, ReportImage, Urr};
    use std::sync::Arc;

    fn deploy() -> DeployPlan {
        DeployPlan::from_named([
            (["a0", "a1", "a2", "a3"], 1, 1.0),
            (["b0", "b1", "b2", "b3"], 1, 2.0),
        ])
    }

    fn pass(machine: MachineId) -> TestReport {
        TestReport {
            machine,
            release: Release(0),
            outcome: TestOutcome::Pass,
        }
    }

    fn controller(strategy: RolloutStrategy) -> RolloutController {
        RolloutController::new(
            RolloutPlan::new(deploy(), strategy),
            ProtocolChoice::Balanced,
            1.0,
        )
    }

    #[test]
    fn cohort_engine_widens_on_ticks_and_completes() {
        let mut c = controller(RolloutStrategy::Rolling { batch_size: 4 });
        assert!(c.wants_ticks());
        let commands = c.start();
        let Command::Notify { machines, release } = &commands[0] else {
            panic!("expected notify");
        };
        assert_eq!((machines.len(), *release), (4, Release(0)));
        // Frontier not ready: ticks hold.
        assert!(c.on_tick(25).is_empty());
        for m in 0..4 {
            assert!(c.on_report(&pass(MachineId(m))).is_empty());
        }
        // Ready frontier widens on the next tick.
        let commands = c.on_tick(50);
        assert!(matches!(&commands[0], Command::Notify { machines, .. } if machines.len() == 4));
        assert!(!c.done());
        for m in 4..7 {
            assert!(c.on_report(&pass(MachineId(m))).is_empty());
        }
        let commands = c.on_report(&pass(MachineId(7)));
        assert_eq!(commands, vec![Command::Complete]);
        assert!(c.done());
        let outcome = c.outcome();
        assert_eq!(outcome.status, RolloutStatus::Clean);
        assert_eq!(outcome.cohorts_widened, 1);
        assert_eq!(outcome.enrolled, 8);
        assert!(outcome.rollback.is_none());
    }

    #[test]
    fn canary_waits_for_bake_time() {
        let mut c = controller(RolloutStrategy::Canary {
            percentage: 25.0,
            bake_time: 100,
        });
        let _ = c.start(); // canary cohort: 2 machines
        for m in 0..2 {
            c.on_report(&pass(MachineId(m)));
        }
        // Ready at tick 25, but the bake window runs to 125.
        assert!(c.on_tick(25).is_empty());
        assert!(c.on_tick(75).is_empty());
        let commands = c.on_tick(125);
        assert!(matches!(&commands[0], Command::Notify { machines, .. } if machines.len() == 6));
    }

    #[test]
    fn duplicate_pass_reports_do_not_double_count() {
        let mut c = controller(RolloutStrategy::Rolling { batch_size: 4 });
        let _ = c.start();
        c.on_report(&pass(MachineId(0)));
        c.on_report(&pass(MachineId(0)));
        let Mode::Cohort(engine) = &c.mode else {
            panic!()
        };
        assert_eq!(engine.total_passed, 1);
        assert_eq!(engine.passes[0], 1);
    }

    #[test]
    fn fix_renotifies_only_failed_machines_whose_problem_is_fixed() {
        let mut c = controller(RolloutStrategy::Rolling { batch_size: 8 });
        let _ = c.start();
        let p0 = ProblemId(0);
        let p1 = ProblemId(1);
        c.on_report(&TestReport {
            machine: MachineId(0),
            release: Release(0),
            outcome: TestOutcome::Fail { problem: p0 },
        });
        c.on_report(&TestReport {
            machine: MachineId(1),
            release: Release(0),
            outcome: TestOutcome::Fail { problem: p1 },
        });
        let mut fixed = ProblemSet::new();
        fixed.insert(p0);
        let commands = c.on_release(Release(1), &fixed);
        assert_eq!(
            commands,
            vec![Command::Notify {
                machines: vec![MachineId(0)],
                release: Release(1),
            }]
        );
        // The re-notified machine passes against the new release.
        let commands = c.on_report(&TestReport {
            machine: MachineId(0),
            release: Release(1),
            outcome: TestOutcome::Pass,
        });
        assert!(commands.is_empty());
    }

    #[test]
    fn guard_trips_rollback_with_hysteresis_and_revert_completes() {
        let urr = Arc::new(Urr::new());
        let guard = UrrGuard::new(
            Arc::clone(&urr),
            GuardSettings {
                max_cluster_failure_rate: 0.3,
                min_reports: 2,
                unhealthy_ticks: 2,
                healthy_ticks: 1,
                ..GuardSettings::default()
            },
        );
        let mut c = controller(RolloutStrategy::Canary {
            percentage: 50.0,
            bake_time: 0,
        })
        .with_guard(guard);
        let _ = c.start(); // canary: machines 0..4
        for i in 0..4 {
            urr.deposit(Report::failure(
                format!("a{i}"),
                0,
                "upgrade",
                "r0",
                "crash",
                "detail",
                ReportImage::new("digest", vec![], vec![], vec![]),
            ));
        }
        // First unhealthy tick: hold (hysteresis), no rollback yet.
        assert!(c.on_tick(25).is_empty());
        assert!(c.rollback().is_none());
        // Second consecutive unhealthy tick trips the abort.
        let commands = c.on_tick(50);
        let Command::Notify { machines, release } = &commands[0] else {
            panic!("expected revert notify");
        };
        assert_eq!(*release, PRIOR_RELEASE);
        assert_eq!(machines.len(), 4, "only the canary cohort was exposed");
        let info = *c.rollback().expect("rollback recorded");
        assert_eq!(info.exposed_machines, 4);
        assert_eq!(info.reason, RolloutStatusReason::FailureRateExceeded);
        assert_eq!(info.at_time, 50);
        assert!(!c.done());
        // A late fix is ignored after the abort.
        let mut fixed = ProblemSet::new();
        fixed.insert(ProblemId(0));
        assert!(c.on_release(Release(1), &fixed).is_empty());
        // Revert confirmations drain to completion.
        for m in 0..3 {
            assert!(c
                .on_report(&TestReport {
                    machine: MachineId(m),
                    release: PRIOR_RELEASE,
                    outcome: TestOutcome::Pass,
                })
                .is_empty());
        }
        let commands = c.on_report(&TestReport {
            machine: MachineId(3),
            release: PRIOR_RELEASE,
            outcome: TestOutcome::Pass,
        });
        assert_eq!(commands, vec![Command::Complete]);
        assert!(c.done());
        let outcome = c.outcome();
        assert_eq!(outcome.status, RolloutStatus::Failed);
        assert_eq!(outcome.reverted, 4);
    }

    #[test]
    fn flapping_health_neither_aborts_nor_oscillates() {
        let urr = Arc::new(Urr::new());
        let guard = UrrGuard::new(
            Arc::clone(&urr),
            GuardSettings {
                max_cluster_failure_rate: 0.4,
                min_reports: 2,
                unhealthy_ticks: 2,
                healthy_ticks: 1,
                ..GuardSettings::default()
            },
        );
        let mut c = controller(RolloutStrategy::Rolling { batch_size: 4 }).with_guard(guard);
        let _ = c.start();
        let image = || ReportImage::new("digest", vec![], vec![], vec![]);
        // 1 failure / 2 reports: rate 0.5 > 0.4 → unhealthy tick.
        urr.deposit(Report::success("a0", 0, "upgrade", "r0"));
        urr.deposit(Report::failure(
            "a1",
            0,
            "upgrade",
            "r0",
            "crash",
            "d",
            image(),
        ));
        assert!(c.on_tick(25).is_empty());
        // Two more successes: rate 0.25 < 0.4 → healthy tick resets the
        // unhealthy streak before it can reach the trigger.
        urr.deposit(Report::success("a2", 0, "upgrade", "r0"));
        urr.deposit(Report::success("a3", 0, "upgrade", "r0"));
        assert!(c.on_tick(50).is_empty());
        // Rate climbs back over threshold: streak restarts at one.
        urr.deposit(Report::failure(
            "b0",
            0,
            "upgrade",
            "r0",
            "crash",
            "d",
            image(),
        ));
        urr.deposit(Report::failure(
            "b1",
            0,
            "upgrade",
            "r0",
            "crash",
            "d",
            image(),
        ));
        assert!(c.on_tick(75).is_empty());
        assert!(c.rollback().is_none(), "hysteresis held through the flap");
        // And back down again: still no abort, and the worst verdict is
        // remembered for the outcome without tripping.
        urr.deposit(Report::success("b2", 0, "upgrade", "r0"));
        urr.deposit(Report::success("b3", 0, "upgrade", "r0"));
        urr.deposit(Report::success("c0", 0, "upgrade", "r0"));
        assert!(c.on_tick(100).is_empty());
        assert!(c.rollback().is_none());
        assert_eq!(
            c.outcome().reason,
            RolloutStatusReason::FailureRateExceeded,
            "worst observed verdict is reported, not the final one"
        );
    }

    #[test]
    fn staged_mode_delegates_and_tracks_enrollment() {
        let mut c = controller(RolloutStrategy::Staged { waves: 2 });
        assert!(!c.wants_ticks(), "unguarded staged stays clock-free");
        let mut inner = ProtocolChoice::Balanced.build(deploy(), 1.0);
        let direct = inner.start();
        let delegated = c.start();
        assert_eq!(direct, delegated, "wire behaviour is verbatim");
        // The Balanced protocol notifies cluster 0's rep first; the
        // controller enrolled exactly that machine.
        assert_eq!(c.outcome().enrolled, 1);
        let report = pass(MachineId(0));
        assert_eq!(inner.on_report(&report), c.on_report(&report));
        assert_eq!(inner.done(), c.done());
    }

    #[test]
    fn staged_mode_with_guard_rolls_back_everything_enrolled() {
        let urr = Arc::new(Urr::new());
        let guard = UrrGuard::new(
            Arc::clone(&urr),
            GuardSettings {
                max_cluster_failure_rate: 0.3,
                min_reports: 1,
                unhealthy_ticks: 1,
                healthy_ticks: 1,
                ..GuardSettings::default()
            },
        );
        let mut c = controller(RolloutStrategy::Staged { waves: 2 }).with_guard(guard);
        assert!(c.wants_ticks(), "guarded staged needs the decision clock");
        let _ = c.start();
        c.on_report(&pass(MachineId(0))); // rep passes, stage advances
        urr.deposit(Report::failure(
            "a1",
            0,
            "upgrade",
            "r0",
            "crash",
            "detail",
            ReportImage::new("digest", vec![], vec![], vec![]),
        ));
        let commands = c.on_tick(25);
        let Command::Notify { machines, release } = &commands[0] else {
            panic!("expected revert notify");
        };
        assert_eq!(*release, PRIOR_RELEASE);
        // Everyone enrolled (rep + its cluster) gets the revert, even
        // machines that already passed the bad release.
        assert_eq!(machines.len(), c.outcome().enrolled);
        assert!(machines.contains(&MachineId(0)));
    }

    #[test]
    fn empty_plan_completes_immediately() {
        let plan = RolloutPlan::new(
            DeployPlan::default(),
            RolloutStrategy::Rolling { batch_size: 4 },
        );
        let mut c = RolloutController::new(plan, ProtocolChoice::Balanced, 1.0);
        assert_eq!(c.start(), vec![Command::Complete]);
        assert!(c.done());
    }
}
