//! The URR health guard: live repository queries → a lattice verdict.
//!
//! The guard is the sensing half of the closed loop. Each controller
//! tick it interrogates the Upgrade Report Repository the fleet is
//! already depositing into — per-cluster failure rates and the top-k
//! failure-group query from the report plane — and folds every
//! observation into one [`RolloutHealth`] verdict via the monotone
//! lattice, so the verdict is independent of cluster iteration order.
//!
//! The guard only *senses*; hysteresis (how many consecutive unhealthy
//! verdicts trigger a rollback, how many healthy ones permit a widen)
//! lives in the controller, which owns the decision clock.

use std::sync::Arc;

use mirage_report::Urr;

use crate::status::{RolloutHealth, RolloutStatusReason};

/// Thresholds for the URR guard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardSettings {
    /// A cluster whose cumulative failure rate exceeds this fraction
    /// is unhealthy (subject to `min_reports`).
    pub max_cluster_failure_rate: f64,
    /// A single failure signature whose report population reaches this
    /// count marks the rollout unhealthy regardless of per-cluster
    /// rates — the wide-but-shallow regression a rate threshold can
    /// miss when every cluster contributes only a few reports.
    /// `usize::MAX` disables the check.
    pub max_failure_population: usize,
    /// Clusters with fewer total reports than this are skipped: a lone
    /// failing representative should trigger a fix, not an abort.
    pub min_reports: usize,
    /// Consecutive unhealthy ticks required before rolling back.
    pub unhealthy_ticks: u32,
    /// Consecutive healthy ticks required before widening.
    pub healthy_ticks: u32,
}

impl Default for GuardSettings {
    fn default() -> Self {
        GuardSettings {
            max_cluster_failure_rate: 0.5,
            max_failure_population: usize::MAX,
            min_reports: 5,
            unhealthy_ticks: 2,
            healthy_ticks: 1,
        }
    }
}

/// A live health sensor over a shared [`Urr`].
#[derive(Debug, Clone)]
pub struct UrrGuard {
    urr: Arc<Urr>,
    /// The thresholds this guard applies.
    pub settings: GuardSettings,
}

impl UrrGuard {
    /// Builds a guard over `urr` with `settings`.
    pub fn new(urr: Arc<Urr>, settings: GuardSettings) -> Self {
        UrrGuard { urr, settings }
    }

    /// One sensing pass: queries the repository and joins every
    /// observation into a single verdict.
    pub fn assess(&self) -> RolloutHealth {
        let mut health = RolloutHealth::clean();
        for cluster in self.urr.cluster_failure_rates() {
            if cluster.successes + cluster.failures < self.settings.min_reports {
                continue;
            }
            if cluster.rate() > self.settings.max_cluster_failure_rate {
                health = health.combine(RolloutHealth::from_reason(
                    RolloutStatusReason::FailureRateExceeded,
                ));
            }
        }
        if self.settings.max_failure_population != usize::MAX {
            if let Some(top) = self.urr.top_k_failure_groups(1).first() {
                if top.count >= self.settings.max_failure_population {
                    health = health.combine(RolloutHealth::from_reason(
                        RolloutStatusReason::RegressionPopulation,
                    ));
                }
            }
        }
        health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::RolloutStatus;
    use mirage_report::{Report, ReportImage};

    fn failing(machine: &str, cluster: usize, sig: &str) -> Report {
        Report::failure(
            machine,
            cluster,
            "upgrade",
            "r0",
            sig,
            "detail",
            ReportImage::new("digest", vec![], vec![], vec![]),
        )
    }

    fn passing(machine: &str, cluster: usize) -> Report {
        Report::success(machine, cluster, "upgrade", "r0")
    }

    #[test]
    fn clean_repository_is_clean() {
        let urr = Arc::new(Urr::new());
        for i in 0..10 {
            urr.deposit(passing(&format!("m{i}"), 0));
        }
        let guard = UrrGuard::new(urr, GuardSettings::default());
        assert_eq!(guard.assess(), RolloutHealth::clean());
    }

    #[test]
    fn min_reports_shields_a_lone_failing_rep() {
        let urr = Arc::new(Urr::new());
        urr.deposit(failing("rep", 3, "crash"));
        let guard = UrrGuard::new(Arc::clone(&urr), GuardSettings::default());
        // One report (rate 1.0) but below the evidence floor.
        assert!(!guard.assess().failed());
        // Four more failures from the same cluster clear the floor.
        for i in 0..4 {
            urr.deposit(failing(&format!("m{i}"), 3, "crash"));
        }
        let verdict = guard.assess();
        assert_eq!(verdict.status, RolloutStatus::Failed);
        assert_eq!(verdict.reason, RolloutStatusReason::FailureRateExceeded);
    }

    #[test]
    fn healthy_majority_keeps_rate_below_threshold() {
        let urr = Arc::new(Urr::new());
        for i in 0..8 {
            urr.deposit(passing(&format!("m{i}"), 0));
        }
        urr.deposit(failing("m8", 0, "crash"));
        urr.deposit(failing("m9", 0, "crash"));
        let guard = UrrGuard::new(urr, GuardSettings::default());
        // 2/10 = 0.2 < 0.5.
        assert!(!guard.assess().failed());
    }

    #[test]
    fn population_ceiling_catches_wide_shallow_regressions() {
        let urr = Arc::new(Urr::new());
        // One failure in each of 10 clusters: every per-cluster rate is
        // below the evidence floor, but the signature population is 10.
        for c in 0..10 {
            urr.deposit(failing(&format!("m{c}"), c, "crash"));
        }
        let lenient = UrrGuard::new(Arc::clone(&urr), GuardSettings::default());
        assert!(!lenient.assess().failed(), "rate check alone misses it");
        let guard = UrrGuard::new(
            urr,
            GuardSettings {
                max_failure_population: 10,
                ..GuardSettings::default()
            },
        );
        let verdict = guard.assess();
        assert_eq!(verdict.reason, RolloutStatusReason::RegressionPopulation);
        assert!(verdict.failed());
    }
}
