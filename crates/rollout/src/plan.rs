//! Pure rollout planning: strategy → ordered machine cohorts.
//!
//! Planning is separated from driving so it can be unit-tested without
//! a fleet and inspected before a campaign commits to anything: a
//! [`RolloutPlan`] is just the deploy plan plus the cohort partition a
//! [`RolloutStrategy`] induces over it. Cohort order follows the
//! paper's staging principle — ascending vendor↔cluster distance, so
//! the environments most like the vendor's (where testing is most
//! predictive) go first.

use mirage_deploy::{DeployPlan, MachineId, SimTime};

/// How aggressively a release spreads across the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RolloutStrategy {
    /// The paper's staged deployment: distance-ordered cluster waves
    /// (representatives first within each cluster, handled by the
    /// underlying staging protocol). `waves` groups the cluster order
    /// into that many contiguous waves for exposure accounting.
    Staged {
        /// Number of cluster waves (clamped to `1..=clusters`).
        waves: usize,
    },
    /// A small fixed-percentage cohort receives the release first and
    /// must stay healthy for `bake_time` ticks of simulated time
    /// before the remainder of the fleet is notified.
    Canary {
        /// Fleet percentage in the canary cohort (`0.0..=100.0`;
        /// rounded up to whole machines, floored at one).
        percentage: f64,
        /// Minimum simulated time between the canary cohort passing
        /// and the rollout widening.
        bake_time: SimTime,
    },
    /// Fixed-size machine batches in distance order, each gated on the
    /// previous batch passing.
    Rolling {
        /// Machines per batch (floored at one).
        batch_size: usize,
    },
    /// Two cohorts: every cluster representative first (the "green"
    /// probe fleet), then every remaining machine.
    BlueGreen,
}

impl RolloutStrategy {
    /// Stable lowercase strategy name for reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            RolloutStrategy::Staged { .. } => "staged",
            RolloutStrategy::Canary { .. } => "canary",
            RolloutStrategy::Rolling { .. } => "rolling",
            RolloutStrategy::BlueGreen => "blue_green",
        }
    }
}

/// One ordered rollout cohort: the machines notified together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cohort {
    /// Cohort position (0 = first exposed).
    pub index: usize,
    /// Member machine ids, in notification order.
    pub machines: Vec<MachineId>,
}

impl Cohort {
    /// Number of machines in the cohort.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Returns `true` if the cohort has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }
}

/// A deploy plan partitioned into strategy-ordered cohorts — the pure
/// planning half of a rollout, with no driving state.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutPlan {
    /// The underlying cluster plan (machine table, reps, distances).
    pub deploy: DeployPlan,
    /// The strategy that shaped the cohorts.
    pub strategy: RolloutStrategy,
    /// Non-empty cohorts in notification order; together they cover
    /// every machine in the deploy plan exactly once.
    pub cohorts: Vec<Cohort>,
}

impl RolloutPlan {
    /// Partitions `deploy` into cohorts according to `strategy`.
    pub fn new(deploy: DeployPlan, strategy: RolloutStrategy) -> Self {
        let order = deploy.order_by_distance_asc();
        let groups: Vec<Vec<MachineId>> = match strategy {
            RolloutStrategy::Staged { waves } => {
                // Contiguous groups of whole clusters, sized as evenly
                // as the cluster count allows.
                let waves = waves.clamp(1, order.len().max(1));
                let base = order.len() / waves;
                let extra = order.len() % waves;
                let mut groups = Vec::with_capacity(waves);
                let mut next = 0usize;
                for wave in 0..waves {
                    let take = base + usize::from(wave < extra);
                    let members = order[next..next + take]
                        .iter()
                        .flat_map(|&c| deploy.clusters[c].members.iter().copied())
                        .collect();
                    groups.push(members);
                    next += take;
                }
                groups
            }
            RolloutStrategy::Canary {
                percentage,
                bake_time: _,
            } => {
                let machines = machines_in_distance_order(&deploy, &order);
                let n = machines.len();
                let frac = (percentage / 100.0).clamp(0.0, 1.0);
                let first = ((frac * n as f64).ceil() as usize).clamp(1, n.max(1));
                let (canary, rest) = machines.split_at(first.min(n));
                vec![canary.to_vec(), rest.to_vec()]
            }
            RolloutStrategy::Rolling { batch_size } => {
                let machines = machines_in_distance_order(&deploy, &order);
                machines
                    .chunks(batch_size.max(1))
                    .map(<[MachineId]>::to_vec)
                    .collect()
            }
            RolloutStrategy::BlueGreen => {
                let mut reps = Vec::new();
                let mut rest = Vec::new();
                for &c in &order {
                    let cluster = &deploy.clusters[c];
                    reps.extend(cluster.reps.iter().copied());
                    rest.extend(
                        cluster
                            .members
                            .iter()
                            .copied()
                            .filter(|m| !cluster.reps.contains(m)),
                    );
                }
                vec![reps, rest]
            }
        };
        let cohorts = groups
            .into_iter()
            .filter(|g| !g.is_empty())
            .enumerate()
            .map(|(index, machines)| Cohort { index, machines })
            .collect();
        RolloutPlan {
            deploy,
            strategy,
            cohorts,
        }
    }

    /// Machines exposed before the first widen decision — the size of
    /// cohort 0. This is the containment bound a guarded rollout
    /// enforces: a release aborted before any widen touches at most
    /// this many machines.
    pub fn exposure_limit(&self) -> usize {
        self.cohorts.first().map_or(0, Cohort::len)
    }

    /// Total machines across all cohorts (the full fleet).
    pub fn machine_count(&self) -> usize {
        self.cohorts.iter().map(Cohort::len).sum()
    }
}

/// All machine ids, clusters in `order`, members in plan order.
fn machines_in_distance_order(deploy: &DeployPlan, order: &[usize]) -> Vec<MachineId> {
    order
        .iter()
        .flat_map(|&c| deploy.clusters[c].members.iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three clusters of 4, distances out of id order to exercise the
    /// distance sort: cluster 1 (d=1) < cluster 2 (d=2) < cluster 0
    /// (d=3).
    fn deploy() -> DeployPlan {
        DeployPlan::from_named([
            (["a0", "a1", "a2", "a3"], 1, 3.0),
            (["b0", "b1", "b2", "b3"], 1, 1.0),
            (["c0", "c1", "c2", "c3"], 2, 2.0),
        ])
    }

    fn names(plan: &RolloutPlan, cohort: usize) -> Vec<&str> {
        plan.cohorts[cohort]
            .machines
            .iter()
            .map(|&m| plan.deploy.machine_name(m))
            .collect()
    }

    #[test]
    fn cohorts_cover_fleet_exactly_once() {
        for strategy in [
            RolloutStrategy::Staged { waves: 2 },
            RolloutStrategy::Canary {
                percentage: 10.0,
                bake_time: 50,
            },
            RolloutStrategy::Rolling { batch_size: 5 },
            RolloutStrategy::BlueGreen,
        ] {
            let plan = RolloutPlan::new(deploy(), strategy);
            assert_eq!(plan.machine_count(), 12, "{}", strategy.name());
            let mut seen: Vec<u32> = plan
                .cohorts
                .iter()
                .flat_map(|c| c.machines.iter().map(|m| m.0))
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..12).collect::<Vec<_>>(), "{}", strategy.name());
            assert!(plan.cohorts.iter().all(|c| !c.is_empty()));
        }
    }

    #[test]
    fn canary_cohort_is_ceil_of_percentage_in_distance_order() {
        let plan = RolloutPlan::new(
            deploy(),
            RolloutStrategy::Canary {
                percentage: 25.0,
                bake_time: 50,
            },
        );
        // ceil(25% of 12) = 3, from the closest cluster (cluster 1).
        assert_eq!(plan.exposure_limit(), 3);
        assert_eq!(names(&plan, 0), ["b0", "b1", "b2"]);
        assert_eq!(plan.cohorts.len(), 2);
        // A sub-machine percentage still exposes one machine.
        let plan = RolloutPlan::new(
            deploy(),
            RolloutStrategy::Canary {
                percentage: 0.1,
                bake_time: 0,
            },
        );
        assert_eq!(plan.exposure_limit(), 1);
    }

    #[test]
    fn rolling_batches_chunk_in_distance_order() {
        let plan = RolloutPlan::new(deploy(), RolloutStrategy::Rolling { batch_size: 5 });
        assert_eq!(
            plan.cohorts.iter().map(Cohort::len).collect::<Vec<_>>(),
            [5, 5, 2]
        );
        assert_eq!(names(&plan, 0), ["b0", "b1", "b2", "b3", "c0"]);
        // Zero batch size is floored at one machine per batch.
        let plan = RolloutPlan::new(deploy(), RolloutStrategy::Rolling { batch_size: 0 });
        assert_eq!(plan.cohorts.len(), 12);
    }

    #[test]
    fn blue_green_splits_reps_from_the_rest() {
        let plan = RolloutPlan::new(deploy(), RolloutStrategy::BlueGreen);
        assert_eq!(plan.cohorts.len(), 2);
        // 1 + 2 + 1 representatives, distance order.
        assert_eq!(names(&plan, 0), ["b0", "c0", "c1", "a0"]);
        assert_eq!(plan.cohorts[1].len(), 8);
    }

    #[test]
    fn staged_waves_group_whole_clusters() {
        let plan = RolloutPlan::new(deploy(), RolloutStrategy::Staged { waves: 2 });
        // 3 clusters into 2 waves: first wave takes two clusters.
        assert_eq!(
            plan.cohorts.iter().map(Cohort::len).collect::<Vec<_>>(),
            [8, 4]
        );
        assert_eq!(names(&plan, 1), ["a0", "a1", "a2", "a3"]);
        // Wave counts clamp to the cluster count.
        let plan = RolloutPlan::new(deploy(), RolloutStrategy::Staged { waves: 99 });
        assert_eq!(plan.cohorts.len(), 3);
        let plan = RolloutPlan::new(deploy(), RolloutStrategy::Staged { waves: 0 });
        assert_eq!(plan.cohorts.len(), 1);
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(RolloutStrategy::Staged { waves: 1 }.name(), "staged");
        assert_eq!(
            RolloutStrategy::Canary {
                percentage: 1.0,
                bake_time: 1
            }
            .name(),
            "canary"
        );
        assert_eq!(RolloutStrategy::Rolling { batch_size: 1 }.name(), "rolling");
        assert_eq!(RolloutStrategy::BlueGreen.name(), "blue_green");
    }
}
