//! The generic campaign pump: protocol commands → fleet waves.
//!
//! This is the *driving* half of what used to be one monolithic
//! end-to-end deploy loop: a clock-free command pump that works for
//! any [`Protocol`] (a classic staging protocol, a
//! [`crate::RolloutController`]) over any [`WaveExecutor`] (the live
//! agent fleet in `mirage-core`, a test double here). The executor
//! owns everything fleet-shaped — validation, report collection, the
//! vendor's diagnose-and-fix turnaround — while the pump owns the
//! protocol conversation and round accounting.
//!
//! Controllers that need a decision clock ([`Protocol::wants_ticks`])
//! get synthetic ticks whenever the command queue drains without the
//! protocol finishing, so bake timers and guard hysteresis work in
//! live campaigns exactly as they do under simulated time.

use std::collections::VecDeque;

use mirage_deploy::{Command, MachineId, ProblemSet, Protocol, Release, SimTime, TestReport};
use mirage_telemetry::Telemetry;

/// Synthetic decision-clock period for tick-driven protocols (matches
/// the simulator's default tick interval).
const TICK_INTERVAL: SimTime = 25;

/// Safety valve: a tick-driven protocol that makes no progress for
/// this many consecutive ticks is abandoned (the pump returns with the
/// protocol unfinished rather than spinning forever).
const STALL_CAP: u32 = 1_000;

/// What one executed notification wave produced.
#[derive(Debug, Clone, Default)]
pub struct WaveOutcome {
    /// Test reports collected from the notified machines, in
    /// notification order.
    pub reports: Vec<TestReport>,
    /// A corrected release the vendor shipped in response to this
    /// wave's failures, with the cumulative fixed-problem set.
    pub shipped: Option<(Release, ProblemSet)>,
}

/// The fleet-shaped half of a campaign: executes one notification
/// wave and reports what came back.
pub trait WaveExecutor {
    /// Notifies `machines` of `release`, runs their tests, and returns
    /// the reports (plus any fix the vendor shipped in response).
    fn notify(&mut self, machines: &[MachineId], release: Release) -> WaveOutcome;
}

/// Pumps `protocol` commands through `executor` until the protocol
/// completes. Returns the number of protocol commands executed
/// (rounds), counting the final `Complete`.
///
/// Every round is timed under a `"round"` span on `telemetry`, so a
/// campaign wrapping this in a `"campaign.deploy"` span preserves the
/// historical `campaign.deploy/round` span path.
pub fn drive<P, E>(protocol: &mut P, executor: &mut E, telemetry: &Telemetry) -> usize
where
    P: Protocol + ?Sized,
    E: WaveExecutor + ?Sized,
{
    let mut rounds = 0usize;
    let mut pending: VecDeque<Command> = protocol.start().into();
    let mut now: SimTime = 0;
    let mut stalls = 0u32;
    loop {
        while let Some(command) = pending.pop_front() {
            rounds += 1;
            let _round_span = telemetry.span("round");
            match command {
                Command::Complete => return rounds,
                Command::Notify { machines, release } => {
                    let outcome = executor.notify(&machines, release);
                    for report in &outcome.reports {
                        pending.extend(protocol.on_report(report));
                    }
                    if let Some((release, fixed)) = outcome.shipped {
                        pending.extend(protocol.on_release(release, &fixed));
                    }
                }
            }
        }
        // Queue drained without a Complete: tick-driven protocols get
        // their decision clock; anything else is simply finished with
        // whatever state it reached.
        if !protocol.wants_ticks() || protocol.done() || stalls >= STALL_CAP {
            return rounds;
        }
        now += TICK_INTERVAL;
        stalls += 1;
        let commands = protocol.on_tick(now);
        if !commands.is_empty() {
            stalls = 0;
        }
        pending.extend(commands);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::RolloutController;
    use crate::plan::{RolloutPlan, RolloutStrategy};
    use mirage_deploy::{DeployPlan, ProtocolChoice, TestOutcome};

    /// An executor over a fleet where every machine passes.
    struct AllPass;

    impl WaveExecutor for AllPass {
        fn notify(&mut self, machines: &[MachineId], release: Release) -> WaveOutcome {
            WaveOutcome {
                reports: machines
                    .iter()
                    .map(|&machine| TestReport {
                        machine,
                        release,
                        outcome: TestOutcome::Pass,
                    })
                    .collect(),
                shipped: None,
            }
        }
    }

    fn deploy() -> DeployPlan {
        DeployPlan::from_named([(["a", "b"], 1, 1.0), (["c", "d"], 1, 2.0)])
    }

    #[test]
    fn pumps_a_classic_protocol_to_completion() {
        let mut protocol = ProtocolChoice::Balanced.build(deploy(), 1.0);
        let telemetry = Telemetry::noop();
        let rounds = drive(&mut protocol, &mut AllPass, &telemetry);
        assert!(protocol.done());
        // Balanced over two 2-machine clusters: rep wave + non-rep wave
        // per cluster, plus the final Complete.
        assert_eq!(rounds, 5);
    }

    #[test]
    fn ticks_a_cohort_controller_through_widening() {
        let plan = RolloutPlan::new(deploy(), RolloutStrategy::Rolling { batch_size: 2 });
        let mut controller = RolloutController::new(plan, ProtocolChoice::Balanced, 1.0);
        let telemetry = Telemetry::noop();
        let rounds = drive(&mut controller, &mut AllPass, &telemetry);
        assert!(controller.done());
        // Two batch notifies + Complete.
        assert_eq!(rounds, 3);
        assert_eq!(controller.outcome().enrolled, 4);
    }

    /// An executor that never produces reports: a tick-driven
    /// controller can make no progress and must hit the stall cap
    /// rather than loop forever.
    struct BlackHole;

    impl WaveExecutor for BlackHole {
        fn notify(&mut self, _machines: &[MachineId], _release: Release) -> WaveOutcome {
            WaveOutcome::default()
        }
    }

    #[test]
    fn stalled_tick_driven_protocol_is_abandoned() {
        let plan = RolloutPlan::new(deploy(), RolloutStrategy::Rolling { batch_size: 2 });
        let mut controller = RolloutController::new(plan, ProtocolChoice::Balanced, 1.0);
        let telemetry = Telemetry::noop();
        let rounds = drive(&mut controller, &mut BlackHole, &telemetry);
        assert!(!controller.done());
        assert_eq!(rounds, 1, "only the first notify executed");
    }
}
