//! The upgrade-validation subsystem.

use std::collections::BTreeSet;

use mirage_env::app::{EXIT_ABORT, EXIT_NO_IMAGE};
use mirage_env::problems::run_behavior_for;
use mirage_env::{Machine, Repository, RunInput, Upgrade, UpgradeId};
use mirage_trace::{RunId, Trace};

use crate::compare::{summarize_outputs, OutputDiff};
use crate::record::RecordedRun;
use crate::sandbox::Sandbox;

/// How to treat output mismatches — the stand-in for the human decision
/// the paper asks of the user when observed behaviour differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptancePolicy {
    /// Any difference fails validation (the safe default).
    RejectDifferences,
    /// Differences are accepted (a representative approving a
    /// legitimately I/O-changing feature upgrade, §3.5).
    AcceptDifferences,
}

/// Why an application failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The upgrade did not integrate (missing image / missing required
    /// resource).
    Integration {
        /// Exit code observed.
        exit_code: i32,
    },
    /// The application crashed when run on recorded inputs.
    Crash {
        /// Exit code observed.
        exit_code: i32,
    },
    /// The application ran but produced different outputs.
    OutputMismatch {
        /// Human-readable difference list.
        diffs: Vec<String>,
    },
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Integration { exit_code } => {
                write!(f, "integration failure (exit {exit_code})")
            }
            FailureKind::Crash { exit_code } => write!(f, "crash (exit {exit_code})"),
            FailureKind::OutputMismatch { diffs } => {
                write!(f, "output mismatch: {}", diffs.join("; "))
            }
        }
    }
}

/// The validation verdict for one application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppVerdict {
    /// Application name.
    pub app: String,
    /// `Ok(())` on pass, or the failure.
    pub result: Result<(), FailureKind>,
    /// Number of recorded runs replayed (0 = integration/crash check
    /// only).
    pub runs_tested: usize,
}

impl AppVerdict {
    /// Returns `true` if the application passed.
    pub fn passed(&self) -> bool {
        self.result.is_ok()
    }
}

/// The complete validation result for one upgrade on one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// The upgrade validated.
    pub upgrade: UpgradeId,
    /// The machine it was validated on.
    pub machine: String,
    /// Files the upgrade changed in the sandbox.
    pub changed_paths: BTreeSet<String>,
    /// Applications deemed affected and their verdicts.
    pub verdicts: Vec<AppVerdict>,
}

impl ValidationReport {
    /// Returns `true` if every affected application passed.
    pub fn passed(&self) -> bool {
        self.verdicts.iter().all(AppVerdict::passed)
    }

    /// Returns the first failure, if any (the failure signature reported
    /// to the vendor).
    pub fn first_failure(&self) -> Option<(&str, &FailureKind)> {
        self.verdicts.iter().find_map(|v| match &v.result {
            Ok(()) => None,
            Err(kind) => Some((v.app.as_str(), kind)),
        })
    }
}

/// The validator: applies an upgrade in a sandbox and replays recorded
/// runs of the affected applications.
#[derive(Debug, Clone)]
pub struct Validator {
    /// Mismatch handling policy.
    pub policy: AcceptancePolicy,
}

impl Validator {
    /// Creates a validator with the safe default policy.
    pub fn new() -> Self {
        Validator {
            policy: AcceptancePolicy::RejectDifferences,
        }
    }

    /// Creates a validator with an explicit policy.
    pub fn with_policy(policy: AcceptancePolicy) -> Self {
        Validator { policy }
    }

    /// Validates `upgrade` for `machine` against its recorded runs.
    ///
    /// `runs` is the machine's trace library (all applications mixed);
    /// the validator selects the runs of affected applications itself.
    /// Returns an error only when the upgrade cannot even be installed
    /// (dependency resolution failure) — that too is a reportable result,
    /// surfaced as a [`FailureKind::Integration`] on the package itself.
    pub fn validate(
        &self,
        machine: &Machine,
        repo: &Repository,
        upgrade: &Upgrade,
        runs: &[RecordedRun],
    ) -> ValidationReport {
        let mut sandbox = Sandbox::boot(machine);
        if sandbox.apply_upgrade(repo, upgrade).is_err() {
            return ValidationReport {
                upgrade: upgrade.id(),
                machine: machine.id.clone(),
                changed_paths: BTreeSet::new(),
                verdicts: vec![AppVerdict {
                    app: upgrade.package.name.clone(),
                    result: Err(FailureKind::Integration {
                        exit_code: EXIT_NO_IMAGE,
                    }),
                    runs_tested: 0,
                }],
            };
        }
        let changed_paths = sandbox.changed_against(machine);
        let affected = sandbox.machine.apps_affected_by(&changed_paths);

        let mut verdicts = Vec::new();
        for app in &affected {
            verdicts.push(self.validate_app(&sandbox, upgrade, app, runs));
        }
        ValidationReport {
            upgrade: upgrade.id(),
            machine: machine.id.clone(),
            changed_paths,
            verdicts,
        }
    }

    fn validate_app(
        &self,
        sandbox: &Sandbox,
        upgrade: &Upgrade,
        app: &str,
        runs: &[RecordedRun],
    ) -> AppVerdict {
        // Problems trigger against the *post-upgrade* environment.
        let behavior = run_behavior_for(&sandbox.machine, app, &upgrade.problems);
        let app_runs: Vec<&RecordedRun> = runs.iter().filter(|r| r.app() == app).collect();

        if app_runs.is_empty() {
            // No traces: integration and crash checking only (§3.3).
            let trace = sandbox.machine.run_app_with_behavior(
                app,
                &RunInput::new("integration-check"),
                RunId(0),
                &behavior,
            );
            let result = match trace {
                None => Ok(()), // Application not present in the sandbox.
                Some(t) => classify_exit(&t).map(|_| ()),
            };
            return AppVerdict {
                app: app.to_string(),
                result,
                runs_tested: 0,
            };
        }

        for run in &app_runs {
            let Some(replayed) =
                sandbox
                    .machine
                    .run_app_with_behavior(app, &run.input, run.trace.run, &behavior)
            else {
                return AppVerdict {
                    app: app.to_string(),
                    result: Err(FailureKind::Integration {
                        exit_code: EXIT_NO_IMAGE,
                    }),
                    runs_tested: 0,
                };
            };
            if let Err(kind) = classify_exit(&replayed) {
                return AppVerdict {
                    app: app.to_string(),
                    result: Err(kind),
                    runs_tested: app_runs.len(),
                };
            }
            let recorded = summarize_outputs(&run.trace);
            let actual = summarize_outputs(&replayed);
            let diffs = recorded.diff(&actual);
            if !diffs.is_empty() && self.policy == AcceptancePolicy::RejectDifferences {
                return AppVerdict {
                    app: app.to_string(),
                    result: Err(FailureKind::OutputMismatch {
                        diffs: diffs.iter().map(OutputDiff::to_string).collect(),
                    }),
                    runs_tested: app_runs.len(),
                };
            }
        }
        AppVerdict {
            app: app.to_string(),
            result: Ok(()),
            runs_tested: app_runs.len(),
        }
    }
}

impl Default for Validator {
    fn default() -> Self {
        Self::new()
    }
}

fn classify_exit(trace: &Trace) -> Result<(), FailureKind> {
    match trace.exit_code() {
        Some(0) => Ok(()),
        Some(code) if code == EXIT_NO_IMAGE || code == EXIT_ABORT => {
            Err(FailureKind::Integration { exit_code: code })
        }
        Some(code) => Err(FailureKind::Crash { exit_code: code }),
        None => Err(FailureKind::Crash { exit_code: -1 }),
    }
}

/// Produces fresh reference runs for an approved I/O-changing upgrade.
///
/// After a representative accepts new behaviour, Mirage records traces of
/// the upgraded application at the representative and ships them to the
/// rest of the cluster, which can then validate the upgrade without
/// human involvement (paper §3.5).
pub fn refresh_runs(
    machine: &Machine,
    repo: &Repository,
    upgrade: &Upgrade,
    inputs: &[RunInput],
    app: &str,
) -> Vec<RecordedRun> {
    let mut sandbox = Sandbox::boot(machine);
    if sandbox.apply_upgrade(repo, upgrade).is_err() {
        return Vec::new();
    }
    let behavior = run_behavior_for(&sandbox.machine, app, &upgrade.problems);
    inputs
        .iter()
        .enumerate()
        .filter_map(|(i, input)| {
            sandbox
                .machine
                .run_app_with_behavior(app, input, RunId(i as u64), &behavior)
                .map(|trace| RecordedRun::new(input.clone(), trace))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_env::{
        AppLogic, ApplicationSpec, EnvPredicate, File, MachineBuilder, Package, ProblemEffect,
        ProblemSpec, Version, VersionReq,
    };

    /// World: an editor app (upgraded) and a plugin app that reads the
    /// editor's library. The upgrade can carry problems.
    fn world() -> (Repository, Machine) {
        let mut repo = Repository::new();
        repo.publish(
            Package::new("editor", Version::new(1, 0, 0))
                .with_file(File::executable("/usr/bin/ed", "ed", 1))
                .with_file(File::library("/usr/lib/libed.so", "libed", "1.0", 1)),
        );
        let machine = MachineBuilder::new("m")
            .install(&repo, "editor", VersionReq::Any)
            .file(File::data("/home/u/doc.txt", 3, 64))
            .app(
                ApplicationSpec::new("editor", "editor", "/usr/bin/ed")
                    .reads("/usr/lib/libed.so")
                    .with_logic(AppLogic {
                        serves_net: true,
                        writes_data: false,
                        log_path: Some("/home/u/.ed.log".into()),
                        output_path: Some("/home/u/out.txt".into()),
                        version_sensitive: false,
                    }),
            )
            .build();
        (repo, machine)
    }

    fn upgrade_v2(problems: Vec<ProblemSpec>) -> Upgrade {
        Upgrade::new(
            Package::new("editor", Version::new(2, 0, 0))
                .with_file(File::executable("/usr/bin/ed", "ed", 2))
                .with_file(File::library("/usr/lib/libed.so", "libed", "2.0", 2)),
            problems,
        )
    }

    fn record(machine: &Machine) -> Vec<RecordedRun> {
        let input = RunInput::new("w")
            .data("/home/u/doc.txt")
            .request("client", b"hello".to_vec());
        let trace = machine.run_app("editor", &input, RunId(0));
        vec![RecordedRun::new(input, trace)]
    }

    #[test]
    fn clean_upgrade_passes() {
        let (repo, machine) = world();
        let runs = record(&machine);
        let report = Validator::new().validate(&machine, &repo, &upgrade_v2(vec![]), &runs);
        assert!(report.passed(), "unexpected failure: {report:?}");
        assert!(report.changed_paths.contains("/usr/bin/ed"));
        assert_eq!(report.verdicts.len(), 1);
        assert_eq!(report.verdicts[0].runs_tested, 1);
        assert!(report.first_failure().is_none());
        // The live machine is untouched.
        assert_eq!(
            machine.pkgs.installed_version("editor"),
            Some(Version::new(1, 0, 0))
        );
    }

    #[test]
    fn crashing_upgrade_fails() {
        let (repo, machine) = world();
        let runs = record(&machine);
        let upgrade = upgrade_v2(vec![ProblemSpec::new(
            "crash",
            "editor crashes everywhere",
            EnvPredicate::Always,
            ProblemEffect::CrashOnStart {
                app: "editor".into(),
            },
        )]);
        let report = Validator::new().validate(&machine, &repo, &upgrade, &runs);
        assert!(!report.passed());
        let (app, kind) = report.first_failure().unwrap();
        assert_eq!(app, "editor");
        assert!(matches!(kind, FailureKind::Crash { .. }));
    }

    #[test]
    fn wrong_output_upgrade_fails_comparison() {
        let (repo, machine) = world();
        let runs = record(&machine);
        let upgrade = upgrade_v2(vec![ProblemSpec::new(
            "corrupt",
            "bad replies",
            EnvPredicate::Always,
            ProblemEffect::WrongOutput {
                app: "editor".into(),
                tag: "!x".into(),
            },
        )]);
        let report = Validator::new().validate(&machine, &repo, &upgrade, &runs);
        let (_, kind) = report.first_failure().unwrap();
        assert!(matches!(kind, FailureKind::OutputMismatch { .. }));
        // A permissive policy (representative approving new behaviour)
        // accepts the same difference.
        let report = Validator::with_policy(AcceptancePolicy::AcceptDifferences)
            .validate(&machine, &repo, &upgrade, &runs);
        assert!(report.passed());
    }

    #[test]
    fn environment_gated_problem_only_fires_where_triggered() {
        let (repo, machine) = world();
        let runs = record(&machine);
        let upgrade = upgrade_v2(vec![ProblemSpec::new(
            "legacy",
            "fails with legacy config",
            EnvPredicate::FileExists("/home/u/.edrc".into()),
            ProblemEffect::FailToStart {
                app: "editor".into(),
            },
        )]);
        // Machine without the legacy config passes.
        let report = Validator::new().validate(&machine, &repo, &upgrade, &runs);
        assert!(report.passed());
        // Machine with it fails.
        let mut legacy = machine.clone();
        legacy.fs.insert(File::config(
            "/home/u/.edrc",
            mirage_env::IniDoc::new().key("mode", "legacy"),
        ));
        let legacy_runs = record(&legacy);
        let report = Validator::new().validate(&legacy, &repo, &upgrade, &legacy_runs);
        assert!(!report.passed());
        assert!(matches!(
            report.first_failure().unwrap().1,
            FailureKind::Crash { .. } | FailureKind::Integration { .. }
        ));
    }

    #[test]
    fn upgrade_without_traces_gets_integration_check() {
        let (repo, machine) = world();
        // No recorded runs at all.
        let report = Validator::new().validate(&machine, &repo, &upgrade_v2(vec![]), &[]);
        assert!(report.passed());
        assert_eq!(report.verdicts[0].runs_tested, 0);
    }

    #[test]
    fn unresolvable_upgrade_reports_integration_failure() {
        let (repo, machine) = world();
        let upgrade = Upgrade::new(
            Package::new("editor", Version::new(3, 0, 0)).with_dep("ghost-lib", VersionReq::Any),
            vec![],
        );
        let report = Validator::new().validate(&machine, &repo, &upgrade, &[]);
        assert!(!report.passed());
        assert!(matches!(
            report.first_failure().unwrap().1,
            FailureKind::Integration { .. }
        ));
    }

    #[test]
    fn refresh_runs_produces_new_references() {
        let (repo, machine) = world();
        let inputs = vec![RunInput::new("w").request("client", b"hello".to_vec())];
        let refreshed = refresh_runs(&machine, &repo, &upgrade_v2(vec![]), &inputs, "editor");
        assert_eq!(refreshed.len(), 1);
        assert_eq!(refreshed[0].app(), "editor");
        assert!(refreshed[0].trace.succeeded());
        // Refreshed runs validate the same upgrade cleanly on peers.
        let report = Validator::new().validate(&machine, &repo, &upgrade_v2(vec![]), &refreshed);
        assert!(report.passed());
    }
}
