//! Recorded application runs: inputs plus the traced event log.

use mirage_env::RunInput;
use mirage_trace::Trace;

/// One recorded run of one application: the inputs that drove it and the
/// full event log it produced.
///
/// The trace-collection subsystem "saves information about the parameters
/// and environment variables that are passed to the applications" in
/// addition to the I/O log (paper §3.3); keeping the [`RunInput`] beside
/// the [`Trace`] is exactly that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedRun {
    /// The inputs of the run.
    pub input: RunInput,
    /// The recorded event log.
    pub trace: Trace,
}

impl RecordedRun {
    /// Creates a recorded run.
    pub fn new(input: RunInput, trace: Trace) -> Self {
        RecordedRun { input, trace }
    }

    /// The application this run belongs to.
    pub fn app(&self) -> &str {
        &self.trace.app
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_trace::RunId;

    #[test]
    fn accessors() {
        let run = RecordedRun::new(RunInput::new("w1"), Trace::new("m", "apache", RunId(0)));
        assert_eq!(run.app(), "apache");
        assert_eq!(run.input.id, "w1");
    }
}
