//! User-machine upgrade testing (paper §3.3).
//!
//! Mirage tests an upgrade *on the user's machine, against the user's own
//! workload* before integrating it:
//!
//! 1. the trace-collection subsystem records each application's runs —
//!    inputs (arguments, environment, network receives) and outputs
//!    (file writes, network sends) — as [`RecordedRun`]s;
//! 2. when an upgrade arrives, the dependence subsystem determines the
//!    affected applications;
//! 3. the upgrade is applied inside a [`Sandbox`] — an isolated machine
//!    booted from a copy-on-write snapshot of the live filesystem (the
//!    paper uses a modified User-Mode Linux booting from the host
//!    filesystem with CoW);
//! 4. each affected application is re-run on its recorded inputs in the
//!    sandbox; network output is suppressed-but-recorded; outputs are
//!    compared against the recorded ones, tolerating reordering of input
//!    operations;
//! 5. the result is a [`ValidationReport`]: per-application pass,
//!    integration failure, crash, or output mismatch. On mismatch a
//!    configurable [`AcceptancePolicy`] models the human decision the
//!    paper leaves to the user; discarding the sandbox *is* the rollback.
//!
//! Legitimately I/O-changing upgrades (new features) are handled by
//! [`refresh_runs`]: a representative that accepts the new behaviour
//! produces fresh reference traces in the sandbox which other cluster
//! members can validate against without human involvement (§3.5).
//!
//! # Examples
//!
//! ```
//! use mirage_env::{
//!     ApplicationSpec, File, MachineBuilder, Package, Repository, RunInput,
//!     Upgrade, Version, VersionReq,
//! };
//! use mirage_testing::{RecordedRun, Validator};
//! use mirage_trace::RunId;
//!
//! // A machine running v1 of an application, with one recorded run.
//! let mut repo = Repository::new();
//! repo.publish(
//!     Package::new("app", Version::new(1, 0, 0))
//!         .with_file(File::executable("/usr/bin/app", "app", 1)),
//! );
//! let machine = MachineBuilder::new("m")
//!     .install(&repo, "app", VersionReq::Any)
//!     .app(ApplicationSpec::new("app", "app", "/usr/bin/app"))
//!     .build();
//! let input = RunInput::new("workload");
//! let trace = machine.run_app("app", &input, RunId(0));
//! let runs = vec![RecordedRun::new(input, trace)];
//!
//! // Validate the v2 upgrade in a sandbox: apply, replay, compare.
//! let upgrade = Upgrade::new(
//!     Package::new("app", Version::new(2, 0, 0))
//!         .with_file(File::executable("/usr/bin/app", "app", 2)),
//!     vec![], // no injected problems: a clean upgrade
//! );
//! let report = Validator::new().validate(&machine, &repo, &upgrade, &runs);
//! assert!(report.passed());
//! // The live machine was never touched: discarding the sandbox was the
//! // rollback that never needed to happen.
//! assert_eq!(machine.pkgs.installed_version("app"), Some(Version::new(1, 0, 0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod compare;
pub mod record;
pub mod sandbox;
pub mod validate;

pub use compare::{summarize_outputs, OutputDiff, OutputSummary};
pub use record::RecordedRun;
pub use sandbox::Sandbox;
pub use validate::{
    refresh_runs, AcceptancePolicy, AppVerdict, FailureKind, ValidationReport, Validator,
};
