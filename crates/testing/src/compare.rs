//! Output comparison.
//!
//! The validator compares the outputs of a replayed run against the
//! recorded ones. Comparison is *per target*: all bytes written to a file
//! path, and the sequence of messages sent to each network peer. Grouping
//! by target (rather than comparing the raw event streams) provides the
//! reordering tolerance the paper requires — recorded file inputs may be
//! replayed in a different order without failing validation, but any
//! difference in what is actually written or sent is caught.

use std::collections::BTreeMap;

use mirage_trace::{SyscallEvent, Trace};

/// Outputs of one run, grouped by target.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutputSummary {
    /// Concatenated writes per file path.
    pub files: BTreeMap<String, Vec<Vec<u8>>>,
    /// Message sequences per network peer.
    pub net: BTreeMap<String, Vec<Vec<u8>>>,
    /// Exit code of the run.
    pub exit_code: Option<i32>,
}

/// Builds the output summary of a trace.
pub fn summarize_outputs(trace: &Trace) -> OutputSummary {
    let mut summary = OutputSummary {
        exit_code: trace.exit_code(),
        ..Default::default()
    };
    for ev in &trace.events {
        match ev {
            SyscallEvent::Write { path, data } => {
                summary
                    .files
                    .entry(path.clone())
                    .or_default()
                    .push(data.clone());
            }
            SyscallEvent::NetSend { peer, data } => {
                summary
                    .net
                    .entry(peer.clone())
                    .or_default()
                    .push(data.clone());
            }
            _ => {}
        }
    }
    summary
}

/// One observed difference between recorded and replayed outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputDiff {
    /// A file target's written contents differ (or the target is missing
    /// on one side).
    File {
        /// File path.
        path: String,
    },
    /// A network peer's message sequence differs.
    Net {
        /// Peer endpoint.
        peer: String,
    },
    /// Exit codes differ.
    ExitCode {
        /// Recorded exit code.
        recorded: Option<i32>,
        /// Replayed exit code.
        replayed: Option<i32>,
    },
}

impl std::fmt::Display for OutputDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutputDiff::File { path } => write!(f, "file output differs: {path}"),
            OutputDiff::Net { peer } => write!(f, "network output differs: {peer}"),
            OutputDiff::ExitCode { recorded, replayed } => {
                write!(f, "exit code differs: {recorded:?} vs {replayed:?}")
            }
        }
    }
}

impl OutputSummary {
    /// Compares two summaries, returning every difference.
    pub fn diff(&self, other: &OutputSummary) -> Vec<OutputDiff> {
        let mut diffs = Vec::new();
        let file_keys: std::collections::BTreeSet<&String> =
            self.files.keys().chain(other.files.keys()).collect();
        for path in file_keys {
            if self.files.get(path) != other.files.get(path) {
                diffs.push(OutputDiff::File { path: path.clone() });
            }
        }
        let peers: std::collections::BTreeSet<&String> =
            self.net.keys().chain(other.net.keys()).collect();
        for peer in peers {
            if self.net.get(peer) != other.net.get(peer) {
                diffs.push(OutputDiff::Net { peer: peer.clone() });
            }
        }
        if self.exit_code != other.exit_code {
            diffs.push(OutputDiff::ExitCode {
                recorded: self.exit_code,
                replayed: other.exit_code,
            });
        }
        diffs
    }

    /// Returns `true` if there are no outputs at all.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty() && self.net.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_trace::{OpenMode, RunId};

    fn trace_with(events: Vec<SyscallEvent>) -> Trace {
        let mut t = Trace::new("m", "a", RunId(0));
        for e in events {
            t.push(e);
        }
        t
    }

    fn write(path: &str, data: &[u8]) -> SyscallEvent {
        SyscallEvent::Write {
            path: path.into(),
            data: data.to_vec(),
        }
    }

    fn send(peer: &str, data: &[u8]) -> SyscallEvent {
        SyscallEvent::NetSend {
            peer: peer.into(),
            data: data.to_vec(),
        }
    }

    #[test]
    fn summary_groups_by_target() {
        let t = trace_with(vec![
            write("/log", b"a"),
            send("client", b"1"),
            write("/log", b"b"),
            send("client", b"2"),
            SyscallEvent::Exit { code: 0 },
        ]);
        let s = summarize_outputs(&t);
        assert_eq!(s.files["/log"], vec![b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(s.net["client"].len(), 2);
        assert_eq!(s.exit_code, Some(0));
        assert!(!s.is_empty());
    }

    #[test]
    fn identical_outputs_have_no_diff() {
        let t1 = trace_with(vec![write("/log", b"x"), SyscallEvent::Exit { code: 0 }]);
        let t2 = trace_with(vec![write("/log", b"x"), SyscallEvent::Exit { code: 0 }]);
        assert!(summarize_outputs(&t1)
            .diff(&summarize_outputs(&t2))
            .is_empty());
    }

    #[test]
    fn input_reordering_is_tolerated() {
        // Same outputs, inputs read in a different order.
        let t1 = trace_with(vec![
            SyscallEvent::Open {
                path: "/data/a".into(),
                mode: OpenMode::ReadOnly,
            },
            SyscallEvent::Open {
                path: "/data/b".into(),
                mode: OpenMode::ReadOnly,
            },
            write("/out", b"r"),
            SyscallEvent::Exit { code: 0 },
        ]);
        let t2 = trace_with(vec![
            SyscallEvent::Open {
                path: "/data/b".into(),
                mode: OpenMode::ReadOnly,
            },
            SyscallEvent::Open {
                path: "/data/a".into(),
                mode: OpenMode::ReadOnly,
            },
            write("/out", b"r"),
            SyscallEvent::Exit { code: 0 },
        ]);
        assert!(summarize_outputs(&t1)
            .diff(&summarize_outputs(&t2))
            .is_empty());
    }

    #[test]
    fn differences_are_reported_per_target() {
        let rec = trace_with(vec![
            write("/out", b"good"),
            send("c", b"ok"),
            SyscallEvent::Exit { code: 0 },
        ]);
        let rep = trace_with(vec![
            write("/out", b"bad"),
            send("c", b"ok"),
            send("d", b"extra"),
            SyscallEvent::Exit { code: 139 },
        ]);
        let diffs = summarize_outputs(&rec).diff(&summarize_outputs(&rep));
        assert_eq!(diffs.len(), 3);
        assert!(matches!(&diffs[0], OutputDiff::File { path } if path == "/out"));
        assert!(matches!(&diffs[1], OutputDiff::Net { peer } if peer == "d"));
        assert!(matches!(diffs[2], OutputDiff::ExitCode { .. }));
        // Display formats are human-readable.
        assert!(diffs[0].to_string().contains("/out"));
    }

    #[test]
    fn write_order_within_target_matters() {
        let t1 = trace_with(vec![write("/log", b"a"), write("/log", b"b")]);
        let t2 = trace_with(vec![write("/log", b"b"), write("/log", b"a")]);
        assert_eq!(
            summarize_outputs(&t1).diff(&summarize_outputs(&t2)).len(),
            1
        );
    }
}
