//! The isolated validation sandbox.

use mirage_env::pkg::InstallReport;
use mirage_env::{Machine, PkgError, Repository, Upgrade};
use std::collections::BTreeSet;

/// An isolated copy of a machine for upgrade validation.
///
/// Booting a sandbox takes a copy-on-write snapshot of the machine's
/// filesystem and clones its package database — the simulated equivalent
/// of the paper's User-Mode Linux instance booted from the host
/// filesystem with copy-on-write. Upgrades applied inside the sandbox
/// never touch the live machine; *discarding the sandbox is the
/// rollback*.
#[derive(Debug, Clone)]
pub struct Sandbox {
    /// The isolated machine copy.
    pub machine: Machine,
    base_paths: usize,
}

impl Sandbox {
    /// Boots a sandbox from a live machine.
    pub fn boot(machine: &Machine) -> Self {
        let copy = Machine {
            id: machine.id.clone(),
            fs: machine.fs.snapshot(),
            env: machine.env.clone(),
            pkgs: machine.pkgs.clone(),
            apps: machine.apps.clone(),
        };
        Sandbox {
            base_paths: copy.fs.len(),
            machine: copy,
        }
    }

    /// Applies an upgrade inside the sandbox.
    ///
    /// Returns the install report; the live machine is untouched.
    pub fn apply_upgrade(
        &mut self,
        repo: &Repository,
        upgrade: &Upgrade,
    ) -> Result<InstallReport, PkgError> {
        self.machine
            .pkgs
            .apply_package(&mut self.machine.fs, repo, &upgrade.package)
    }

    /// Returns the paths that differ from the machine the sandbox was
    /// booted from.
    pub fn changed_against(&self, live: &Machine) -> BTreeSet<String> {
        self.machine.fs.changed_paths(&live.fs)
    }

    /// Number of files at boot time (diagnostics).
    pub fn base_file_count(&self) -> usize {
        self.base_paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_env::{File, MachineBuilder, Package, Version, VersionReq};

    fn repo_and_machine() -> (Repository, Machine) {
        let mut repo = Repository::new();
        repo.publish(
            Package::new("editor", Version::new(1, 0, 0)).with_file(File::executable(
                "/usr/bin/ed",
                "ed",
                1,
            )),
        );
        repo.publish(
            Package::new("editor", Version::new(2, 0, 0)).with_file(File::executable(
                "/usr/bin/ed",
                "ed",
                2,
            )),
        );
        let machine = MachineBuilder::new("m")
            .install(&repo, "editor", VersionReq::Exact(Version::new(1, 0, 0)))
            .build();
        (repo, machine)
    }

    #[test]
    fn sandbox_isolates_upgrades() {
        let (repo, machine) = repo_and_machine();
        let mut sandbox = Sandbox::boot(&machine);
        let upgrade = Upgrade::new(
            repo.get("editor", Version::new(2, 0, 0)).unwrap().clone(),
            vec![],
        );
        let report = sandbox.apply_upgrade(&repo, &upgrade).unwrap();
        assert_eq!(report.installed.len(), 1);
        // Sandbox sees version 2; live machine still has version 1.
        assert_eq!(
            sandbox.machine.pkgs.installed_version("editor"),
            Some(Version::new(2, 0, 0))
        );
        assert_eq!(
            machine.pkgs.installed_version("editor"),
            Some(Version::new(1, 0, 0))
        );
        let changed = sandbox.changed_against(&machine);
        assert_eq!(changed.into_iter().collect::<Vec<_>>(), vec!["/usr/bin/ed"]);
        assert_eq!(sandbox.base_file_count(), 1);
    }

    #[test]
    fn discarding_sandbox_is_rollback() {
        let (repo, machine) = repo_and_machine();
        {
            let mut sandbox = Sandbox::boot(&machine);
            let upgrade = Upgrade::new(
                repo.get("editor", Version::new(2, 0, 0)).unwrap().clone(),
                vec![],
            );
            sandbox.apply_upgrade(&repo, &upgrade).unwrap();
            // Sandbox dropped here.
        }
        assert_eq!(
            machine.pkgs.installed_version("editor"),
            Some(Version::new(1, 0, 0))
        );
    }
}
