//! Property-based tests for the environment substrate.

use std::collections::BTreeMap;

use proptest::prelude::*;

use mirage_env::app::{execute, RunBehavior};
use mirage_env::{
    ApplicationSpec, EnvPredicate, File, FileContent, FileSystem, IniDoc, Package, PackageManager,
    Repository, RunInput, Version, VersionReq,
};
use mirage_trace::RunId;

fn arb_version() -> impl Strategy<Value = Version> {
    (0u32..5, 0u32..5, 0u32..5).prop_map(|(a, b, c)| Version::new(a, b, c))
}

fn textfile(path: &str, text: &str) -> File {
    File::new(
        path,
        mirage_fingerprint::ResourceKind::Text,
        FileContent::Text(vec![text.to_string()]),
    )
}

proptest! {
    /// Snapshots never observe later mutations of the base, and vice
    /// versa, for any interleaving of inserts/removes.
    #[test]
    fn snapshot_isolation(
        ops in proptest::collection::vec((0u8..3, 0usize..8), 0..24),
    ) {
        let mut base = FileSystem::new();
        for i in 0..4 {
            base.insert(textfile(&format!("/f{i}"), "orig"));
        }
        let snap = base.snapshot();
        let frozen: Vec<(String, FileContent)> = snap
            .iter()
            .map(|f| (f.path.clone(), f.content.clone()))
            .collect();
        for (op, slot) in ops {
            let path = format!("/f{slot}");
            match op {
                0 => {
                    base.insert(textfile(&path, "mutated"));
                }
                1 => {
                    base.remove(&path);
                }
                _ => {
                    base.insert(textfile(&format!("/new{slot}"), "fresh"));
                }
            }
        }
        // The snapshot still shows exactly its frozen view.
        prop_assert_eq!(snap.len(), frozen.len());
        for (path, content) in frozen {
            prop_assert_eq!(&snap.get(&path).unwrap().content, &content);
        }
    }

    /// Version parsing round-trips through Display.
    #[test]
    fn version_roundtrip(v in arb_version()) {
        let s = v.to_string();
        prop_assert_eq!(s.parse::<Version>().unwrap(), v);
    }

    /// VersionReq::Compatible implies AtLeast and same-major.
    #[test]
    fn compatible_implies_at_least(a in arb_version(), b in arb_version()) {
        if VersionReq::Compatible(a).matches(b) {
            prop_assert!(VersionReq::AtLeast(a).matches(b));
            prop_assert_eq!(a.major, b.major);
        }
    }

    /// Installing the same package twice is idempotent on the
    /// filesystem and the package database.
    #[test]
    fn install_idempotent(v in arb_version()) {
        let mut repo = Repository::new();
        repo.publish(
            Package::new("pkg", v).with_file(File::executable("/bin/pkg", "pkg", 1)),
        );
        let mut fs = FileSystem::new();
        let mut pm = PackageManager::new();
        pm.install(&mut fs, &repo, "pkg", VersionReq::Exact(v)).unwrap();
        let files_before = fs.len();
        let report = pm.install(&mut fs, &repo, "pkg", VersionReq::Exact(v)).unwrap();
        prop_assert!(report.installed.is_empty());
        prop_assert_eq!(fs.len(), files_before);
    }

    /// The application interpreter is deterministic for arbitrary
    /// inputs, and a crash behaviour always suppresses outputs.
    #[test]
    fn interpreter_determinism(
        args in proptest::collection::vec("[a-z]{1,6}", 0..3),
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..3),
    ) {
        let mut fs = FileSystem::new();
        fs.insert(File::executable("/bin/app", "app", 1));
        let env = BTreeMap::new();
        let app = ApplicationSpec::new("app", "app", "/bin/app").with_logic(
            mirage_env::AppLogic {
                serves_net: true,
                writes_data: false,
                log_path: Some("/log".into()),
                output_path: None,
                version_sensitive: false,
            },
        );
        let mut input = RunInput::new("w");
        for a in &args {
            input = input.arg(a.clone());
        }
        for p in &payloads {
            input = input.request("peer", p.clone());
        }
        let healthy = RunBehavior::healthy();
        let t1 = execute("m", &fs, &env, &app, &input, RunId(0), &healthy);
        let t2 = execute("m", &fs, &env, &app, &input, RunId(0), &healthy);
        prop_assert_eq!(&t1, &t2);
        prop_assert!(t1.succeeded());

        let crash = RunBehavior { crash_on_start: true, ..Default::default() };
        let tc = execute("m", &fs, &env, &app, &input, RunId(0), &crash);
        prop_assert!(!tc.succeeded());
        prop_assert!(tc.outputs().is_empty());
    }

    /// De Morgan on environment predicates: ¬(A ∧ B) ≡ (¬A ∨ ¬B).
    #[test]
    fn predicate_de_morgan(file_a in proptest::bool::ANY, file_b in proptest::bool::ANY) {
        let mut builder = mirage_env::MachineBuilder::new("m");
        if file_a {
            builder = builder.file(File::config("/a", IniDoc::new()));
        }
        if file_b {
            builder = builder.file(File::config("/b", IniDoc::new()));
        }
        let m = builder.build();
        let a = EnvPredicate::FileExists("/a".into());
        let b = EnvPredicate::FileExists("/b".into());
        let lhs = EnvPredicate::Not(Box::new(EnvPredicate::AllOf(vec![a.clone(), b.clone()])));
        let rhs = EnvPredicate::AnyOf(vec![
            EnvPredicate::Not(Box::new(a)),
            EnvPredicate::Not(Box::new(b)),
        ]);
        prop_assert_eq!(lhs.eval(&m), rhs.eval(&m));
    }

    /// Fixing problems one at a time or in one batch yields the same
    /// final problem set, and versions advance monotonically.
    #[test]
    fn fix_all_equals_sequential_fixes(n in 1usize..5) {
        use mirage_env::{ProblemEffect, ProblemId, ProblemSpec, Upgrade};
        let problems: Vec<ProblemSpec> = (0..n)
            .map(|i| {
                ProblemSpec::new(
                    format!("p{i}"),
                    "x",
                    EnvPredicate::Always,
                    ProblemEffect::CrashOnStart { app: "a".into() },
                )
            })
            .collect();
        let upgrade = Upgrade::new(Package::new("pkg", Version::new(1, 0, 0)), problems);
        let ids: Vec<ProblemId> = (0..n).map(|i| ProblemId(format!("p{i}"))).collect();
        let batch = upgrade.fix_all(ids.iter());
        let mut seq = upgrade.clone();
        for id in &ids {
            seq = seq.fix(id).unwrap();
        }
        prop_assert!(batch.problems.is_empty());
        prop_assert_eq!(batch.problems.len(), seq.problems.len());
        prop_assert_eq!(batch.package.version, seq.package.version);
        prop_assert!(batch.package.version > upgrade.package.version);
    }
}
