//! Randomised property tests for the environment substrate.
//!
//! Inputs are generated with a seeded xorshift generator, so every run
//! exercises the same cases deterministically and offline.

use std::collections::BTreeMap;

use mirage_env::app::{execute, RunBehavior};
use mirage_env::{
    ApplicationSpec, EnvPredicate, File, FileContent, FileSystem, IniDoc, Package, PackageManager,
    Repository, RunInput, Version, VersionReq,
};
use mirage_trace::RunId;

/// Deterministic xorshift64 generator for test inputs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn version(&mut self) -> Version {
        Version::new(
            self.below(5) as u32,
            self.below(5) as u32,
            self.below(5) as u32,
        )
    }
}

fn textfile(path: &str, text: &str) -> File {
    File::new(
        path,
        mirage_fingerprint::ResourceKind::Text,
        FileContent::Text(vec![text.to_string()]),
    )
}

/// Snapshots never observe later mutations of the base, and vice
/// versa, for any interleaving of inserts/removes.
#[test]
fn snapshot_isolation() {
    let mut rng = Rng::new(0xe1);
    for case in 0..48 {
        let mut base = FileSystem::new();
        for i in 0..4 {
            base.insert(textfile(&format!("/f{i}"), "orig"));
        }
        let snap = base.snapshot();
        let frozen: Vec<(String, FileContent)> = snap
            .iter()
            .map(|f| (f.path.clone(), f.content.clone()))
            .collect();
        for _ in 0..rng.below(24) {
            let op = rng.below(3);
            let slot = rng.below(8);
            let path = format!("/f{slot}");
            match op {
                0 => {
                    base.insert(textfile(&path, "mutated"));
                }
                1 => {
                    base.remove(&path);
                }
                _ => {
                    base.insert(textfile(&format!("/new{slot}"), "fresh"));
                }
            }
        }
        // The snapshot still shows exactly its frozen view.
        assert_eq!(snap.len(), frozen.len(), "case {case}");
        for (path, content) in frozen {
            assert_eq!(&snap.get(&path).unwrap().content, &content, "case {case}");
        }
    }
}

/// Version parsing round-trips through Display.
#[test]
fn version_roundtrip() {
    let mut rng = Rng::new(0xe2);
    for _ in 0..60 {
        let v = rng.version();
        let s = v.to_string();
        assert_eq!(s.parse::<Version>().unwrap(), v);
    }
}

/// VersionReq::Compatible implies AtLeast and same-major.
#[test]
fn compatible_implies_at_least() {
    let mut rng = Rng::new(0xe3);
    for _ in 0..200 {
        let a = rng.version();
        let b = rng.version();
        if VersionReq::Compatible(a).matches(b) {
            assert!(VersionReq::AtLeast(a).matches(b), "{a} vs {b}");
            assert_eq!(a.major, b.major, "{a} vs {b}");
        }
    }
}

/// Installing the same package twice is idempotent on the
/// filesystem and the package database.
#[test]
fn install_idempotent() {
    let mut rng = Rng::new(0xe4);
    for _ in 0..30 {
        let v = rng.version();
        let mut repo = Repository::new();
        repo.publish(Package::new("pkg", v).with_file(File::executable("/bin/pkg", "pkg", 1)));
        let mut fs = FileSystem::new();
        let mut pm = PackageManager::new();
        pm.install(&mut fs, &repo, "pkg", VersionReq::Exact(v))
            .unwrap();
        let files_before = fs.len();
        let report = pm
            .install(&mut fs, &repo, "pkg", VersionReq::Exact(v))
            .unwrap();
        assert!(report.installed.is_empty());
        assert_eq!(fs.len(), files_before);
    }
}

/// The application interpreter is deterministic for arbitrary
/// inputs, and a crash behaviour always suppresses outputs.
#[test]
fn interpreter_determinism() {
    let mut rng = Rng::new(0xe5);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz".chars().collect();
    for case in 0..40 {
        let args: Vec<String> = (0..rng.below(3))
            .map(|_| {
                let len = 1 + rng.below(6);
                (0..len)
                    .map(|_| alphabet[rng.below(alphabet.len())])
                    .collect()
            })
            .collect();
        let payloads: Vec<Vec<u8>> = (0..rng.below(3))
            .map(|_| (0..rng.below(16)).map(|_| rng.next() as u8).collect())
            .collect();
        let mut fs = FileSystem::new();
        fs.insert(File::executable("/bin/app", "app", 1));
        let env = BTreeMap::new();
        let app = ApplicationSpec::new("app", "app", "/bin/app").with_logic(mirage_env::AppLogic {
            serves_net: true,
            writes_data: false,
            log_path: Some("/log".into()),
            output_path: None,
            version_sensitive: false,
        });
        let mut input = RunInput::new("w");
        for a in &args {
            input = input.arg(a.clone());
        }
        for p in &payloads {
            input = input.request("peer", p.clone());
        }
        let healthy = RunBehavior::healthy();
        let t1 = execute("m", &fs, &env, &app, &input, RunId(0), &healthy);
        let t2 = execute("m", &fs, &env, &app, &input, RunId(0), &healthy);
        assert_eq!(&t1, &t2, "case {case}");
        assert!(t1.succeeded(), "case {case}");

        let crash = RunBehavior {
            crash_on_start: true,
            ..Default::default()
        };
        let tc = execute("m", &fs, &env, &app, &input, RunId(0), &crash);
        assert!(!tc.succeeded(), "case {case}");
        assert!(tc.outputs().is_empty(), "case {case}");
    }
}

/// De Morgan on environment predicates: ¬(A ∧ B) ≡ (¬A ∨ ¬B).
#[test]
fn predicate_de_morgan() {
    for file_a in [false, true] {
        for file_b in [false, true] {
            let mut builder = mirage_env::MachineBuilder::new("m");
            if file_a {
                builder = builder.file(File::config("/a", IniDoc::new()));
            }
            if file_b {
                builder = builder.file(File::config("/b", IniDoc::new()));
            }
            let m = builder.build();
            let a = EnvPredicate::FileExists("/a".into());
            let b = EnvPredicate::FileExists("/b".into());
            let lhs = EnvPredicate::Not(Box::new(EnvPredicate::AllOf(vec![a.clone(), b.clone()])));
            let rhs = EnvPredicate::AnyOf(vec![
                EnvPredicate::Not(Box::new(a)),
                EnvPredicate::Not(Box::new(b)),
            ]);
            assert_eq!(lhs.eval(&m), rhs.eval(&m), "a={file_a} b={file_b}");
        }
    }
}

/// Fixing problems one at a time or in one batch yields the same
/// final problem set, and versions advance monotonically.
#[test]
fn fix_all_equals_sequential_fixes() {
    use mirage_env::{ProblemEffect, ProblemId, ProblemSpec, Upgrade};
    for n in 1usize..5 {
        let problems: Vec<ProblemSpec> = (0..n)
            .map(|i| {
                ProblemSpec::new(
                    format!("p{i}"),
                    "x",
                    EnvPredicate::Always,
                    ProblemEffect::CrashOnStart { app: "a".into() },
                )
            })
            .collect();
        let upgrade = Upgrade::new(Package::new("pkg", Version::new(1, 0, 0)), problems);
        let ids: Vec<ProblemId> = (0..n).map(|i| ProblemId(format!("p{i}"))).collect();
        let batch = upgrade.fix_all(ids.iter());
        let mut seq = upgrade.clone();
        for id in &ids {
            seq = seq.fix(id).unwrap();
        }
        assert!(batch.problems.is_empty());
        assert_eq!(batch.problems.len(), seq.problems.len());
        assert_eq!(batch.package.version, seq.package.version);
        assert!(batch.package.version > upgrade.package.version);
    }
}
