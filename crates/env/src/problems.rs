//! Upgrades and injected upgrade problems.
//!
//! An [`Upgrade`] bundles a new package version with the set of latent
//! [`ProblemSpec`]s it carries. Each problem has an [`EnvPredicate`]
//! describing the environments in which it manifests — this is how the
//! paper's problem taxonomy (broken dependencies, legacy-configuration
//! incompatibilities, plain bugs, improper packaging) is encoded — and a
//! [`ProblemEffect`] describing *how* it manifests.
//!
//! Predicates are evaluated against a machine **after** the upgrade has
//! been applied (in the validation sandbox), matching the paper's model
//! where problems surface during post-upgrade testing.

use std::collections::BTreeSet;
use std::fmt;

use crate::app::RunBehavior;
use crate::machine::Machine;
use crate::pkg::{Package, Version, VersionReq};

/// Identifier of one upgrade problem.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProblemId(pub String);

impl fmt::Display for ProblemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Identifier of one upgrade (package + version).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UpgradeId {
    /// Upgraded package name.
    pub package: String,
    /// Target version.
    pub version: Version,
}

impl fmt::Display for UpgradeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.package, self.version)
    }
}

/// A predicate over a machine's (post-upgrade) environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvPredicate {
    /// Always true (a bug affecting everyone).
    Always,
    /// The given file exists.
    FileExists(String),
    /// The given file does not exist.
    FileAbsent(String),
    /// The file at `path` renders to content containing `needle`
    /// (works for any content kind; the Apache Include-directive
    /// problem \[3\] is detected this way).
    FileContains {
        /// File path.
        path: String,
        /// Substring looked for in the rendered content.
        needle: String,
    },
    /// An INI config file at `path` has `key` in `section`.
    ConfigHasKey {
        /// Config file path.
        path: String,
        /// Section name (`"global"` for the implicit section).
        section: String,
        /// Key or directive name.
        key: String,
    },
    /// The library file at `path` embeds exactly this version string.
    LibVersion {
        /// Library path.
        path: String,
        /// Expected embedded version.
        version: String,
    },
    /// A package is installed with a version matching `req`.
    InstalledVersion {
        /// Package name.
        package: String,
        /// Requirement on the installed version.
        req: VersionReq,
    },
    /// An application with this name is installed.
    AppInstalled(String),
    /// An environment variable is set.
    EnvVarSet(String),
    /// All sub-predicates hold.
    AllOf(Vec<EnvPredicate>),
    /// At least one sub-predicate holds.
    AnyOf(Vec<EnvPredicate>),
    /// The sub-predicate does not hold.
    Not(Box<EnvPredicate>),
}

impl EnvPredicate {
    /// Evaluates the predicate against a machine.
    pub fn eval(&self, machine: &Machine) -> bool {
        match self {
            EnvPredicate::Always => true,
            EnvPredicate::FileExists(path) => machine.fs.contains(path),
            EnvPredicate::FileAbsent(path) => !machine.fs.contains(path),
            EnvPredicate::FileContains { path, needle } => machine
                .fs
                .get(path)
                .map(|f| String::from_utf8_lossy(&f.content.render()).contains(needle.as_str()))
                .unwrap_or(false),
            EnvPredicate::ConfigHasKey { path, section, key } => machine
                .fs
                .get(path)
                .and_then(|f| match &f.content {
                    crate::content::FileContent::Ini(doc) => Some(doc.has_key_in(section, key)),
                    _ => None,
                })
                .unwrap_or(false),
            EnvPredicate::LibVersion { path, version } => machine
                .fs
                .get(path)
                .and_then(|f| f.content.library_version())
                .map(|v| v == version)
                .unwrap_or(false),
            EnvPredicate::InstalledVersion { package, req } => machine
                .pkgs
                .installed_version(package)
                .map(|v| req.matches(v))
                .unwrap_or(false),
            EnvPredicate::AppInstalled(app) => machine.apps.contains_key(app),
            EnvPredicate::EnvVarSet(var) => machine.env.contains_key(var),
            EnvPredicate::AllOf(ps) => ps.iter().all(|p| p.eval(machine)),
            EnvPredicate::AnyOf(ps) => ps.iter().any(|p| p.eval(machine)),
            EnvPredicate::Not(p) => !p.eval(machine),
        }
    }
}

/// How a triggered problem manifests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemEffect {
    /// The named application crashes during startup.
    CrashOnStart {
        /// Affected application.
        app: String,
    },
    /// The named application refuses to start.
    FailToStart {
        /// Affected application.
        app: String,
    },
    /// The named application runs but produces wrong output.
    WrongOutput {
        /// Affected application.
        app: String,
        /// Perturbation tag appended to outputs.
        tag: String,
    },
}

impl ProblemEffect {
    /// Returns the application the effect targets.
    pub fn app(&self) -> &str {
        match self {
            ProblemEffect::CrashOnStart { app }
            | ProblemEffect::FailToStart { app }
            | ProblemEffect::WrongOutput { app, .. } => app,
        }
    }
}

/// One latent problem carried by an upgrade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProblemSpec {
    /// Problem identifier (stable across fix iterations).
    pub id: ProblemId,
    /// Human-readable description.
    pub description: String,
    /// Environments in which the problem manifests.
    pub trigger: EnvPredicate,
    /// How it manifests.
    pub effect: ProblemEffect,
}

impl ProblemSpec {
    /// Creates a problem spec.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        trigger: EnvPredicate,
        effect: ProblemEffect,
    ) -> Self {
        ProblemSpec {
            id: ProblemId(id.into()),
            description: description.into(),
            trigger,
            effect,
        }
    }
}

/// Computes the injected [`RunBehavior`] for one application on one
/// machine given the problems still live in an upgrade.
pub fn run_behavior_for(machine: &Machine, app: &str, problems: &[ProblemSpec]) -> RunBehavior {
    let mut behavior = RunBehavior::healthy();
    for p in problems {
        if p.effect.app() != app || !p.trigger.eval(machine) {
            continue;
        }
        match &p.effect {
            ProblemEffect::CrashOnStart { .. } => behavior.crash_on_start = true,
            ProblemEffect::FailToStart { .. } => behavior.fail_to_start = true,
            ProblemEffect::WrongOutput { tag, .. } => behavior.wrong_output_tag = Some(tag.clone()),
        }
    }
    behavior
}

/// How urgent an upgrade is — the vendor's §3.2.2 lever for choosing a
/// deployment protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Urgency {
    /// A routine upgrade: stage it carefully.
    #[default]
    Routine,
    /// A major release: the vendor "may decide to go slowly" —
    /// front-load the debugging.
    Major,
    /// An urgent, high-confidence upgrade (a security patch): bypass the
    /// cluster infrastructure and push to everyone at once.
    Urgent,
}

/// A deployable upgrade: a new package version with latent problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Upgrade {
    /// The new package payload (including any dependency requirements).
    pub package: Package,
    /// Latent problems. Fixed problems are *removed* by [`Upgrade::fix`].
    pub problems: Vec<ProblemSpec>,
    /// Problems fixed relative to the original release (for reporting).
    pub fixed: BTreeSet<ProblemId>,
    /// Deployment urgency.
    pub urgency: Urgency,
}

impl Upgrade {
    /// Creates an upgrade carrying `problems`.
    pub fn new(package: Package, problems: Vec<ProblemSpec>) -> Self {
        Upgrade {
            package,
            problems,
            fixed: BTreeSet::new(),
            urgency: Urgency::Routine,
        }
    }

    /// Sets the deployment urgency.
    pub fn with_urgency(mut self, urgency: Urgency) -> Self {
        self.urgency = urgency;
        self
    }

    /// Returns the upgrade identifier.
    pub fn id(&self) -> UpgradeId {
        UpgradeId {
            package: self.package.name.clone(),
            version: self.package.version,
        }
    }

    /// Returns the problems whose triggers hold on `machine`.
    pub fn active_problems(&self, machine: &Machine) -> Vec<&ProblemSpec> {
        self.problems
            .iter()
            .filter(|p| p.trigger.eval(machine))
            .collect()
    }

    /// Produces a corrected release with `problem` removed and the patch
    /// version bumped — the vendor's debug-and-re-release step.
    ///
    /// Returns `None` if the upgrade does not carry that problem.
    pub fn fix(&self, problem: &ProblemId) -> Option<Upgrade> {
        if !self.problems.iter().any(|p| &p.id == problem) {
            return None;
        }
        let mut fixed = self.fixed.clone();
        fixed.insert(problem.clone());
        let mut package = self.package.clone();
        package.version = package.version.next_patch();
        // A fix changes the payload bytes: bump the build of every
        // executable/library file in the package.
        for file in &mut package.files {
            match &mut file.content {
                crate::content::FileContent::Executable { build, .. }
                | crate::content::FileContent::Library { build, .. } => *build += 1,
                _ => {}
            }
        }
        Some(Upgrade {
            package,
            problems: self
                .problems
                .iter()
                .filter(|p| &p.id != problem)
                .cloned()
                .collect(),
            fixed,
            urgency: self.urgency,
        })
    }

    /// Produces a corrected release with *all* problems in `ids` removed.
    pub fn fix_all<'a>(&self, ids: impl IntoIterator<Item = &'a ProblemId>) -> Upgrade {
        let mut current = self.clone();
        for id in ids {
            if let Some(next) = current.fix(id) {
                current = next;
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::IniDoc;
    use crate::file::File;
    use crate::machine::MachineBuilder;

    fn machine_with_php() -> Machine {
        MachineBuilder::new("m")
            .file(File::library("/usr/lib/libmysql.so", "libmysql", "5.0", 5))
            .file(File::config(
                "/etc/mysql/my.cnf",
                IniDoc::new().section("mysqld").key("port", "3306"),
            ))
            .env_var("HOME", "/root")
            .app(crate::app::ApplicationSpec::new(
                "php",
                "php",
                "/usr/bin/php",
            ))
            .build()
    }

    #[test]
    fn predicates_evaluate() {
        let m = machine_with_php();
        assert!(EnvPredicate::Always.eval(&m));
        assert!(EnvPredicate::FileExists("/etc/mysql/my.cnf".into()).eval(&m));
        assert!(EnvPredicate::FileAbsent("/nope".into()).eval(&m));
        assert!(EnvPredicate::FileContains {
            path: "/etc/mysql/my.cnf".into(),
            needle: "port".into(),
        }
        .eval(&m));
        assert!(!EnvPredicate::FileContains {
            path: "/etc/mysql/my.cnf".into(),
            needle: "no-such-directive".into(),
        }
        .eval(&m));
        assert!(!EnvPredicate::FileContains {
            path: "/missing".into(),
            needle: "x".into(),
        }
        .eval(&m));
        assert!(EnvPredicate::ConfigHasKey {
            path: "/etc/mysql/my.cnf".into(),
            section: "mysqld".into(),
            key: "port".into(),
        }
        .eval(&m));
        assert!(!EnvPredicate::ConfigHasKey {
            path: "/etc/mysql/my.cnf".into(),
            section: "client".into(),
            key: "port".into(),
        }
        .eval(&m));
        assert!(EnvPredicate::LibVersion {
            path: "/usr/lib/libmysql.so".into(),
            version: "5.0".into(),
        }
        .eval(&m));
        assert!(EnvPredicate::AppInstalled("php".into()).eval(&m));
        assert!(!EnvPredicate::AppInstalled("apache".into()).eval(&m));
        assert!(EnvPredicate::EnvVarSet("HOME".into()).eval(&m));
        assert!(EnvPredicate::AllOf(vec![
            EnvPredicate::Always,
            EnvPredicate::Not(Box::new(EnvPredicate::EnvVarSet("NOPE".into()))),
        ])
        .eval(&m));
        assert!(EnvPredicate::AnyOf(vec![
            EnvPredicate::EnvVarSet("NOPE".into()),
            EnvPredicate::Always,
        ])
        .eval(&m));
    }

    #[test]
    fn run_behavior_composition() {
        let m = machine_with_php();
        let problems = vec![
            ProblemSpec::new(
                "php-crash",
                "PHP crashes against new libmysql",
                EnvPredicate::AppInstalled("php".into()),
                ProblemEffect::CrashOnStart { app: "php".into() },
            ),
            ProblemSpec::new(
                "other-app",
                "does not apply here",
                EnvPredicate::Always,
                ProblemEffect::FailToStart {
                    app: "apache".into(),
                },
            ),
        ];
        let b = run_behavior_for(&m, "php", &problems);
        assert!(b.crash_on_start);
        assert!(!b.fail_to_start);
        let b = run_behavior_for(&m, "apache", &problems);
        assert!(b.fail_to_start);
        let b = run_behavior_for(&m, "mysqld", &problems);
        assert_eq!(b, RunBehavior::healthy());
    }

    #[test]
    fn fix_removes_problem_and_bumps_version() {
        let pkg = Package::new("mysql", Version::new(5, 0, 0)).with_file(File::executable(
            "/usr/sbin/mysqld",
            "mysqld",
            10,
        ));
        let up = Upgrade::new(
            pkg,
            vec![
                ProblemSpec::new(
                    "p1",
                    "bug one",
                    EnvPredicate::Always,
                    ProblemEffect::CrashOnStart {
                        app: "mysqld".into(),
                    },
                ),
                ProblemSpec::new(
                    "p2",
                    "bug two",
                    EnvPredicate::Always,
                    ProblemEffect::WrongOutput {
                        app: "mysqld".into(),
                        tag: "!".into(),
                    },
                ),
            ],
        );
        assert_eq!(up.id().to_string(), "mysql-5.0.0");
        let fixed = up.fix(&ProblemId("p1".into())).unwrap();
        assert_eq!(fixed.package.version, Version::new(5, 0, 1));
        assert_eq!(fixed.problems.len(), 1);
        assert!(fixed.fixed.contains(&ProblemId("p1".into())));
        // Payload bytes changed with the fix.
        assert_ne!(up.package.files[0], fixed.package.files[0]);
        // Fixing an unknown problem is a no-op signal.
        assert!(fixed.fix(&ProblemId("p1".into())).is_none());
        // fix_all clears everything.
        let all = up.fix_all([&ProblemId("p1".into()), &ProblemId("p2".into())]);
        assert!(all.problems.is_empty());
        assert_eq!(all.package.version, Version::new(5, 0, 2));
    }

    #[test]
    fn active_problems_respect_triggers() {
        let m = machine_with_php();
        let up = Upgrade::new(
            Package::new("mysql", Version::new(5, 0, 0)),
            vec![
                ProblemSpec::new(
                    "php-dep",
                    "needs php",
                    EnvPredicate::AppInstalled("php".into()),
                    ProblemEffect::CrashOnStart { app: "php".into() },
                ),
                ProblemSpec::new(
                    "apache-dep",
                    "needs apache",
                    EnvPredicate::AppInstalled("apache".into()),
                    ProblemEffect::CrashOnStart {
                        app: "apache".into(),
                    },
                ),
            ],
        );
        let active = up.active_problems(&m);
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].id, ProblemId("php-dep".into()));
    }
}
