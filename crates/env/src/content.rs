//! Structured file contents and their byte renderings.
//!
//! Files in the simulated environment carry *structured* content — INI
//! documents, preference lists, library images — that renders to bytes on
//! demand. Mirage's parsers (in `mirage-fingerprint`) then re-parse those
//! bytes, so the full parse path is exercised rather than short-circuited.

use mirage_fingerprint::parsers::image;

/// One line of an INI-style configuration document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IniLine {
    /// A `[section]` header.
    Section(String),
    /// A `key = value` assignment.
    KeyValue(String, String),
    /// A bare directive such as `skip-networking`.
    Directive(String),
    /// A `# comment`.
    Comment(String),
    /// An empty line.
    Blank,
}

/// An INI-style configuration document (e.g. `my.cnf`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IniDoc {
    /// Ordered lines.
    pub lines: Vec<IniLine>,
}

impl IniDoc {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section header.
    pub fn section(mut self, name: impl Into<String>) -> Self {
        self.lines.push(IniLine::Section(name.into()));
        self
    }

    /// Appends a key/value assignment.
    pub fn key(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.lines.push(IniLine::KeyValue(key.into(), value.into()));
        self
    }

    /// Appends a bare directive.
    pub fn directive(mut self, directive: impl Into<String>) -> Self {
        self.lines.push(IniLine::Directive(directive.into()));
        self
    }

    /// Appends a comment.
    pub fn comment(mut self, text: impl Into<String>) -> Self {
        self.lines.push(IniLine::Comment(text.into()));
        self
    }

    /// Appends a blank line.
    pub fn blank(mut self) -> Self {
        self.lines.push(IniLine::Blank);
        self
    }

    /// Removes the first assignment or directive whose key is `key`.
    ///
    /// Returns `true` if something was removed.
    pub fn remove_key(&mut self, key: &str) -> bool {
        let pos = self.lines.iter().position(|l| match l {
            IniLine::KeyValue(k, _) | IniLine::Directive(k) => k == key,
            _ => false,
        });
        match pos {
            Some(i) => {
                self.lines.remove(i);
                true
            }
            None => false,
        }
    }

    /// Looks up the first value assigned to `key` (in any section).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.lines.iter().find_map(|l| match l {
            IniLine::KeyValue(k, v) if k == key => Some(v.as_str()),
            _ => None,
        })
    }

    /// Returns `true` if `key` appears in `section`.
    pub fn has_key_in(&self, section: &str, key: &str) -> bool {
        let mut current = "global";
        for line in &self.lines {
            match line {
                IniLine::Section(s) => current = s,
                IniLine::KeyValue(k, _) | IniLine::Directive(k)
                    if current == section && k == key =>
                {
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    /// Renders the document to bytes.
    pub fn render(&self) -> Vec<u8> {
        let mut out = String::new();
        for line in &self.lines {
            match line {
                IniLine::Section(s) => out.push_str(&format!("[{s}]\n")),
                IniLine::KeyValue(k, v) => out.push_str(&format!("{k} = {v}\n")),
                IniLine::Directive(d) => out.push_str(&format!("{d}\n")),
                IniLine::Comment(c) => out.push_str(&format!("# {c}\n")),
                IniLine::Blank => out.push('\n'),
            }
        }
        out.into_bytes()
    }
}

/// A browser-style preferences document (e.g. Firefox `prefs.js`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefsDoc {
    /// Ordered `(key, value)` preferences. Values are rendered verbatim.
    pub prefs: Vec<(String, String)>,
}

impl PrefsDoc {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a preference.
    pub fn pref(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.prefs.push((key.into(), value.into()));
        self
    }

    /// Replaces the value of `key`, or appends it if missing.
    pub fn set(&mut self, key: &str, value: impl Into<String>) {
        let value = value.into();
        match self.prefs.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.prefs.push((key.to_string(), value)),
        }
    }

    /// Looks up a preference value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.prefs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Renders the document to bytes.
    pub fn render(&self) -> Vec<u8> {
        let mut out = String::from("// Mirage simulated preferences file\n");
        for (k, v) in &self.prefs {
            out.push_str(&format!("user_pref(\"{k}\", {v});\n"));
        }
        out.into_bytes()
    }
}

/// The content of a simulated file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileContent {
    /// Plain text, one string per line.
    Text(Vec<String>),
    /// An INI-style configuration document.
    Ini(IniDoc),
    /// A preferences document.
    Prefs(PrefsDoc),
    /// An executable image identified by name and build hash.
    Executable {
        /// Program name.
        name: String,
        /// Build identity; different builds have different bytes.
        build: u64,
    },
    /// A shared-library image with an embedded version string.
    Library {
        /// Library name.
        name: String,
        /// Library version (e.g. `"2.4"`).
        version: String,
        /// Build identity; same version, different build ⇒ different hash.
        build: u64,
    },
    /// Deterministic pseudo-random bytes (opaque binary data).
    Binary {
        /// Generator seed.
        seed: u64,
        /// Length in bytes.
        len: usize,
    },
    /// Literal bytes.
    Bytes(Vec<u8>),
}

impl FileContent {
    /// Renders the content to bytes.
    pub fn render(&self) -> Vec<u8> {
        match self {
            FileContent::Text(lines) => {
                let mut out = String::new();
                for l in lines {
                    out.push_str(l);
                    out.push('\n');
                }
                out.into_bytes()
            }
            FileContent::Ini(doc) => doc.render(),
            FileContent::Prefs(doc) => doc.render(),
            FileContent::Executable { name, build } => image::exe_bytes(name, *build),
            FileContent::Library {
                name,
                version,
                build,
            } => image::lib_bytes(name, version, *build),
            FileContent::Binary { seed, len } => pseudo_random_bytes(*seed, *len),
            FileContent::Bytes(b) => b.clone(),
        }
    }

    /// Returns the embedded library version, if this is a library image.
    pub fn library_version(&self) -> Option<&str> {
        match self {
            FileContent::Library { version, .. } => Some(version),
            _ => None,
        }
    }
}

/// Deterministic xorshift byte generator for opaque binary content.
pub fn pseudo_random_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ini_builder_and_render() {
        let doc = IniDoc::new()
            .comment("MySQL config")
            .section("mysqld")
            .key("datadir", "/var/lib/mysql")
            .directive("skip-networking")
            .blank();
        let text = String::from_utf8(doc.render()).unwrap();
        assert_eq!(
            text,
            "# MySQL config\n[mysqld]\ndatadir = /var/lib/mysql\nskip-networking\n\n"
        );
    }

    #[test]
    fn ini_lookup_and_removal() {
        let mut doc = IniDoc::new()
            .section("mysqld")
            .key("port", "3306")
            .directive("skip-networking");
        assert_eq!(doc.get("port"), Some("3306"));
        assert!(doc.has_key_in("mysqld", "port"));
        assert!(!doc.has_key_in("client", "port"));
        assert!(doc.remove_key("skip-networking"));
        assert!(!doc.remove_key("skip-networking"));
        assert!(!doc.has_key_in("mysqld", "skip-networking"));
    }

    #[test]
    fn prefs_set_get_render() {
        let mut doc = PrefsDoc::new().pref("javascript.enabled", "true");
        doc.set("javascript.enabled", "false");
        doc.set("browser.window.width", "800");
        assert_eq!(doc.get("javascript.enabled"), Some("false"));
        assert_eq!(doc.get("missing"), None);
        let text = String::from_utf8(doc.render()).unwrap();
        assert!(text.contains("user_pref(\"javascript.enabled\", false);"));
        assert!(text.contains("user_pref(\"browser.window.width\", 800);"));
    }

    #[test]
    fn executable_render_parses_back() {
        use mirage_fingerprint::parsers::ExecutableParser;
        use mirage_fingerprint::{ResourceData, ResourceKind, ResourceParser};
        let bytes = FileContent::Executable {
            name: "mysqld".into(),
            build: 42,
        }
        .render();
        let res = ResourceData::new("/usr/sbin/mysqld", ResourceKind::Executable, bytes);
        assert!(ExecutableParser.parse(&res).is_ok());
    }

    #[test]
    fn library_version_accessor() {
        let lib = FileContent::Library {
            name: "libmysqlclient".into(),
            version: "4.1".into(),
            build: 7,
        };
        assert_eq!(lib.library_version(), Some("4.1"));
        assert_eq!(FileContent::Text(vec![]).library_version(), None);
    }

    #[test]
    fn binary_content_is_deterministic() {
        let a = FileContent::Binary { seed: 9, len: 128 }.render();
        let b = FileContent::Binary { seed: 9, len: 128 }.render();
        let c = FileContent::Binary { seed: 10, len: 128 }.render();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 128);
    }

    #[test]
    fn different_builds_render_differently() {
        let a = FileContent::Executable {
            name: "x".into(),
            build: 1,
        }
        .render();
        let b = FileContent::Executable {
            name: "x".into(),
            build: 2,
        }
        .render();
        assert_ne!(a, b);
    }
}
