//! Typed files.

use mirage_fingerprint::{ResourceData, ResourceKind};

use crate::content::FileContent;

/// One file in a simulated filesystem.
///
/// `truth_env` is the *ground truth* flag used exclusively by the
/// evaluation harness to score the environmental-resource heuristic
/// (Table 1): it says whether a human auditing the application would call
/// this file an environmental resource. The heuristic itself never reads
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct File {
    /// Absolute path.
    pub path: String,
    /// Resource kind (drives parser selection and type-based heuristics).
    pub kind: ResourceKind,
    /// Structured content.
    pub content: FileContent,
    /// Ground-truth environmental-resource flag (evaluation only).
    pub truth_env: bool,
}

impl File {
    /// Creates a file, defaulting the ground-truth flag from the kind.
    ///
    /// Executables, libraries, configuration and preference files default
    /// to environmental resources; data, logs and HTML documents default
    /// to not. Use [`File::env_resource`] / [`File::not_env_resource`] to
    /// override for special cases (e.g. database files that double as
    /// configuration, as MySQL's do in the paper).
    pub fn new(path: impl Into<String>, kind: ResourceKind, content: FileContent) -> Self {
        let truth_env = matches!(
            kind,
            ResourceKind::Executable
                | ResourceKind::SharedLibrary
                | ResourceKind::Config
                | ResourceKind::Prefs
                | ResourceKind::Font
                | ResourceKind::Extension
                | ResourceKind::Theme
        );
        File {
            path: path.into(),
            kind,
            content,
            truth_env,
        }
    }

    /// Marks the file as a ground-truth environmental resource.
    pub fn env_resource(mut self) -> Self {
        self.truth_env = true;
        self
    }

    /// Marks the file as ground-truth *not* an environmental resource.
    pub fn not_env_resource(mut self) -> Self {
        self.truth_env = false;
        self
    }

    /// Renders the file into the parser-facing resource view.
    pub fn to_resource(&self) -> ResourceData {
        ResourceData::new(self.path.clone(), self.kind, self.content.render())
    }

    /// Convenience: an executable file.
    pub fn executable(path: impl Into<String>, name: impl Into<String>, build: u64) -> Self {
        File::new(
            path,
            ResourceKind::Executable,
            FileContent::Executable {
                name: name.into(),
                build,
            },
        )
    }

    /// Convenience: a shared library file.
    pub fn library(
        path: impl Into<String>,
        name: impl Into<String>,
        version: impl Into<String>,
        build: u64,
    ) -> Self {
        File::new(
            path,
            ResourceKind::SharedLibrary,
            FileContent::Library {
                name: name.into(),
                version: version.into(),
                build,
            },
        )
    }

    /// Convenience: an INI config file.
    pub fn config(path: impl Into<String>, doc: crate::content::IniDoc) -> Self {
        File::new(path, ResourceKind::Config, FileContent::Ini(doc))
    }

    /// Convenience: a preferences file.
    pub fn prefs(path: impl Into<String>, doc: crate::content::PrefsDoc) -> Self {
        File::new(path, ResourceKind::Prefs, FileContent::Prefs(doc))
    }

    /// Convenience: a data file with opaque binary content.
    pub fn data(path: impl Into<String>, seed: u64, len: usize) -> Self {
        File::new(path, ResourceKind::Data, FileContent::Binary { seed, len })
    }

    /// Convenience: a log file with text content.
    pub fn log(path: impl Into<String>, lines: Vec<String>) -> Self {
        File::new(path, ResourceKind::Log, FileContent::Text(lines))
    }

    /// Convenience: an HTML document.
    pub fn html(path: impl Into<String>, body: impl Into<String>) -> Self {
        File::new(
            path,
            ResourceKind::Html,
            FileContent::Text(vec![format!("<html>{}</html>", body.into())]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_defaults_ground_truth() {
        assert!(File::executable("/bin/x", "x", 0).truth_env);
        assert!(File::library("/lib/y", "y", "1.0", 0).truth_env);
        assert!(!File::data("/var/lib/db", 0, 10).truth_env);
        assert!(!File::log("/var/log/x", vec![]).truth_env);
        assert!(!File::html("/srv/www/index.html", "hi").truth_env);
    }

    #[test]
    fn ground_truth_overrides() {
        let f = File::data("/var/lib/mysql/user.frm", 0, 10).env_resource();
        assert!(f.truth_env);
        let f = File::executable("/bin/x", "x", 0).not_env_resource();
        assert!(!f.truth_env);
    }

    #[test]
    fn to_resource_renders_content() {
        let f = File::executable("/usr/bin/php", "php", 3);
        let res = f.to_resource();
        assert_eq!(res.path, "/usr/bin/php");
        assert_eq!(res.kind, ResourceKind::Executable);
        assert!(res.bytes.starts_with(b"EXESIM\0php\0"));
    }
}
