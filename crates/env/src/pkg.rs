//! Packages, versions, dependency resolution, and upgrades.
//!
//! Mirror of the package-management behaviour the paper's problem
//! taxonomy depends on: upgrading one package can transitively upgrade a
//! library that *another*, untouched application was built against —
//! the classic PHP-breaks-when-MySQL-upgrades failure \[24\].

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use crate::file::File;
use crate::fs::FileSystem;

/// A `major.minor.patch` package version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version {
    /// Major component.
    pub major: u32,
    /// Minor component.
    pub minor: u32,
    /// Patch component.
    pub patch: u32,
}

impl Version {
    /// Creates a version.
    pub fn new(major: u32, minor: u32, patch: u32) -> Self {
        Version {
            major,
            minor,
            patch,
        }
    }

    /// Returns the next patch release.
    pub fn next_patch(self) -> Self {
        Version {
            patch: self.patch + 1,
            ..self
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

impl FromStr for Version {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut next = |name: &str| -> Result<u32, String> {
            parts
                .next()
                .ok_or_else(|| format!("missing {name} component in {s:?}"))?
                .parse::<u32>()
                .map_err(|e| format!("bad {name} component in {s:?}: {e}"))
        };
        let v = Version::new(next("major")?, next("minor")?, next("patch")?);
        if parts.next().is_some() {
            return Err(format!("trailing components in {s:?}"));
        }
        Ok(v)
    }
}

/// A version requirement on a dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionReq {
    /// Any version satisfies.
    Any,
    /// Exactly this version.
    Exact(Version),
    /// This version or newer.
    AtLeast(Version),
    /// Same major version, and at least this version.
    Compatible(Version),
}

impl VersionReq {
    /// Returns `true` if `v` satisfies the requirement.
    pub fn matches(&self, v: Version) -> bool {
        match self {
            VersionReq::Any => true,
            VersionReq::Exact(want) => v == *want,
            VersionReq::AtLeast(want) => v >= *want,
            VersionReq::Compatible(want) => v.major == want.major && v >= *want,
        }
    }
}

impl fmt::Display for VersionReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionReq::Any => write!(f, "*"),
            VersionReq::Exact(v) => write!(f, "={v}"),
            VersionReq::AtLeast(v) => write!(f, ">={v}"),
            VersionReq::Compatible(v) => write!(f, "^{v}"),
        }
    }
}

/// A dependency edge of a package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependency {
    /// Depended-on package name.
    pub package: String,
    /// Version requirement.
    pub req: VersionReq,
}

impl Dependency {
    /// Creates a dependency.
    pub fn new(package: impl Into<String>, req: VersionReq) -> Self {
        Dependency {
            package: package.into(),
            req,
        }
    }
}

/// A versioned package: payload files plus dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Package {
    /// Package name.
    pub name: String,
    /// Package version.
    pub version: Version,
    /// Payload files installed by this package.
    pub files: Vec<File>,
    /// Dependencies.
    pub deps: Vec<Dependency>,
}

impl Package {
    /// Creates a package.
    pub fn new(name: impl Into<String>, version: Version) -> Self {
        Package {
            name: name.into(),
            version,
            files: Vec::new(),
            deps: Vec::new(),
        }
    }

    /// Adds a payload file.
    pub fn with_file(mut self, file: File) -> Self {
        self.files.push(file);
        self
    }

    /// Adds a dependency.
    pub fn with_dep(mut self, package: impl Into<String>, req: VersionReq) -> Self {
        self.deps.push(Dependency::new(package, req));
        self
    }

    /// Returns the payload file paths (the package manifest).
    pub fn manifest(&self) -> Vec<&str> {
        self.files.iter().map(|f| f.path.as_str()).collect()
    }
}

/// Package-management errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PkgError {
    /// No version of the package exists in the repository.
    NotFound {
        /// Requested package name.
        package: String,
    },
    /// No available version satisfies the requirement.
    Unsatisfiable {
        /// Requested package name.
        package: String,
        /// Unsatisfied requirement (rendered).
        req: String,
    },
    /// Dependency resolution found a cycle.
    DependencyCycle {
        /// Package where the cycle was detected.
        package: String,
    },
}

impl fmt::Display for PkgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PkgError::NotFound { package } => write!(f, "package {package} not found"),
            PkgError::Unsatisfiable { package, req } => {
                write!(f, "no version of {package} satisfies {req}")
            }
            PkgError::DependencyCycle { package } => {
                write!(f, "dependency cycle through {package}")
            }
        }
    }
}

impl std::error::Error for PkgError {}

/// A repository of available package versions.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    packages: BTreeMap<String, BTreeMap<Version, Package>>,
}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a package version.
    pub fn publish(&mut self, pkg: Package) {
        self.packages
            .entry(pkg.name.clone())
            .or_default()
            .insert(pkg.version, pkg);
    }

    /// Returns the newest available version of `name` satisfying `req`.
    pub fn best(&self, name: &str, req: VersionReq) -> Option<&Package> {
        self.packages
            .get(name)?
            .values()
            .rev()
            .find(|p| req.matches(p.version))
    }

    /// Returns a specific version.
    pub fn get(&self, name: &str, version: Version) -> Option<&Package> {
        self.packages.get(name)?.get(&version)
    }

    /// Returns `true` if any version of `name` is published.
    pub fn has(&self, name: &str) -> bool {
        self.packages.contains_key(name)
    }
}

/// The result of one install/upgrade operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstallReport {
    /// Packages newly installed or upgraded, in application order.
    pub installed: Vec<(String, Version)>,
    /// Paths written to the filesystem.
    pub files_written: Vec<String>,
}

/// The per-machine package database and installer.
#[derive(Debug, Clone, Default)]
pub struct PackageManager {
    installed: BTreeMap<String, Package>,
}

impl PackageManager {
    /// Creates an empty package database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the installed version of `name`, if any.
    pub fn installed_version(&self, name: &str) -> Option<Version> {
        self.installed.get(name).map(|p| p.version)
    }

    /// Returns the installed package record.
    pub fn installed(&self, name: &str) -> Option<&Package> {
        self.installed.get(name)
    }

    /// Iterates over installed packages in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Package> {
        self.installed.values()
    }

    /// Returns the manifest (payload paths) of an installed package.
    pub fn manifest(&self, name: &str) -> Option<Vec<String>> {
        self.installed
            .get(name)
            .map(|p| p.files.iter().map(|f| f.path.clone()).collect())
    }

    /// Installs `name` (best version matching `req`) and its transitive
    /// dependencies into `fs`.
    ///
    /// Already-installed packages that satisfy their requirement are left
    /// alone; those that do not are upgraded — this transitive upgrading
    /// is what breaks applications built against the older library.
    pub fn install(
        &mut self,
        fs: &mut FileSystem,
        repo: &Repository,
        name: &str,
        req: VersionReq,
    ) -> Result<InstallReport, PkgError> {
        let mut report = InstallReport::default();
        let mut in_progress = BTreeSet::new();
        self.install_inner(fs, repo, name, req, &mut report, &mut in_progress)?;
        Ok(report)
    }

    /// Installs a concrete package object (an upgrade pushed by a vendor)
    /// plus its dependencies from `repo`.
    pub fn apply_package(
        &mut self,
        fs: &mut FileSystem,
        repo: &Repository,
        pkg: &Package,
    ) -> Result<InstallReport, PkgError> {
        let mut report = InstallReport::default();
        let mut in_progress = BTreeSet::new();
        self.apply_concrete(fs, repo, pkg, &mut report, &mut in_progress)?;
        Ok(report)
    }

    fn install_inner(
        &mut self,
        fs: &mut FileSystem,
        repo: &Repository,
        name: &str,
        req: VersionReq,
        report: &mut InstallReport,
        in_progress: &mut BTreeSet<String>,
    ) -> Result<(), PkgError> {
        if let Some(v) = self.installed_version(name) {
            if req.matches(v) {
                return Ok(());
            }
        }
        if !repo.has(name) {
            return Err(PkgError::NotFound {
                package: name.to_string(),
            });
        }
        let pkg = repo
            .best(name, req)
            .ok_or_else(|| PkgError::Unsatisfiable {
                package: name.to_string(),
                req: req.to_string(),
            })?
            .clone();
        self.apply_concrete(fs, repo, &pkg, report, in_progress)
    }

    fn apply_concrete(
        &mut self,
        fs: &mut FileSystem,
        repo: &Repository,
        pkg: &Package,
        report: &mut InstallReport,
        in_progress: &mut BTreeSet<String>,
    ) -> Result<(), PkgError> {
        if !in_progress.insert(pkg.name.clone()) {
            return Err(PkgError::DependencyCycle {
                package: pkg.name.clone(),
            });
        }
        for dep in &pkg.deps {
            self.install_inner(fs, repo, &dep.package, dep.req, report, in_progress)?;
        }
        for file in &pkg.files {
            fs.insert(file.clone());
            report.files_written.push(file.path.clone());
        }
        report.installed.push((pkg.name.clone(), pkg.version));
        self.installed.insert(pkg.name.clone(), pkg.clone());
        in_progress.remove(&pkg.name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::FileContent;

    fn lib_pkg(name: &str, ver: Version, libver: &str) -> Package {
        Package::new(name, ver).with_file(File::library(
            format!("/usr/lib/{name}.so"),
            name,
            libver,
            u64::from(ver.major),
        ))
    }

    #[test]
    fn version_parse_and_order() {
        let v: Version = "4.1.22".parse().unwrap();
        assert_eq!(v, Version::new(4, 1, 22));
        assert!(Version::new(5, 0, 0) > v);
        assert!(Version::new(4, 2, 0) > v);
        assert!(Version::new(4, 1, 23) > v);
        assert_eq!(v.next_patch(), Version::new(4, 1, 23));
        assert_eq!(v.to_string(), "4.1.22");
        assert!("4.1".parse::<Version>().is_err());
        assert!("4.1.x".parse::<Version>().is_err());
        assert!("4.1.2.3".parse::<Version>().is_err());
    }

    #[test]
    fn version_req_semantics() {
        let v41 = Version::new(4, 1, 0);
        let v45 = Version::new(4, 5, 0);
        let v50 = Version::new(5, 0, 0);
        assert!(VersionReq::Any.matches(v41));
        assert!(VersionReq::Exact(v41).matches(v41));
        assert!(!VersionReq::Exact(v41).matches(v45));
        assert!(VersionReq::AtLeast(v41).matches(v50));
        assert!(!VersionReq::AtLeast(v45).matches(v41));
        assert!(VersionReq::Compatible(v41).matches(v45));
        assert!(!VersionReq::Compatible(v41).matches(v50));
    }

    #[test]
    fn repository_best_prefers_newest() {
        let mut repo = Repository::new();
        repo.publish(lib_pkg("libmysql", Version::new(4, 1, 0), "4.1"));
        repo.publish(lib_pkg("libmysql", Version::new(5, 0, 0), "5.0"));
        let best = repo.best("libmysql", VersionReq::Any).unwrap();
        assert_eq!(best.version, Version::new(5, 0, 0));
        let compat = repo
            .best("libmysql", VersionReq::Compatible(Version::new(4, 0, 0)))
            .unwrap();
        assert_eq!(compat.version, Version::new(4, 1, 0));
        assert!(repo
            .best("libmysql", VersionReq::AtLeast(Version::new(6, 0, 0)))
            .is_none());
    }

    #[test]
    fn install_applies_files_and_deps() {
        let mut repo = Repository::new();
        repo.publish(lib_pkg("libmysql", Version::new(4, 1, 0), "4.1"));
        repo.publish(
            Package::new("mysql", Version::new(4, 1, 22))
                .with_file(File::executable("/usr/sbin/mysqld", "mysqld", 4))
                .with_dep("libmysql", VersionReq::Compatible(Version::new(4, 0, 0))),
        );
        let mut fs = FileSystem::new();
        let mut pm = PackageManager::new();
        let report = pm
            .install(&mut fs, &repo, "mysql", VersionReq::Any)
            .unwrap();
        assert_eq!(report.installed.len(), 2);
        assert!(fs.contains("/usr/sbin/mysqld"));
        assert!(fs.contains("/usr/lib/libmysql.so"));
        assert_eq!(
            pm.installed_version("libmysql"),
            Some(Version::new(4, 1, 0))
        );
        assert_eq!(pm.manifest("mysql").unwrap(), vec!["/usr/sbin/mysqld"]);
    }

    #[test]
    fn upgrade_cascades_to_dependencies() {
        // The PHP-breaks scenario: mysql 5 requires libmysql 5; installing
        // the mysql upgrade silently replaces the library PHP was built
        // against.
        let mut repo = Repository::new();
        repo.publish(lib_pkg("libmysql", Version::new(4, 1, 0), "4.1"));
        repo.publish(lib_pkg("libmysql", Version::new(5, 0, 0), "5.0"));
        repo.publish(
            Package::new("mysql", Version::new(4, 1, 22))
                .with_dep("libmysql", VersionReq::Compatible(Version::new(4, 0, 0))),
        );
        let mysql5 = Package::new("mysql", Version::new(5, 0, 27))
            .with_file(File::executable("/usr/sbin/mysqld", "mysqld", 5))
            .with_dep("libmysql", VersionReq::Compatible(Version::new(5, 0, 0)));
        repo.publish(mysql5.clone());

        let mut fs = FileSystem::new();
        let mut pm = PackageManager::new();
        pm.install(
            &mut fs,
            &repo,
            "mysql",
            VersionReq::Exact(Version::new(4, 1, 22)),
        )
        .unwrap();
        assert_eq!(
            fs.get("/usr/lib/libmysql.so").unwrap().content,
            FileContent::Library {
                name: "libmysql".into(),
                version: "4.1".into(),
                build: 4,
            }
        );

        let report = pm.apply_package(&mut fs, &repo, &mysql5).unwrap();
        assert!(report
            .installed
            .contains(&("libmysql".to_string(), Version::new(5, 0, 0))));
        assert_eq!(
            fs.get("/usr/lib/libmysql.so")
                .unwrap()
                .content
                .library_version(),
            Some("5.0")
        );
    }

    #[test]
    fn install_errors() {
        let mut repo = Repository::new();
        repo.publish(lib_pkg("a", Version::new(1, 0, 0), "1.0"));
        let mut fs = FileSystem::new();
        let mut pm = PackageManager::new();
        assert_eq!(
            pm.install(&mut fs, &repo, "missing", VersionReq::Any),
            Err(PkgError::NotFound {
                package: "missing".into()
            })
        );
        assert!(matches!(
            pm.install(
                &mut fs,
                &repo,
                "a",
                VersionReq::AtLeast(Version::new(2, 0, 0))
            ),
            Err(PkgError::Unsatisfiable { .. })
        ));
    }

    #[test]
    fn dependency_cycle_detected() {
        let mut repo = Repository::new();
        repo.publish(Package::new("a", Version::new(1, 0, 0)).with_dep("b", VersionReq::Any));
        repo.publish(
            Package::new("b", Version::new(1, 0, 0))
                .with_dep("a", VersionReq::Exact(Version::new(2, 0, 0))),
        );
        // b requires a=2.0.0 which doesn't exist → either cycle or
        // unsatisfiable; publish a 2.0.0 that depends back on b to force
        // the cycle path.
        repo.publish(Package::new("a", Version::new(2, 0, 0)).with_dep("b", VersionReq::Any));
        let mut fs = FileSystem::new();
        let mut pm = PackageManager::new();
        let err = pm.install(
            &mut fs,
            &repo,
            "a",
            VersionReq::Exact(Version::new(1, 0, 0)),
        );
        assert!(matches!(err, Err(PkgError::DependencyCycle { .. })));
    }

    #[test]
    fn satisfied_dependency_is_not_reinstalled() {
        let mut repo = Repository::new();
        repo.publish(lib_pkg("libz", Version::new(1, 2, 3), "1.2"));
        repo.publish(Package::new("app", Version::new(1, 0, 0)).with_dep("libz", VersionReq::Any));
        let mut fs = FileSystem::new();
        let mut pm = PackageManager::new();
        pm.install(&mut fs, &repo, "libz", VersionReq::Any).unwrap();
        let report = pm.install(&mut fs, &repo, "app", VersionReq::Any).unwrap();
        assert_eq!(
            report.installed,
            vec![("app".to_string(), Version::new(1, 0, 0))]
        );
    }
}
