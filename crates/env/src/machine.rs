//! Machines and fleets.

use std::collections::{BTreeMap, BTreeSet};

use mirage_trace::{RunId, Trace};

use crate::app::{execute, ApplicationSpec, RunBehavior, RunInput};
use crate::file::File;
use crate::fs::FileSystem;
use crate::pkg::{PackageManager, PkgError, Repository, VersionReq};

/// One simulated user machine.
#[derive(Debug, Clone, Default)]
pub struct Machine {
    /// Machine identifier (the paper's `ubt-ms4/php4`-style names).
    pub id: String,
    /// The machine's filesystem.
    pub fs: FileSystem,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Installed-package database.
    pub pkgs: PackageManager,
    /// Installed applications, by name.
    pub apps: BTreeMap<String, ApplicationSpec>,
}

impl Machine {
    /// Creates an empty machine.
    pub fn new(id: impl Into<String>) -> Self {
        Machine {
            id: id.into(),
            ..Default::default()
        }
    }

    /// Runs an installed application, producing a trace.
    ///
    /// # Panics
    ///
    /// Panics if the application is not installed; use
    /// [`Machine::try_run_app`] for a fallible variant.
    pub fn run_app(&self, app: &str, input: &RunInput, run: RunId) -> Trace {
        self.try_run_app(app, input, run)
            .unwrap_or_else(|| panic!("application {app} not installed on {}", self.id))
    }

    /// Runs an installed application with healthy behaviour.
    pub fn try_run_app(&self, app: &str, input: &RunInput, run: RunId) -> Option<Trace> {
        let spec = self.apps.get(app)?;
        Some(execute(
            &self.id,
            &self.fs,
            &self.env,
            spec,
            input,
            run,
            &RunBehavior::healthy(),
        ))
    }

    /// Runs an installed application with injected misbehaviour.
    pub fn run_app_with_behavior(
        &self,
        app: &str,
        input: &RunInput,
        run: RunId,
        behavior: &RunBehavior,
    ) -> Option<Trace> {
        let spec = self.apps.get(app)?;
        Some(execute(
            &self.id, &self.fs, &self.env, spec, input, run, behavior,
        ))
    }

    /// Returns the set of applications affected by changes to `paths`.
    ///
    /// An application is affected if a changed path is its executable, one
    /// of its declared reads, or part of its package manifest; resource
    /// sharing declared via
    /// [`ApplicationSpec::sharing_with`](crate::app::ApplicationSpec)
    /// propagates the effect (the dependence subsystem of paper §3.3).
    pub fn apps_affected_by(&self, paths: &BTreeSet<String>) -> BTreeSet<String> {
        let mut affected = BTreeSet::new();
        for (name, spec) in &self.apps {
            let mut touched = paths.contains(&spec.exe)
                || spec.init_reads.iter().any(|r| paths.contains(&r.path))
                || spec.late_reads.iter().any(|r| paths.contains(&r.path));
            if !touched {
                if let Some(manifest) = self.pkgs.manifest(&spec.package) {
                    touched = manifest.iter().any(|p| paths.contains(p));
                }
            }
            if touched {
                affected.insert(name.clone());
            }
        }
        // Propagate through declared resource sharing until stable.
        loop {
            let mut grew = false;
            for (name, spec) in &self.apps {
                if affected.contains(name) {
                    continue;
                }
                if spec
                    .shares_with
                    .iter()
                    .any(|other| affected.contains(other))
                {
                    affected.insert(name.clone());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        affected
    }

    /// Returns the names of installed applications.
    pub fn app_names(&self) -> BTreeSet<String> {
        self.apps.keys().cloned().collect()
    }
}

/// Fluent builder for machines.
#[derive(Debug, Default)]
pub struct MachineBuilder {
    machine: Machine,
}

impl MachineBuilder {
    /// Starts building a machine.
    pub fn new(id: impl Into<String>) -> Self {
        MachineBuilder {
            machine: Machine::new(id),
        }
    }

    /// Adds a file directly to the filesystem.
    pub fn file(mut self, file: File) -> Self {
        self.machine.fs.insert(file);
        self
    }

    /// Sets an environment variable.
    pub fn env_var(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.machine.env.insert(name.into(), value.into());
        self
    }

    /// Installs a package (and dependencies) from a repository.
    ///
    /// # Panics
    ///
    /// Panics on resolution failure — machine construction is test/scenario
    /// setup, where failing loudly is correct. Use
    /// [`MachineBuilder::try_install`] in fallible contexts.
    pub fn install(self, repo: &Repository, name: &str, req: VersionReq) -> Self {
        self.try_install(repo, name, req)
            .unwrap_or_else(|e| panic!("install {name}: {e}"))
    }

    /// Fallible package installation.
    pub fn try_install(
        mut self,
        repo: &Repository,
        name: &str,
        req: VersionReq,
    ) -> Result<Self, PkgError> {
        self.machine
            .pkgs
            .install(&mut self.machine.fs, repo, name, req)?;
        Ok(self)
    }

    /// Registers an application.
    pub fn app(mut self, spec: ApplicationSpec) -> Self {
        self.machine.apps.insert(spec.name.clone(), spec);
        self
    }

    /// Applies an arbitrary mutation (escape hatch for scenario builders).
    pub fn mutate(mut self, f: impl FnOnce(&mut Machine)) -> Self {
        f(&mut self.machine);
        self
    }

    /// Finishes the machine.
    pub fn build(self) -> Machine {
        self.machine
    }
}

/// A set of machines participating in deployment.
#[derive(Debug, Clone, Default)]
pub struct Fleet {
    machines: Vec<Machine>,
}

impl Fleet {
    /// Creates an empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a fleet from machines.
    pub fn from_machines(machines: Vec<Machine>) -> Self {
        Fleet { machines }
    }

    /// Adds a machine.
    pub fn push(&mut self, machine: Machine) {
        self.machines.push(machine);
    }

    /// Returns the machines in insertion order.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Mutable access to the machines.
    pub fn machines_mut(&mut self) -> &mut [Machine] {
        &mut self.machines
    }

    /// Looks up a machine by id.
    pub fn get(&self, id: &str) -> Option<&Machine> {
        self.machines.iter().find(|m| m.id == id)
    }

    /// Mutable lookup by id.
    pub fn get_mut(&mut self, id: &str) -> Option<&mut Machine> {
        self.machines.iter_mut().find(|m| m.id == id)
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Returns `true` if the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Returns all machine ids in fleet order.
    pub fn ids(&self) -> Vec<String> {
        self.machines.iter().map(|m| m.id.clone()).collect()
    }
}

impl FromIterator<Machine> for Fleet {
    fn from_iter<T: IntoIterator<Item = Machine>>(iter: T) -> Self {
        Fleet {
            machines: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::IniDoc;
    use crate::pkg::{Package, Version};

    fn repo() -> Repository {
        let mut repo = Repository::new();
        repo.publish(
            Package::new("mysql", Version::new(4, 1, 22))
                .with_file(File::executable("/usr/sbin/mysqld", "mysqld", 4))
                .with_file(File::library("/usr/lib/libmysql.so", "libmysql", "4.1", 4)),
        );
        repo
    }

    fn mysqld_spec() -> ApplicationSpec {
        ApplicationSpec::new("mysqld", "mysql", "/usr/sbin/mysqld")
            .reads("/usr/lib/libmysql.so")
            .probes("/etc/mysql/my.cnf")
    }

    #[test]
    fn builder_assembles_machine() {
        let m = MachineBuilder::new("ubt-ms4")
            .install(&repo(), "mysql", VersionReq::Any)
            .file(File::config(
                "/etc/mysql/my.cnf",
                IniDoc::new().section("mysqld").key("port", "3306"),
            ))
            .env_var("HOME", "/root")
            .app(mysqld_spec())
            .build();
        assert_eq!(m.id, "ubt-ms4");
        assert!(m.fs.contains("/usr/sbin/mysqld"));
        assert_eq!(
            m.pkgs.installed_version("mysql"),
            Some(Version::new(4, 1, 22))
        );
        assert!(m.apps.contains_key("mysqld"));
        assert_eq!(m.app_names().len(), 1);
    }

    #[test]
    fn run_app_traces() {
        let m = MachineBuilder::new("m")
            .install(&repo(), "mysql", VersionReq::Any)
            .app(mysqld_spec())
            .build();
        let t = m.run_app("mysqld", &RunInput::new("r"), RunId(0));
        assert!(t.succeeded());
        assert!(m
            .try_run_app("nope", &RunInput::new("r"), RunId(0))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "not installed")]
    fn run_missing_app_panics() {
        let m = Machine::new("m");
        let _ = m.run_app("ghost", &RunInput::new("r"), RunId(0));
    }

    #[test]
    fn affected_apps_direct_and_shared() {
        let m = MachineBuilder::new("m")
            .install(&repo(), "mysql", VersionReq::Any)
            .app(mysqld_spec())
            .app(ApplicationSpec::new("php", "php", "/usr/bin/php").reads("/usr/lib/libmysql.so"))
            .app(ApplicationSpec::new("apache", "apache", "/usr/sbin/httpd").sharing_with("php"))
            .app(ApplicationSpec::new("vim", "vim", "/usr/bin/vim"))
            .build();
        let changed: BTreeSet<String> = ["/usr/lib/libmysql.so".to_string()].into();
        let affected = m.apps_affected_by(&changed);
        assert!(affected.contains("mysqld"), "manifest hit");
        assert!(affected.contains("php"), "direct read hit");
        assert!(affected.contains("apache"), "sharing propagation");
        assert!(!affected.contains("vim"));
    }

    #[test]
    fn fleet_lookup() {
        let mut fleet = Fleet::new();
        assert!(fleet.is_empty());
        fleet.push(Machine::new("a"));
        fleet.push(Machine::new("b"));
        assert_eq!(fleet.len(), 2);
        assert!(fleet.get("a").is_some());
        assert!(fleet.get("c").is_none());
        assert_eq!(fleet.ids(), vec!["a", "b"]);
        fleet
            .get_mut("a")
            .unwrap()
            .env
            .insert("X".into(), "1".into());
        assert_eq!(fleet.get("a").unwrap().env["X"], "1");
        let collected: Fleet = vec![Machine::new("z")].into_iter().collect();
        assert_eq!(collected.len(), 1);
    }
}
