//! Simulated machine environments for Mirage.
//!
//! The paper evaluates Mirage on real Linux machines with real packages
//! (MySQL, PHP, Apache, Firefox). This crate is the substitute substrate:
//! a deterministic, in-memory model of everything Mirage observes about a
//! machine —
//!
//! * a **filesystem** of typed files with structured, renderable contents
//!   and copy-on-write snapshots (the [`fs`], [`content`], and [`mod@file`] modules);
//! * a **package system** with versions, dependencies, and transitive
//!   upgrade resolution ([`pkg`]), so that broken-dependency problems
//!   arise the same way they do in the field;
//! * **applications** described by behaviour specs and executed by an
//!   interpreter that emits syscall-level traces ([`app`]);
//! * **machines** and fleets assembling all of the above ([`machine`]);
//! * **upgrades with injected problems** — environment predicates that
//!   decide, per machine, whether an upgrade misbehaves and how
//!   ([`problems`]).
//!
//! Everything is deterministic: the same machine and inputs always produce
//! the same trace, which is what lets the validation subsystem compare
//! pre- and post-upgrade behaviour byte for byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod app;
pub mod content;
pub mod file;
pub mod fs;
pub mod machine;
pub mod pkg;
pub mod problems;

pub use app::{AppLogic, ApplicationSpec, LateRead, LateTrigger, RunInput};
pub use content::{FileContent, IniDoc, IniLine, PrefsDoc};
pub use file::File;
pub use fs::FileSystem;
pub use machine::{Fleet, Machine, MachineBuilder};
pub use pkg::{Dependency, Package, PackageManager, PkgError, Repository, Version, VersionReq};
pub use problems::{
    EnvPredicate, ProblemEffect, ProblemId, ProblemSpec, Upgrade, UpgradeId, Urgency,
};
