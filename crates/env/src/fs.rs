//! A copy-on-write in-memory filesystem.
//!
//! Files are stored behind [`Arc`]s, so snapshots are cheap (one pointer
//! clone per entry) and mutation of a snapshot never disturbs the base —
//! this is the property Mirage's validation sandbox relies on, mirroring
//! the paper's copy-on-write User-Mode Linux boot.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

use mirage_fingerprint::{Glob, ResourceData};

use crate::file::File;

/// An in-memory filesystem with copy-on-write snapshots.
#[derive(Debug, Clone, Default)]
pub struct FileSystem {
    files: BTreeMap<String, Arc<File>>,
}

impl FileSystem {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a file. Returns the previous file, if any.
    pub fn insert(&mut self, file: File) -> Option<Arc<File>> {
        self.files.insert(file.path.clone(), Arc::new(file))
    }

    /// Removes a file by path.
    pub fn remove(&mut self, path: &str) -> Option<Arc<File>> {
        self.files.remove(path)
    }

    /// Looks up a file by path.
    pub fn get(&self, path: &str) -> Option<&File> {
        self.files.get(path).map(Arc::as_ref)
    }

    /// Returns `true` if `path` exists.
    pub fn contains(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Returns `true` if the filesystem has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterates over files in path order.
    pub fn iter(&self) -> impl Iterator<Item = &File> {
        self.files.values().map(Arc::as_ref)
    }

    /// Returns all paths in order.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Returns the files whose paths match `glob`, in path order.
    pub fn matching(&self, glob: &Glob) -> Vec<&File> {
        self.iter().filter(|f| glob.matches(&f.path)).collect()
    }

    /// Takes a copy-on-write snapshot.
    ///
    /// The snapshot shares file storage with the base; inserting into or
    /// removing from either side afterwards does not affect the other.
    pub fn snapshot(&self) -> FileSystem {
        FileSystem {
            files: self.files.clone(),
        }
    }

    /// Returns the set of paths whose presence or contents differ between
    /// `self` and `other`.
    ///
    /// Used by the validation subsystem to answer "which files did this
    /// upgrade change?".
    pub fn changed_paths(&self, other: &FileSystem) -> BTreeSet<String> {
        let mut changed = BTreeSet::new();
        for (path, file) in &self.files {
            match other.files.get(path) {
                None => {
                    changed.insert(path.clone());
                }
                Some(o) => {
                    // Arc pointer equality is a cheap fast path; fall back
                    // to structural comparison.
                    if !Arc::ptr_eq(file, o) && **file != **o {
                        changed.insert(path.clone());
                    }
                }
            }
        }
        for path in other.files.keys() {
            if !self.files.contains_key(path) {
                changed.insert(path.clone());
            }
        }
        changed
    }

    /// Renders the files at `paths` into parser-facing resource views.
    ///
    /// Missing paths are skipped: the caller (the heuristic) may list
    /// resources that a particular machine does not have, which is itself
    /// a difference the fingerprint comparison must surface — absence is
    /// encoded by the item simply not being produced.
    pub fn resources(&self, paths: impl IntoIterator<Item = impl AsRef<str>>) -> Vec<ResourceData> {
        paths
            .into_iter()
            .filter_map(|p| self.get(p.as_ref()).map(File::to_resource))
            .collect()
    }

    /// Renders every file into a resource view (vendor reference machines).
    pub fn all_resources(&self) -> Vec<ResourceData> {
        self.iter().map(File::to_resource).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::FileContent;

    fn textfile(path: &str, text: &str) -> File {
        File::new(
            path,
            mirage_fingerprint::ResourceKind::Text,
            FileContent::Text(vec![text.to_string()]),
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut fs = FileSystem::new();
        assert!(fs.is_empty());
        fs.insert(textfile("/a", "1"));
        assert!(fs.contains("/a"));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs.get("/a").unwrap().path, "/a");
        assert!(fs.remove("/a").is_some());
        assert!(fs.get("/a").is_none());
        assert!(fs.remove("/a").is_none());
    }

    #[test]
    fn snapshot_isolation() {
        let mut base = FileSystem::new();
        base.insert(textfile("/etc/x", "orig"));
        base.insert(textfile("/etc/y", "orig"));
        let mut snap = base.snapshot();
        snap.insert(textfile("/etc/x", "changed"));
        snap.remove("/etc/y");
        snap.insert(textfile("/etc/z", "new"));
        // Base unchanged.
        assert_eq!(
            base.get("/etc/x").unwrap().content,
            FileContent::Text(vec!["orig".into()])
        );
        assert!(base.contains("/etc/y"));
        assert!(!base.contains("/etc/z"));
        // Snapshot sees its own changes.
        assert_eq!(
            snap.get("/etc/x").unwrap().content,
            FileContent::Text(vec!["changed".into()])
        );
        assert!(!snap.contains("/etc/y"));
    }

    #[test]
    fn changed_paths_detects_all_kinds_of_change() {
        let mut a = FileSystem::new();
        a.insert(textfile("/same", "s"));
        a.insert(textfile("/modified", "v1"));
        a.insert(textfile("/only-a", "x"));
        let mut b = a.snapshot();
        b.insert(textfile("/modified", "v2"));
        b.remove("/only-a");
        b.insert(textfile("/only-b", "y"));
        let changed = a.changed_paths(&b);
        assert_eq!(
            changed.into_iter().collect::<Vec<_>>(),
            vec!["/modified", "/only-a", "/only-b"]
        );
        // Reflexive: no changes against self.
        assert!(a.changed_paths(&a).is_empty());
    }

    #[test]
    fn glob_matching() {
        let mut fs = FileSystem::new();
        fs.insert(textfile("/var/log/a.log", ""));
        fs.insert(textfile("/var/lib/db", ""));
        fs.insert(textfile("/etc/x", ""));
        let hits = fs.matching(&Glob::new("/var/**"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn resources_skip_missing_paths() {
        let mut fs = FileSystem::new();
        fs.insert(textfile("/a", "1"));
        let res = fs.resources(["/a", "/missing"]);
        assert_eq!(res.len(), 1);
        assert_eq!(fs.all_resources().len(), 1);
    }
}
