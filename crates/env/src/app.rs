//! Application behaviour specs and the trace-emitting interpreter.
//!
//! Applications are described by data (what they read at startup, which
//! environment variables they consult, what they load lazily, what outputs
//! they produce) and *executed* by [`execute`], which emits the same
//! syscall event log a real strace-style tracer would. Determinism is a
//! hard requirement: the validation subsystem replays runs and compares
//! outputs byte for byte.

use std::collections::{BTreeMap, BTreeSet};

use mirage_fingerprint::fnv1a;
use mirage_trace::{OpenMode, RunId, SyscallEvent, Trace};

use crate::fs::FileSystem;

/// One resource probed during the application's initialisation phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitRead {
    /// Path to probe; a leading `$HOME` is expanded through the
    /// environment (emitting the corresponding `getenv` event).
    pub path: String,
    /// If `true`, a missing file aborts startup (broken dependency).
    pub required: bool,
}

impl InitRead {
    /// A required startup read (libraries, the main config).
    pub fn required(path: impl Into<String>) -> Self {
        InitRead {
            path: path.into(),
            required: true,
        }
    }

    /// An optional probe (e.g. `$HOME/.my.cnf`, which may not exist).
    pub fn optional(path: impl Into<String>) -> Self {
        InitRead {
            path: path.into(),
            required: false,
        }
    }
}

/// When a lazily-loaded resource is read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LateTrigger {
    /// Loaded on every run, after initialisation (late binding).
    Always,
    /// Loaded only when the run input carries the given tag
    /// (e.g. a Firefox theme loaded only when the user opens it).
    OnInput(String),
}

/// A resource loaded after the initialisation phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LateRead {
    /// Path to load.
    pub path: String,
    /// Load condition.
    pub when: LateTrigger,
}

/// Output behaviour of an application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppLogic {
    /// Serves network requests (echoes a digest of each payload).
    pub serves_net: bool,
    /// Opens its data files read-write rather than read-only.
    pub writes_data: bool,
    /// Appends a line to this log file on every run.
    pub log_path: Option<String>,
    /// Writes a derived summary file on every run.
    pub output_path: Option<String>,
    /// If `true`, outputs embed the executable build — upgrades then
    /// legitimately change I/O (the paper's §3.5 feature-upgrade case).
    pub version_sensitive: bool,
}

/// A simulated application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplicationSpec {
    /// Application name (also the trace key).
    pub name: String,
    /// Owning package name.
    pub package: String,
    /// Path of the executable image.
    pub exe: String,
    /// Ordered initialisation-phase reads.
    pub init_reads: Vec<InitRead>,
    /// Environment variables consulted at startup.
    pub env_vars: Vec<String>,
    /// Lazily-loaded resources.
    pub late_reads: Vec<LateRead>,
    /// Output behaviour.
    pub logic: AppLogic,
    /// Names of other applications sharing environmental resources with
    /// this one (the dependence information driving both validation
    /// triggering and the cluster app-overlap split).
    pub shares_with: Vec<String>,
}

impl ApplicationSpec {
    /// Creates a minimal spec.
    pub fn new(
        name: impl Into<String>,
        package: impl Into<String>,
        exe: impl Into<String>,
    ) -> Self {
        ApplicationSpec {
            name: name.into(),
            package: package.into(),
            exe: exe.into(),
            init_reads: Vec::new(),
            env_vars: Vec::new(),
            late_reads: Vec::new(),
            logic: AppLogic::default(),
            shares_with: Vec::new(),
        }
    }

    /// Adds a required init read.
    pub fn reads(mut self, path: impl Into<String>) -> Self {
        self.init_reads.push(InitRead::required(path));
        self
    }

    /// Adds an optional init probe.
    pub fn probes(mut self, path: impl Into<String>) -> Self {
        self.init_reads.push(InitRead::optional(path));
        self
    }

    /// Adds an environment variable read.
    pub fn env(mut self, var: impl Into<String>) -> Self {
        self.env_vars.push(var.into());
        self
    }

    /// Adds a late read.
    pub fn late(mut self, path: impl Into<String>, when: LateTrigger) -> Self {
        self.late_reads.push(LateRead {
            path: path.into(),
            when,
        });
        self
    }

    /// Sets the output logic.
    pub fn with_logic(mut self, logic: AppLogic) -> Self {
        self.logic = logic;
        self
    }

    /// Declares a resource-sharing relationship with another application.
    pub fn sharing_with(mut self, app: impl Into<String>) -> Self {
        self.shares_with.push(app.into());
        self
    }
}

/// One run's worth of input to an application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunInput {
    /// Human-readable label of the workload.
    pub id: String,
    /// Command-line arguments.
    pub args: Vec<String>,
    /// Data files read during the run.
    pub data_reads: Vec<String>,
    /// Network requests `(peer, payload)` served during the run.
    pub net_requests: Vec<(String, Vec<u8>)>,
    /// Tags enabling [`LateTrigger::OnInput`] reads.
    pub tags: BTreeSet<String>,
}

impl RunInput {
    /// Creates an empty input with a label.
    pub fn new(id: impl Into<String>) -> Self {
        RunInput {
            id: id.into(),
            ..Default::default()
        }
    }

    /// Adds a data file read.
    pub fn data(mut self, path: impl Into<String>) -> Self {
        self.data_reads.push(path.into());
        self
    }

    /// Adds a network request.
    pub fn request(mut self, peer: impl Into<String>, payload: impl Into<Vec<u8>>) -> Self {
        self.net_requests.push((peer.into(), payload.into()));
        self
    }

    /// Adds a late-trigger tag.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tags.insert(tag.into());
        self
    }

    /// Adds a command-line argument.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }
}

/// Misbehaviour injected into a run by upgrade problems.
///
/// Computed by [`crate::problems::run_behavior_for`]; the default is a
/// healthy run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunBehavior {
    /// Crash (signal-style exit) at the end of initialisation.
    pub crash_on_start: bool,
    /// Refuse to start (clean non-zero exit) immediately.
    pub fail_to_start: bool,
    /// Produce outputs perturbed by this tag.
    pub wrong_output_tag: Option<String>,
}

impl RunBehavior {
    /// A healthy run.
    pub fn healthy() -> Self {
        Self::default()
    }
}

/// Exit code used for simulated crashes (SIGSEGV-style).
pub const EXIT_CRASH: i32 = 139;
/// Exit code used for clean startup refusal.
pub const EXIT_REFUSED: i32 = 1;
/// Exit code used when the executable image is missing.
pub const EXIT_NO_IMAGE: i32 = 127;
/// Exit code used when a required resource is missing (abort).
pub const EXIT_ABORT: i32 = 134;

/// Expands a leading `$HOME` in `path`, emitting the `getenv` event.
fn expand_home(
    path: &str,
    env_vars: &BTreeMap<String, String>,
    trace: &mut Trace,
) -> Option<String> {
    if let Some(rest) = path.strip_prefix("$HOME") {
        let home = env_vars.get("HOME").cloned();
        trace.push(SyscallEvent::GetEnv {
            name: "HOME".into(),
            value: home.clone(),
        });
        home.map(|h| format!("{h}{rest}"))
    } else {
        Some(path.to_string())
    }
}

/// Emits open/read/close events for an existing file.
fn read_file(fs: &FileSystem, path: &str, mode: OpenMode, trace: &mut Trace) -> bool {
    match fs.get(path) {
        Some(file) => {
            trace.push(SyscallEvent::Open {
                path: path.to_string(),
                mode,
            });
            trace.push(SyscallEvent::Read {
                path: path.to_string(),
                len: file.content.render().len(),
            });
            trace.push(SyscallEvent::Close {
                path: path.to_string(),
            });
            true
        }
        None => false,
    }
}

/// Executes an application spec against a filesystem, producing a trace.
///
/// The run is a pure function of `(fs, env_vars, app, input, behavior)`;
/// `machine` and `run` only label the resulting trace.
pub fn execute(
    machine: &str,
    fs: &FileSystem,
    env_vars: &BTreeMap<String, String>,
    app: &ApplicationSpec,
    input: &RunInput,
    run: RunId,
    behavior: &RunBehavior,
) -> Trace {
    let mut trace = Trace::new(machine, app.name.clone(), run);
    trace.push(SyscallEvent::ProcessCreate {
        exe: app.exe.clone(),
        args: input.args.clone(),
    });
    let exe_build = match fs.get(&app.exe) {
        Some(f) => fnv1a(&f.content.render()),
        None => {
            trace.push(SyscallEvent::Exit {
                code: EXIT_NO_IMAGE,
            });
            return trace;
        }
    };
    if behavior.fail_to_start {
        trace.push(SyscallEvent::Exit { code: EXIT_REFUSED });
        return trace;
    }

    // Initialisation phase: ordered resource loads.
    for init in &app.init_reads {
        let Some(path) = expand_home(&init.path, env_vars, &mut trace) else {
            continue;
        };
        let found = read_file(fs, &path, OpenMode::ReadOnly, &mut trace);
        if !found && init.required {
            trace.push(SyscallEvent::Exit { code: EXIT_ABORT });
            return trace;
        }
    }
    for var in &app.env_vars {
        trace.push(SyscallEvent::GetEnv {
            name: var.clone(),
            value: env_vars.get(var).cloned(),
        });
    }
    if behavior.crash_on_start {
        trace.push(SyscallEvent::Exit { code: EXIT_CRASH });
        return trace;
    }

    // Late-bound resources.
    for late in &app.late_reads {
        let load = match &late.when {
            LateTrigger::Always => true,
            LateTrigger::OnInput(tag) => input.tags.contains(tag),
        };
        if load {
            if let Some(path) = expand_home(&late.path, env_vars, &mut trace) {
                read_file(fs, &path, OpenMode::ReadOnly, &mut trace);
            }
        }
    }

    // Workload: data files.
    let data_mode = if app.logic.writes_data {
        OpenMode::ReadWrite
    } else {
        OpenMode::ReadOnly
    };
    let mut data_digest: u64 = 0;
    for path in &input.data_reads {
        if read_file(fs, path, data_mode, &mut trace) {
            if let Some(f) = fs.get(path) {
                data_digest ^= fnv1a(&f.content.render());
            }
        }
    }

    // Workload: network requests.
    let perturbation = behavior.wrong_output_tag.as_deref().unwrap_or("");
    let version_salt = if app.logic.version_sensitive {
        exe_build
    } else {
        0
    };
    for (peer, payload) in &input.net_requests {
        trace.push(SyscallEvent::Socket { peer: peer.clone() });
        trace.push(SyscallEvent::NetRecv {
            peer: peer.clone(),
            data: payload.clone(),
        });
        let digest = fnv1a(payload) ^ version_salt;
        let reply = format!("reply:{digest:016x}{perturbation}");
        trace.push(SyscallEvent::NetSend {
            peer: peer.clone(),
            data: reply.into_bytes(),
        });
    }

    // Outputs.
    if let Some(out) = &app.logic.output_path {
        let body = format!("summary:{:016x}{perturbation}", data_digest ^ version_salt);
        trace.push(SyscallEvent::Write {
            path: out.clone(),
            data: body.into_bytes(),
        });
    }
    if let Some(log) = &app.logic.log_path {
        trace.push(SyscallEvent::Open {
            path: log.clone(),
            mode: OpenMode::WriteOnly,
        });
        let line = format!("{}: run {} ok{perturbation}\n", app.name, input.id);
        trace.push(SyscallEvent::Write {
            path: log.clone(),
            data: line.into_bytes(),
        });
        trace.push(SyscallEvent::Close { path: log.clone() });
    }
    trace.push(SyscallEvent::Exit { code: 0 });
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::IniDoc;
    use crate::file::File;

    fn world() -> (FileSystem, BTreeMap<String, String>, ApplicationSpec) {
        let mut fs = FileSystem::new();
        fs.insert(File::executable("/usr/sbin/mysqld", "mysqld", 4));
        fs.insert(File::library("/lib/libc.so.6", "libc", "2.3", 1));
        fs.insert(File::config(
            "/etc/mysql/my.cnf",
            IniDoc::new().section("mysqld").key("port", "3306"),
        ));
        fs.insert(File::data("/var/lib/mysql/ibdata1", 5, 64));
        let mut env = BTreeMap::new();
        env.insert("HOME".to_string(), "/root".to_string());
        let app = ApplicationSpec::new("mysqld", "mysql", "/usr/sbin/mysqld")
            .reads("/lib/libc.so.6")
            .reads("/etc/mysql/my.cnf")
            .probes("$HOME/.my.cnf")
            .env("TZ")
            .with_logic(AppLogic {
                serves_net: true,
                writes_data: true,
                log_path: Some("/var/log/mysql.log".into()),
                output_path: None,
                version_sensitive: false,
            });
        (fs, env, app)
    }

    fn input() -> RunInput {
        RunInput::new("q1")
            .arg("--port=3306")
            .data("/var/lib/mysql/ibdata1")
            .request("client:1", b"SELECT 1".to_vec())
    }

    #[test]
    fn healthy_run_structure() {
        let (fs, env, app) = world();
        let t = execute(
            "m1",
            &fs,
            &env,
            &app,
            &input(),
            RunId(0),
            &RunBehavior::healthy(),
        );
        assert!(t.succeeded());
        let seq = t.access_sequence();
        assert_eq!(seq[0], "/usr/sbin/mysqld");
        assert_eq!(seq[1], "/lib/libc.so.6");
        assert_eq!(seq[2], "/etc/mysql/my.cnf");
        // $HOME probe: file missing, so no access recorded, but getenv is.
        assert!(t.env_vars_read().contains("HOME"));
        assert!(t.env_vars_read().contains("TZ"));
        // Data file opened read-write.
        assert_eq!(
            t.open_modes()["/var/lib/mysql/ibdata1"],
            OpenMode::ReadWrite
        );
        // One reply + one log write.
        assert_eq!(t.outputs().len(), 2);
    }

    #[test]
    fn determinism() {
        let (fs, env, app) = world();
        let a = execute(
            "m",
            &fs,
            &env,
            &app,
            &input(),
            RunId(0),
            &RunBehavior::healthy(),
        );
        let b = execute(
            "m",
            &fs,
            &env,
            &app,
            &input(),
            RunId(0),
            &RunBehavior::healthy(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn optional_probe_found_when_file_exists() {
        let (mut fs, env, app) = world();
        fs.insert(File::config(
            "/root/.my.cnf",
            IniDoc::new().section("client").key("user", "root"),
        ));
        let t = execute(
            "m",
            &fs,
            &env,
            &app,
            &input(),
            RunId(0),
            &RunBehavior::healthy(),
        );
        assert!(t.accessed_paths().contains("/root/.my.cnf"));
    }

    #[test]
    fn missing_required_resource_aborts() {
        let (mut fs, env, app) = world();
        fs.remove("/lib/libc.so.6");
        let t = execute(
            "m",
            &fs,
            &env,
            &app,
            &input(),
            RunId(0),
            &RunBehavior::healthy(),
        );
        assert_eq!(t.exit_code(), Some(EXIT_ABORT));
        assert!(t.outputs().is_empty());
    }

    #[test]
    fn missing_exe_fails_immediately() {
        let (mut fs, env, app) = world();
        fs.remove("/usr/sbin/mysqld");
        let t = execute(
            "m",
            &fs,
            &env,
            &app,
            &input(),
            RunId(0),
            &RunBehavior::healthy(),
        );
        assert_eq!(t.exit_code(), Some(EXIT_NO_IMAGE));
    }

    #[test]
    fn injected_crash_and_refusal() {
        let (fs, env, app) = world();
        let crash = RunBehavior {
            crash_on_start: true,
            ..Default::default()
        };
        let t = execute("m", &fs, &env, &app, &input(), RunId(0), &crash);
        assert_eq!(t.exit_code(), Some(EXIT_CRASH));
        // Crash happens after init: libraries were loaded.
        assert!(t.accessed_paths().contains("/lib/libc.so.6"));

        let refuse = RunBehavior {
            fail_to_start: true,
            ..Default::default()
        };
        let t = execute("m", &fs, &env, &app, &input(), RunId(0), &refuse);
        assert_eq!(t.exit_code(), Some(EXIT_REFUSED));
        assert!(!t.accessed_paths().contains("/lib/libc.so.6"));
    }

    #[test]
    fn wrong_output_perturbs_replies() {
        let (fs, env, app) = world();
        let healthy = execute(
            "m",
            &fs,
            &env,
            &app,
            &input(),
            RunId(0),
            &RunBehavior::healthy(),
        );
        let bad = RunBehavior {
            wrong_output_tag: Some("!corrupt".into()),
            ..Default::default()
        };
        let t = execute("m", &fs, &env, &app, &input(), RunId(0), &bad);
        assert!(t.succeeded(), "wrong output is not a crash");
        assert_ne!(
            healthy.outputs().len(),
            0,
            "sanity: healthy run has outputs"
        );
        let healthy_outputs: Vec<_> = healthy.outputs().into_iter().cloned().collect();
        let bad_outputs: Vec<_> = t.outputs().into_iter().cloned().collect();
        assert_ne!(healthy_outputs, bad_outputs);
    }

    #[test]
    fn version_sensitive_output_changes_with_build() {
        let (mut fs, env, mut app) = world();
        app.logic.version_sensitive = true;
        let a = execute(
            "m",
            &fs,
            &env,
            &app,
            &input(),
            RunId(0),
            &RunBehavior::healthy(),
        );
        let a_v4_outputs: Vec<_> = a.outputs().into_iter().cloned().collect();
        fs.insert(File::executable("/usr/sbin/mysqld", "mysqld", 5));
        let b = execute(
            "m",
            &fs,
            &env,
            &app,
            &input(),
            RunId(0),
            &RunBehavior::healthy(),
        );
        let b_outputs: Vec<_> = b.outputs().into_iter().cloned().collect();
        assert_ne!(a_v4_outputs[0], b_outputs[0]);

        // ...but a version-insensitive app keeps identical outputs even
        // though the build changed.
        app.logic.version_sensitive = false;
        let c = execute(
            "m",
            &fs,
            &env,
            &app,
            &input(),
            RunId(0),
            &RunBehavior::healthy(),
        );
        let c_outputs: Vec<_> = c.outputs().into_iter().cloned().collect();
        app.logic.version_sensitive = true;
        fs.insert(File::executable("/usr/sbin/mysqld", "mysqld", 4));
        app.logic.version_sensitive = false;
        let d = execute(
            "m",
            &fs,
            &env,
            &app,
            &input(),
            RunId(0),
            &RunBehavior::healthy(),
        );
        let d_outputs: Vec<_> = d.outputs().into_iter().cloned().collect();
        assert_eq!(c_outputs, d_outputs);
    }

    #[test]
    fn late_reads_trigger_on_tags() {
        let (mut fs, env, mut app) = world();
        fs.insert(File::new(
            "/usr/share/themes/dark.theme",
            mirage_fingerprint::ResourceKind::Theme,
            crate::content::FileContent::Binary { seed: 1, len: 32 },
        ));
        app = app.late(
            "/usr/share/themes/dark.theme",
            LateTrigger::OnInput("theme".into()),
        );
        let plain = execute(
            "m",
            &fs,
            &env,
            &app,
            &input(),
            RunId(0),
            &RunBehavior::healthy(),
        );
        assert!(!plain
            .accessed_paths()
            .contains("/usr/share/themes/dark.theme"));
        let tagged = execute(
            "m",
            &fs,
            &env,
            &app,
            &input().tag("theme"),
            RunId(1),
            &RunBehavior::healthy(),
        );
        assert!(tagged
            .accessed_paths()
            .contains("/usr/share/themes/dark.theme"));
    }
}
