//! End-to-end deployment campaigns over a fleet.
//!
//! The campaign API splits the old monolithic deploy loop in two:
//!
//! * **Planning** ([`Campaign::rollout_plan`]) clusters the fleet and
//!   shapes the resulting [`DeployPlan`] into a strategy-carrying
//!   [`RolloutPlan`] — a pure value, no side effects.
//! * **Driving** ([`Campaign::drive`]) pumps a
//!   [`RolloutController`] over the live fleet through the generic
//!   [`mirage_rollout::drive()`] loop. The fleet side (sandbox
//!   validation, URR deposits, vendor diagnose-and-fix) lives in a
//!   private [`WaveExecutor`]; the protocol conversation and rollback
//!   authority live in the controller.
//!
//! A campaign with [guard settings](Campaign::with_guard) attached runs
//! closed-loop: every decision tick the controller assesses the
//! campaign's own Upgrade Report Repository and can abort the rollout,
//! re-notifying every enrolled machine with
//! [`PRIOR_RELEASE`] and recording a [`RollbackInfo`] on the
//! [`CampaignResult`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use mirage_cluster::{Clustering, MachineInfo};
use mirage_deploy::{
    DeployPlan, MachineId, ProblemSet, ProblemTable, ProtocolChoice, Release, TestOutcome,
    TestReport, PRIOR_RELEASE,
};
use mirage_env::{ProblemId, Upgrade, UpgradeId, Urgency};
use mirage_fingerprint::MachineFingerprint;
use mirage_report::{Report, Urr};
use mirage_rollout::{
    GuardSettings, RollbackInfo, RolloutController, RolloutPlan, RolloutStrategy, UrrGuard,
    WaveExecutor, WaveOutcome,
};
use mirage_telemetry::{FlightEvent, Telemetry};

use crate::agent::UserAgent;
use crate::vendor::Vendor;

/// The vendor's protocol choice for an upgrade's urgency (§3.2.2):
/// urgent high-confidence upgrades bypass staging entirely; major
/// releases go slowly with front-loaded debugging; everything else
/// uses Balanced.
pub fn choice_for_urgency(urgency: Urgency) -> ProtocolChoice {
    match urgency {
        Urgency::Urgent => ProtocolChoice::NoStaging,
        Urgency::Major => ProtocolChoice::FrontLoading,
        Urgency::Routine => ProtocolChoice::Balanced,
    }
}

/// Which deployment protocol a campaign uses.
#[deprecated(
    since = "0.5.0",
    note = "use mirage_deploy::ProtocolChoice (and choice_for_urgency) directly; \
            this duplicate selector will be removed next release"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Everyone at once (urgent upgrades).
    NoStaging,
    /// Ascending-distance staged deployment.
    Balanced,
    /// All-reps-first, then descending distance.
    FrontLoading,
    /// Staged deployment in a seeded pseudo-random cluster order (the
    /// paper's RandomStaging baseline).
    RandomStaging {
        /// Shuffle seed (deterministic runs).
        seed: u64,
    },
}

#[allow(deprecated)]
impl ProtocolKind {
    /// The campaign-level kind for an upgrade's urgency. Deprecated
    /// shim over [`choice_for_urgency`].
    pub fn for_urgency(urgency: Urgency) -> Self {
        match choice_for_urgency(urgency) {
            ProtocolChoice::NoStaging => ProtocolKind::NoStaging,
            ProtocolChoice::FrontLoading => ProtocolKind::FrontLoading,
            ProtocolChoice::RandomStaging { seed } => ProtocolKind::RandomStaging { seed },
            ProtocolChoice::Balanced => ProtocolKind::Balanced,
        }
    }

    /// Lowers the campaign-level kind to the deploy crate's unified
    /// [`ProtocolChoice`] selector.
    pub fn choice(self) -> ProtocolChoice {
        match self {
            ProtocolKind::NoStaging => ProtocolChoice::NoStaging,
            ProtocolKind::Balanced => ProtocolChoice::Balanced,
            ProtocolKind::FrontLoading => ProtocolChoice::FrontLoading,
            ProtocolKind::RandomStaging { seed } => ProtocolChoice::RandomStaging { seed },
        }
    }
}

/// The outcome of a campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// The deployment plan (clusters + representatives).
    pub plan: DeployPlan,
    /// Every release shipped (release 0 is the original upgrade).
    pub releases: Vec<UpgradeId>,
    /// Machines that integrated the upgrade, with the release they
    /// integrated. A rolled-back machine is *removed* again: after an
    /// abort this holds only machines still on a forward release.
    pub integrated: BTreeMap<String, u32>,
    /// Number of failed validations (upgrade overhead).
    pub failed_validations: usize,
    /// Logical rounds executed.
    pub rounds: usize,
    /// The rollback, if the campaign's guard aborted the rollout.
    pub rollback: Option<RollbackInfo>,
}

impl CampaignResult {
    /// Returns `true` if every machine integrated some release.
    pub fn converged(&self, fleet_size: usize) -> bool {
        self.integrated.len() == fleet_size
    }
}

/// A deployment campaign: a vendor, a fleet of user agents, and a URR.
pub struct Campaign {
    /// The vendor.
    pub vendor: Vendor,
    /// The fleet.
    pub agents: Vec<UserAgent>,
    /// The upgrade report repository. Shared (`Arc`) so a rollout
    /// guard can assess it live while the campaign deposits into it.
    pub urr: Arc<Urr>,
    /// Telemetry handle (no-op by default).
    pub telemetry: Telemetry,
    /// URR guard thresholds armed on every drive (closed-loop
    /// rollback). `None` runs open-loop.
    pub guard: Option<GuardSettings>,
}

impl Campaign {
    /// Creates a campaign.
    pub fn new(vendor: Vendor, agents: Vec<UserAgent>) -> Self {
        Campaign {
            vendor,
            agents,
            urr: Arc::new(Urr::new()),
            telemetry: Telemetry::noop(),
            guard: None,
        }
    }

    /// Attaches a telemetry handle to the campaign *and* its vendor, so
    /// planning spans, clustering counters, per-round flight events, and
    /// protocol wave events all land in one recorder.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.vendor.telemetry = telemetry.clone();
        self.telemetry = telemetry;
        self
    }

    /// Arms the URR guard: every subsequent [`Campaign::drive`] runs
    /// closed-loop against the campaign's repository with these
    /// thresholds and may roll the fleet back.
    pub fn with_guard(mut self, settings: GuardSettings) -> Self {
        self.guard = Some(settings);
        self
    }

    /// Computes every agent's clustering input in parallel.
    ///
    /// The per-machine work (tracing, classification, fingerprinting,
    /// diffing) is independent, so it fans out across OS threads.
    pub fn fleet_inputs(&self, app: &str, reference: &MachineFingerprint) -> Vec<MachineInfo> {
        let _span = self.telemetry.span("campaign.fleet_inputs");
        self.telemetry
            .counter("campaign.fleet_size", self.agents.len() as u64);
        let vendor = &self.vendor;
        let chunk = (self.agents.len() / num_threads().max(1)).max(1);
        let mut results: Vec<Option<MachineInfo>> = vec![None; self.agents.len()];
        std::thread::scope(|scope| {
            for (agents, outs) in self.agents.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (agent, out) in agents.iter().zip(outs.iter_mut()) {
                        *out = Some(agent.clustering_input(app, vendor, reference));
                    }
                });
            }
        });
        results.into_iter().map(|o| o.expect("filled")).collect()
    }

    /// Clusters the fleet for `app` and shapes the deployment into a
    /// strategy-carrying [`RolloutPlan`] — the pure planning half of a
    /// campaign. Drive it with [`Campaign::drive`].
    pub fn rollout_plan(
        &self,
        app: &str,
        reference: &MachineFingerprint,
        reps_per_cluster: usize,
        strategy: RolloutStrategy,
    ) -> (Clustering, RolloutPlan) {
        let _span = self.telemetry.span("campaign.plan");
        let inputs = self.fleet_inputs(app, reference);
        let clustering = self.vendor.cluster(&inputs);
        let deploy = DeployPlan::from_clustering(&clustering, reps_per_cluster);
        (clustering, RolloutPlan::new(deploy, strategy))
    }

    /// Clusters the fleet for `app` and builds the deployment plan.
    #[deprecated(
        since = "0.5.0",
        note = "use Campaign::rollout_plan, which also shapes the strategy cohorts; \
                this shim will be removed next release"
    )]
    pub fn plan(
        &self,
        app: &str,
        reference: &MachineFingerprint,
        reps_per_cluster: usize,
    ) -> (Clustering, DeployPlan) {
        let (clustering, plan) = self.rollout_plan(
            app,
            reference,
            reps_per_cluster,
            RolloutStrategy::Staged { waves: 1 },
        );
        (clustering, plan.deploy)
    }

    /// Runs a full strategy-driven deployment of `upgrade` in logical
    /// time.
    ///
    /// A [`RolloutController`] over `plan` issues the notification
    /// waves; each wave validates the current release on the notified
    /// machines (real sandbox validation), deposits reports in the URR,
    /// lets the vendor diagnose failures from the report images and
    /// ship corrected releases, and continues until the controller
    /// completes or stalls. `choice` selects the staging protocol a
    /// `Staged` strategy delegates to; cohort strategies (`Canary` /
    /// `Rolling` / `BlueGreen`) ignore it.
    ///
    /// With [guard settings](Campaign::with_guard) armed, the
    /// controller assesses the campaign's URR on every decision tick
    /// and aborts on sustained regression: every enrolled machine is
    /// re-notified with [`PRIOR_RELEASE`] and the abort is recorded on
    /// [`CampaignResult::rollback`].
    pub fn drive(
        &mut self,
        upgrade: Upgrade,
        plan: &RolloutPlan,
        choice: ProtocolChoice,
        threshold: f64,
    ) -> CampaignResult {
        let _deploy_span = self.telemetry.span("campaign.deploy");
        let mut controller = RolloutController::new(plan.clone(), choice, threshold)
            .with_telemetry(self.telemetry.clone());
        if let Some(settings) = self.guard {
            controller = controller.with_guard(UrrGuard::new(Arc::clone(&self.urr), settings));
        }
        let mut executor = FleetExecutor {
            vendor: &self.vendor,
            agents: &mut self.agents,
            urr: &self.urr,
            telemetry: self.telemetry.clone(),
            plan: &plan.deploy,
            releases: vec![upgrade],
            integrated: BTreeMap::new(),
            failed_validations: 0,
            fixed: BTreeSet::new(),
            signatures: ProblemTable::new(),
        };
        let rounds = mirage_rollout::drive(&mut controller, &mut executor, &self.telemetry);
        self.telemetry.counter("campaign.rounds", rounds as u64);
        CampaignResult {
            plan: plan.deploy.clone(),
            releases: executor.releases.iter().map(Upgrade::id).collect(),
            integrated: executor.integrated,
            failed_validations: executor.failed_validations,
            rounds,
            rollback: controller.rollback().copied(),
        }
    }

    /// Drives with the protocol recommended for the upgrade's urgency
    /// (§3.2.2): urgent → NoStaging, major → FrontLoading, routine →
    /// Balanced.
    pub fn drive_auto(
        &mut self,
        upgrade: Upgrade,
        plan: &RolloutPlan,
        threshold: f64,
    ) -> CampaignResult {
        let choice = choice_for_urgency(upgrade.urgency);
        self.drive(upgrade, plan, choice, threshold)
    }

    /// Runs a full staged deployment of `upgrade` in logical time.
    #[deprecated(
        since = "0.5.0",
        note = "use Campaign::drive with a RolloutPlan and ProtocolChoice; \
                this shim will be removed next release"
    )]
    #[allow(deprecated)]
    pub fn deploy(
        &mut self,
        upgrade: Upgrade,
        plan: &DeployPlan,
        kind: ProtocolKind,
        threshold: f64,
    ) -> CampaignResult {
        let rollout = RolloutPlan::new(plan.clone(), RolloutStrategy::Staged { waves: 1 });
        self.drive(upgrade, &rollout, kind.choice(), threshold)
    }

    /// Deploys with the protocol recommended for the upgrade's urgency.
    #[deprecated(
        since = "0.5.0",
        note = "use Campaign::drive_auto with a RolloutPlan; \
                this shim will be removed next release"
    )]
    #[allow(deprecated)]
    pub fn deploy_auto(
        &mut self,
        upgrade: Upgrade,
        plan: &DeployPlan,
        threshold: f64,
    ) -> CampaignResult {
        let rollout = RolloutPlan::new(plan.clone(), RolloutStrategy::Staged { waves: 1 });
        self.drive_auto(upgrade, &rollout, threshold)
    }
}

/// The fleet-shaped half of a campaign: executes one notification wave
/// against the live agents — sandbox validation, URR deposits, vendor
/// diagnose-and-fix — and reports what came back. The protocol
/// conversation lives entirely in [`mirage_rollout::drive()`].
struct FleetExecutor<'a> {
    vendor: &'a Vendor,
    agents: &'a mut Vec<UserAgent>,
    urr: &'a Urr,
    telemetry: Telemetry,
    plan: &'a DeployPlan,
    /// Every release shipped so far; index = `Release.0`.
    releases: Vec<Upgrade>,
    integrated: BTreeMap<String, u32>,
    failed_validations: usize,
    fixed: BTreeSet<String>,
    /// Failure *signatures* are the campaign's problem namespace for
    /// the protocol: intern them so the (id-keyed) protocol sees dense
    /// `ProblemId`s at the boundary.
    signatures: ProblemTable,
}

impl FleetExecutor<'_> {
    /// Executes a rollback wave: un-integrates each machine and
    /// confirms the revert with a `Pass` at [`PRIOR_RELEASE`]. The
    /// package-level downgrade is outside the campaign model (the
    /// pre-upgrade image is not snapshotted); what rolls back is the
    /// campaign's integration record, which is what
    /// [`CampaignResult::converged`] measures.
    fn revert(&mut self, machines: &[MachineId]) -> WaveOutcome {
        let mut reports = Vec::with_capacity(machines.len());
        for &machine in machines {
            let machine_name = self.plan.machine_name(machine).to_string();
            if !self.agents.iter().any(|a| a.machine.id == machine_name) {
                continue;
            }
            self.telemetry.counter("campaign.reverts", 1);
            self.telemetry.event_with(|| FlightEvent::MachineNotified {
                machine: machine_name.clone(),
                release: PRIOR_RELEASE.0,
            });
            self.integrated.remove(&machine_name);
            reports.push(TestReport {
                machine,
                release: PRIOR_RELEASE,
                outcome: TestOutcome::Pass,
            });
        }
        WaveOutcome {
            reports,
            shipped: None,
        }
    }

    /// Ships one corrected release fixing every newly diagnosed
    /// problem, and gathers the cumulative fixed-signature set for the
    /// protocol's re-notification decision.
    fn ship_fix(&mut self, new_problems: Vec<ProblemId>) -> (Release, ProblemSet) {
        let latest = self.releases.last().expect("at least the original");
        let next = latest.fix_all(new_problems.iter());
        for p in &new_problems {
            self.fixed.insert(p.0.clone());
        }
        self.releases.push(next);
        self.telemetry.counter("campaign.releases_shipped", 1);
        self.telemetry.event_with(|| FlightEvent::ReleaseShipped {
            release: (self.releases.len() - 1) as u32,
        });
        // The protocol matches failure *signatures* (app/detail
        // strings), while fixes are tracked by problem id. A corrected
        // release here fixes every diagnosed problem, so every known
        // failure signature is addressed: re-notify all failed
        // machines.
        let mut all_sigs = ProblemSet::new();
        for g in self.urr.failure_groups() {
            all_sigs.insert(self.signatures.intern(&g.signature));
        }
        (Release((self.releases.len() - 1) as u32), all_sigs)
    }
}

impl WaveExecutor for FleetExecutor<'_> {
    fn notify(&mut self, machines: &[MachineId], release: Release) -> WaveOutcome {
        if release == PRIOR_RELEASE {
            return self.revert(machines);
        }
        let mut new_problems: Vec<ProblemId> = Vec::new();
        let mut reports: Vec<TestReport> = Vec::new();
        for &machine in machines {
            // Boundary: render the dense id back into the machine name
            // that agents and reports are keyed by.
            let machine_name = self.plan.machine_name(machine).to_string();
            let Some(agent_idx) = self
                .agents
                .iter()
                .position(|a| a.machine.id == machine_name)
            else {
                continue;
            };
            self.telemetry.event_with(|| FlightEvent::MachineNotified {
                machine: machine_name.clone(),
                release: release.0,
            });
            let cluster = self.plan.cluster_of(machine).map(|c| c.id).unwrap_or(0);
            let current = &self.releases[release.0 as usize];
            let validation = self.agents[agent_idx].test_upgrade(&self.vendor.repo, current);
            self.telemetry.counter("campaign.validations", 1);
            if validation.passed() {
                self.telemetry.event_with(|| FlightEvent::TestPassed {
                    machine: machine_name.clone(),
                    release: release.0,
                });
                self.agents[agent_idx].integrate(&self.vendor.repo, current);
                self.integrated.insert(machine_name.clone(), release.0);
                self.urr.deposit(Report::success(
                    &machine_name,
                    cluster,
                    &current.package.name,
                    current.package.version.to_string(),
                ));
                reports.push(TestReport {
                    machine,
                    release,
                    outcome: TestOutcome::Pass,
                });
            } else {
                self.failed_validations += 1;
                self.telemetry.counter("campaign.failed_validations", 1);
                let agent = &self.agents[agent_idx];
                let (app, kind) = validation.first_failure().expect("failed validation");
                let signature = format!("{app}/{kind}");
                self.telemetry.event_with(|| FlightEvent::TestFailed {
                    machine: machine_name.clone(),
                    release: release.0,
                    problem: signature.clone(),
                });
                let image = agent.report_image(&validation);
                self.urr.deposit(Report::failure(
                    &machine_name,
                    cluster,
                    &current.package.name,
                    current.package.version.to_string(),
                    &signature,
                    kind.to_string(),
                    image,
                ));
                // Vendor reproduces the failure from the image and
                // identifies the underlying problems.
                for pid in self.vendor.diagnose(current, &agent.machine) {
                    if !self.fixed.contains(&pid) && !new_problems.iter().any(|p| p.0 == pid) {
                        self.telemetry.counter("campaign.problems_discovered", 1);
                        self.telemetry
                            .event_with(|| FlightEvent::ProblemDiscovered {
                                problem: pid.clone(),
                            });
                        new_problems.push(ProblemId(pid));
                    }
                }
                reports.push(TestReport {
                    machine,
                    release,
                    outcome: TestOutcome::Fail {
                        problem: self.signatures.intern(&signature),
                    },
                });
            }
        }
        let shipped = if new_problems.is_empty() {
            None
        } else {
            Some(self.ship_fix(new_problems))
        };
        WaveOutcome { reports, shipped }
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_env::{
        ApplicationSpec, EnvPredicate, File, MachineBuilder, Package, ProblemEffect, ProblemSpec,
        Repository, RunInput, Version, VersionReq,
    };

    fn staged() -> RolloutStrategy {
        RolloutStrategy::Staged { waves: 1 }
    }

    /// A little world: app v1 installed everywhere; two machines carry a
    /// legacy config that breaks the v2 upgrade.
    pub(crate) fn build_campaign() -> (Campaign, Upgrade, MachineFingerprint) {
        let mut repo = Repository::new();
        repo.publish(
            Package::new("app", Version::new(1, 0, 0)).with_file(File::executable(
                "/usr/bin/app",
                "app",
                1,
            )),
        );
        let spec =
            || ApplicationSpec::new("app", "app", "/usr/bin/app").probes("/etc/app-legacy.conf");
        let reference = MachineBuilder::new("vendor-ref")
            .install(&repo, "app", VersionReq::Any)
            .app(spec())
            .build();

        let mut agents = Vec::new();
        for i in 0..6 {
            let mut b = MachineBuilder::new(format!("u{i}"))
                .install(&repo, "app", VersionReq::Any)
                .app(spec());
            if i >= 4 {
                b = b.file(File::config(
                    "/etc/app-legacy.conf",
                    mirage_env::IniDoc::new().key("legacy", "yes"),
                ));
            }
            let mut agent = UserAgent::new(b.build());
            agent.collect("app", RunInput::new("w1"));
            agent.collect("app", RunInput::new("w2"));
            agents.push(agent);
        }

        let v2 = Package::new("app", Version::new(2, 0, 0)).with_file(File::executable(
            "/usr/bin/app",
            "app",
            2,
        ));
        let upgrade = Upgrade::new(
            v2,
            vec![ProblemSpec::new(
                "legacy-conf",
                "v2 breaks on legacy config",
                EnvPredicate::FileExists("/etc/app-legacy.conf".into()),
                ProblemEffect::CrashOnStart { app: "app".into() },
            )],
        );

        let vendor = Vendor::new(reference, repo).with_diameter(0);
        let c = vendor.classify_reference("app", &[RunInput::new("w1"), RunInput::new("w2")]);
        let ref_fp = vendor.reference_fingerprint(&c);
        (Campaign::new(vendor, agents), upgrade, ref_fp)
    }

    #[test]
    fn clustering_separates_legacy_machines() {
        let (campaign, _, ref_fp) = build_campaign();
        let (clustering, plan) = campaign.rollout_plan("app", &ref_fp, 1, staged());
        assert_eq!(clustering.len(), 2);
        let legacy_cluster = clustering.cluster_of("u4").unwrap();
        assert!(legacy_cluster.contains("u5"));
        assert!(!legacy_cluster.contains("u0"));
        assert_eq!(plan.deploy.clusters.len(), 2);
    }

    #[test]
    fn balanced_campaign_converges_with_one_rep_failure() {
        let (mut campaign, upgrade, ref_fp) = build_campaign();
        let (_, plan) = campaign.rollout_plan("app", &ref_fp, 1, staged());
        let result = campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);
        assert!(result.converged(6), "integrated: {:?}", result.integrated);
        assert!(result.rollback.is_none());
        // Exactly one machine (the legacy cluster's representative)
        // tested the faulty release.
        assert_eq!(result.failed_validations, 1);
        // Two releases: the original and the fix.
        assert_eq!(result.releases.len(), 2);
        // URR has one failure group with one machine.
        let groups = campaign.urr.failure_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].machines.len(), 1);
        // Healthy machines integrated release 0; legacy machines the fix.
        assert_eq!(result.integrated["u0"], 0);
        assert_eq!(result.integrated["u4"], 1);
        assert_eq!(result.integrated["u5"], 1);
        // Live machines actually upgraded.
        let u4 = campaign
            .agents
            .iter()
            .find(|a| a.machine.id == "u4")
            .unwrap();
        assert_eq!(
            u4.machine.pkgs.installed_version("app"),
            Some(Version::new(2, 0, 1))
        );
    }

    #[test]
    fn nostaging_campaign_fails_everywhere_at_once() {
        let (mut campaign, upgrade, ref_fp) = build_campaign();
        let (_, plan) = campaign.rollout_plan("app", &ref_fp, 1, staged());
        let result = campaign.drive(upgrade, &plan, ProtocolChoice::NoStaging, 1.0);
        assert!(result.converged(6));
        // Both legacy machines tested the faulty release.
        assert_eq!(result.failed_validations, 2);
    }

    #[test]
    fn frontloading_campaign_converges() {
        let (mut campaign, upgrade, ref_fp) = build_campaign();
        let (_, plan) = campaign.rollout_plan("app", &ref_fp, 1, staged());
        let result = campaign.drive(upgrade, &plan, ProtocolChoice::FrontLoading, 1.0);
        assert!(result.converged(6));
        assert_eq!(result.failed_validations, 1);
    }

    #[test]
    fn telemetry_records_campaign_flight() {
        use mirage_telemetry::{Registry, Telemetry};

        let (campaign, upgrade, ref_fp) = build_campaign();
        let registry = Arc::new(Registry::new(1024));
        let mut campaign = campaign.with_telemetry(Telemetry::from_registry(Arc::clone(&registry)));
        let (_, plan) = campaign.rollout_plan("app", &ref_fp, 1, staged());
        let result = campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);
        assert!(result.converged(6));

        let snap = registry.snapshot();
        // Campaign counters.
        assert_eq!(snap.counters["campaign.fleet_size"], 6);
        assert_eq!(snap.counters["campaign.rounds"], result.rounds as u64);
        assert_eq!(snap.counters["campaign.failed_validations"], 1);
        assert_eq!(snap.counters["campaign.problems_discovered"], 1);
        assert_eq!(snap.counters["campaign.releases_shipped"], 1);
        assert!(snap.counters["campaign.validations"] >= 6);
        // Clustering counters flow through the vendor's engine.
        assert_eq!(snap.counters["cluster.machines_in"], 6);
        // Protocol counters flow through the deploy crate.
        assert!(snap.counters["deploy.machines_notified"] >= 6);
        // Spans nest: plan wraps fleet_inputs wraps the cluster pipeline.
        for span in [
            "campaign.plan",
            "campaign.plan/campaign.fleet_inputs",
            "campaign.plan/cluster.pipeline",
            "campaign.deploy",
        ] {
            assert!(snap.spans.contains_key(span), "missing span {span}");
        }
        assert_eq!(
            snap.spans["campaign.deploy/round"].count,
            result.rounds as u64
        );
        // Flight events: every kind of campaign event appears.
        for kind in [
            "machine_notified",
            "test_passed",
            "test_failed",
            "problem_discovered",
            "release_shipped",
            "wave_advanced",
        ] {
            assert!(
                snap.event_counts.get(kind).copied().unwrap_or(0) >= 1,
                "missing flight event kind {kind}"
            );
        }
        assert_eq!(snap.event_counts["test_failed"], 1);
        assert_eq!(snap.event_counts["release_shipped"], 1);
    }

    #[test]
    fn healthy_upgrade_ships_single_release() {
        let (mut campaign, _, ref_fp) = build_campaign();
        let clean = Upgrade::new(
            Package::new("app", Version::new(2, 0, 0)).with_file(File::executable(
                "/usr/bin/app",
                "app",
                2,
            )),
            vec![],
        );
        let (_, plan) = campaign.rollout_plan("app", &ref_fp, 1, staged());
        let result = campaign.drive(clean, &plan, ProtocolChoice::Balanced, 1.0);
        assert!(result.converged(6));
        assert_eq!(result.failed_validations, 0);
        assert_eq!(result.releases.len(), 1);
        assert_eq!(campaign.urr.stats().failures, 0);
    }

    /// A fleet-wide regression under a guarded rolling drive: the guard
    /// trips on the campaign's own URR, exposure stays within the first
    /// batch, and every reverted machine drops out of `integrated`.
    #[test]
    fn guarded_drive_aborts_and_contains_exposure() {
        let (campaign, _, ref_fp) = build_campaign();
        let mut campaign = campaign.with_guard(GuardSettings {
            max_cluster_failure_rate: 0.3,
            min_reports: 2,
            unhealthy_ticks: 1,
            healthy_ticks: 1,
            ..GuardSettings::default()
        });
        let everywhere_bad = Upgrade::new(
            Package::new("app", Version::new(2, 0, 0)).with_file(File::executable(
                "/usr/bin/app",
                "app",
                2,
            )),
            vec![ProblemSpec::new(
                "global-regression",
                "v2 crashes on every machine",
                EnvPredicate::FileExists("/usr/bin/app".into()),
                ProblemEffect::CrashOnStart { app: "app".into() },
            )],
        );
        let (_, plan) = campaign.rollout_plan(
            "app",
            &ref_fp,
            1,
            RolloutStrategy::Rolling { batch_size: 2 },
        );
        assert_eq!(plan.cohorts.len(), 3);
        let result = campaign.drive(everywhere_bad, &plan, ProtocolChoice::Balanced, 1.0);
        let info = result.rollback.expect("guard aborts the regression");
        assert_eq!(info.exposed_machines, 2, "contained to the first batch");
        assert_eq!(info.at_cohort, 0);
        assert_eq!(info.prior_release, PRIOR_RELEASE);
        assert!(
            result.integrated.is_empty(),
            "reverted machines are un-integrated: {:?}",
            result.integrated
        );
        assert!(!result.converged(6));
    }

    /// A guarded drive of a *clean* upgrade stays open: the guard holds
    /// its fire and the fleet converges normally.
    #[test]
    fn guarded_drive_passes_a_clean_release() {
        let (campaign, _, ref_fp) = build_campaign();
        let mut campaign = campaign.with_guard(GuardSettings::default());
        let clean = Upgrade::new(
            Package::new("app", Version::new(2, 0, 0)).with_file(File::executable(
                "/usr/bin/app",
                "app",
                2,
            )),
            vec![],
        );
        let (_, plan) = campaign.rollout_plan(
            "app",
            &ref_fp,
            1,
            RolloutStrategy::Canary {
                percentage: 20.0,
                bake_time: 0,
            },
        );
        let result = campaign.drive(clean, &plan, ProtocolChoice::Balanced, 1.0);
        assert!(result.rollback.is_none());
        assert!(result.converged(6), "integrated: {:?}", result.integrated);
    }
}

#[cfg(test)]
mod urgency_tests {
    use super::*;
    use crate::vendor::Vendor;
    use mirage_env::{
        ApplicationSpec, File, MachineBuilder, Package, Repository, RunInput, Urgency, Version,
        VersionReq,
    };

    fn tiny_campaign() -> (Campaign, mirage_fingerprint::MachineFingerprint) {
        let mut repo = Repository::new();
        repo.publish(
            Package::new("app", Version::new(1, 0, 0)).with_file(File::executable(
                "/usr/bin/app",
                "app",
                1,
            )),
        );
        let spec = || ApplicationSpec::new("app", "app", "/usr/bin/app");
        let reference = MachineBuilder::new("ref")
            .install(&repo, "app", VersionReq::Any)
            .app(spec())
            .build();
        let vendor = Vendor::new(reference, repo).with_diameter(0);
        let mut agents = Vec::new();
        for i in 0..4 {
            let mut agent = UserAgent::new(
                MachineBuilder::new(format!("u{i}"))
                    .install(&vendor.repo, "app", VersionReq::Any)
                    .app(spec())
                    .build(),
            );
            agent.collect("app", RunInput::new("w"));
            agents.push(agent);
        }
        let c = vendor.classify_reference("app", &[RunInput::new("w")]);
        let fp = vendor.reference_fingerprint(&c);
        (Campaign::new(vendor, agents), fp)
    }

    fn clean_v2() -> Upgrade {
        Upgrade::new(
            Package::new("app", Version::new(2, 0, 0)).with_file(File::executable(
                "/usr/bin/app",
                "app",
                2,
            )),
            vec![],
        )
    }

    #[test]
    fn urgency_selects_protocol() {
        assert_eq!(
            choice_for_urgency(Urgency::Urgent),
            ProtocolChoice::NoStaging
        );
        assert_eq!(
            choice_for_urgency(Urgency::Major),
            ProtocolChoice::FrontLoading
        );
        assert_eq!(
            choice_for_urgency(Urgency::Routine),
            ProtocolChoice::Balanced
        );
    }

    #[test]
    fn drive_auto_converges_for_each_urgency() {
        for urgency in [Urgency::Routine, Urgency::Major, Urgency::Urgent] {
            let (mut campaign, fp) = tiny_campaign();
            let (_, plan) =
                campaign.rollout_plan("app", &fp, 1, RolloutStrategy::Staged { waves: 1 });
            let result = campaign.drive_auto(clean_v2().with_urgency(urgency), &plan, 1.0);
            assert!(result.converged(4), "urgency {urgency:?}");
        }
    }

    #[test]
    fn random_staging_is_deterministic_and_converges() {
        let (mut campaign, fp) = tiny_campaign();
        let (_, plan) = campaign.rollout_plan("app", &fp, 1, RolloutStrategy::Staged { waves: 1 });
        let result = campaign.drive(
            clean_v2(),
            &plan,
            ProtocolChoice::RandomStaging { seed: 42 },
            1.0,
        );
        assert!(result.converged(4));
        assert_eq!(result.failed_validations, 0);
    }

    #[test]
    fn seeded_shuffle_is_a_permutation() {
        use mirage_deploy::seeded_shuffle;
        let mut order: Vec<usize> = (0..10).collect();
        seeded_shuffle(&mut order, 7);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        // Deterministic for equal seeds, different across seeds.
        let mut again: Vec<usize> = (0..10).collect();
        seeded_shuffle(&mut again, 7);
        assert_eq!(order, again);
        let mut other: Vec<usize> = (0..10).collect();
        seeded_shuffle(&mut other, 8);
        assert_ne!(order, other);
    }

    /// Every cohort strategy converges the clean release end-to-end on
    /// the live fleet, not just in the simulator.
    #[test]
    fn all_strategies_converge_live() {
        for strategy in [
            RolloutStrategy::Staged { waves: 2 },
            RolloutStrategy::Canary {
                percentage: 25.0,
                bake_time: 0,
            },
            RolloutStrategy::Rolling { batch_size: 2 },
            RolloutStrategy::BlueGreen,
        ] {
            let (mut campaign, fp) = tiny_campaign();
            let (_, plan) = campaign.rollout_plan("app", &fp, 1, strategy);
            let result = campaign.drive(clean_v2(), &plan, ProtocolChoice::Balanced, 1.0);
            assert!(
                result.converged(4),
                "{}: integrated {:?}",
                strategy.name(),
                result.integrated
            );
            assert!(result.rollback.is_none(), "{}", strategy.name());
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod legacy_shim_tests {
    use super::tests::build_campaign;
    use super::*;
    use mirage_env::Urgency;

    #[test]
    fn protocol_kind_still_maps_like_choice_for_urgency() {
        for urgency in [Urgency::Urgent, Urgency::Major, Urgency::Routine] {
            assert_eq!(
                ProtocolKind::for_urgency(urgency).choice(),
                choice_for_urgency(urgency)
            );
        }
        assert_eq!(
            ProtocolKind::RandomStaging { seed: 9 }.choice(),
            ProtocolChoice::RandomStaging { seed: 9 }
        );
    }

    #[test]
    fn deploy_shim_matches_drive() {
        let (mut legacy, upgrade, ref_fp) = build_campaign();
        let (_, deploy_plan) = legacy.plan("app", &ref_fp, 1);
        let legacy_result = legacy.deploy(upgrade, &deploy_plan, ProtocolKind::Balanced, 1.0);

        let (mut modern, upgrade, ref_fp) = build_campaign();
        let (_, rollout_plan) =
            modern.rollout_plan("app", &ref_fp, 1, RolloutStrategy::Staged { waves: 1 });
        let modern_result = modern.drive(upgrade, &rollout_plan, ProtocolChoice::Balanced, 1.0);

        assert_eq!(legacy_result.integrated, modern_result.integrated);
        assert_eq!(
            legacy_result.failed_validations,
            modern_result.failed_validations
        );
        assert_eq!(legacy_result.releases, modern_result.releases);
        assert_eq!(legacy_result.rounds, modern_result.rounds);
        assert!(legacy_result.rollback.is_none());
    }

    #[test]
    fn deploy_auto_shim_converges() {
        let (mut campaign, upgrade, ref_fp) = build_campaign();
        let (_, plan) = campaign.plan("app", &ref_fp, 1);
        let result = campaign.deploy_auto(upgrade, &plan, 1.0);
        assert!(result.converged(6));
    }
}

#[cfg(test)]
mod frontloading_analytics_tests {
    use super::*;
    use crate::vendor::Vendor;
    use mirage_env::{
        ApplicationSpec, EnvPredicate, File, IniDoc, MachineBuilder, Package, ProblemEffect,
        ProblemSpec, Repository, RunInput, Version, VersionReq,
    };

    /// A fleet with several environment groups; the "exotic" group (far
    /// from the vendor) breaks the upgrade.
    fn campaign() -> (Campaign, mirage_fingerprint::MachineFingerprint, Upgrade) {
        let mut repo = Repository::new();
        repo.publish(
            Package::new("app", Version::new(1, 0, 0)).with_file(File::executable(
                "/usr/bin/app",
                "app",
                1,
            )),
        );
        let spec = || ApplicationSpec::new("app", "app", "/usr/bin/app").probes("/etc/app.conf");
        let reference = MachineBuilder::new("ref")
            .install(&repo, "app", VersionReq::Any)
            .app(spec())
            .build();
        let vendor = Vendor::new(reference, repo).with_diameter(0);
        let mut agents = Vec::new();
        for i in 0..12 {
            let mut b = MachineBuilder::new(format!("u{i:02}"))
                .install(&vendor.repo, "app", VersionReq::Any)
                .app(spec());
            // Three groups: vanilla (0-5), tuned (6-9), exotic (10-11).
            if (6..10).contains(&i) {
                b = b.file(File::config(
                    "/etc/app.conf",
                    IniDoc::new().key("tuning", "aggressive"),
                ));
            } else if i >= 10 {
                b = b.file(File::config(
                    "/etc/app.conf",
                    IniDoc::new().key("mode", "exotic").key("compat", "legacy"),
                ));
            }
            let mut agent = UserAgent::new(b.build());
            agent.collect("app", RunInput::new("w"));
            agents.push(agent);
        }
        let upgrade = Upgrade::new(
            Package::new("app", Version::new(2, 0, 0)).with_file(File::executable(
                "/usr/bin/app",
                "app",
                2,
            )),
            vec![ProblemSpec::new(
                "exotic-break",
                "v2 breaks exotic configurations",
                EnvPredicate::ConfigHasKey {
                    path: "/etc/app.conf".into(),
                    section: "global".into(),
                    key: "compat".into(),
                },
                ProblemEffect::CrashOnStart { app: "app".into() },
            )],
        );
        let c = vendor.classify_reference("app", &[RunInput::new("w")]);
        let fp = vendor.reference_fingerprint(&c);
        (Campaign::new(vendor, agents), fp, upgrade)
    }

    /// FrontLoading discovers the exotic problem among its first reports
    /// (all representatives test first); Balanced discovers it only when
    /// the deployment reaches the distant cluster.
    #[test]
    fn frontloading_front_loads_discovery() {
        let staged = RolloutStrategy::Staged { waves: 1 };
        let (mut fl_campaign, fp, upgrade) = campaign();
        let (_, plan) = fl_campaign.rollout_plan("app", &fp, 1, staged);
        let result = fl_campaign.drive(upgrade.clone(), &plan, ProtocolChoice::FrontLoading, 1.0);
        assert!(result.converged(12));
        let fl_profile = fl_campaign.urr.discovery_profile();
        assert_eq!(fl_profile.len(), 1);

        let (mut b_campaign, fp, upgrade) = campaign();
        let (_, plan) = b_campaign.rollout_plan("app", &fp, 1, staged);
        let result = b_campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);
        assert!(result.converged(12));
        let b_profile = b_campaign.urr.discovery_profile();
        assert_eq!(b_profile.len(), 1);

        assert!(
            fl_profile[0].1 < b_profile[0].1,
            "FrontLoading ({:.2}) must discover earlier than Balanced ({:.2})",
            fl_profile[0].1,
            b_profile[0].1
        );
        // Release summaries show the broken release healing.
        let summaries = fl_campaign.urr.release_summaries();
        assert_eq!(summaries.len(), 2);
        assert!(summaries[0].failures >= 1);
        assert_eq!(summaries[1].failures, 0);
    }
}
