//! The integrated Mirage framework (paper §3).
//!
//! This crate ties the subsystems together into the structured upgrade
//! development cycle of Figure 4: **deployment** (vendor) →
//! **user-machine testing** (user) → **reporting** (repository) → back to
//! the vendor's debugging.
//!
//! * A [`Vendor`] owns the reference machine, the parser registry (Mirage
//!   plus vendor-supplied parsers), the heuristic rules, the package
//!   repository, and clustering policy (diameter, importance filter).
//! * A [`UserAgent`] runs on each user machine: it collects traces,
//!   identifies environmental resources with the heuristic, fingerprints
//!   them, computes the diff against the vendor's reference list, tests
//!   upgrades in the sandbox, and reports outcomes.
//! * A [`Campaign`] executes a full strategy-driven deployment over a
//!   fleet in *logical* time, driving the same protocol state machines
//!   the discrete-event simulator uses, with real validation and real
//!   reports deposited in a real URR. Planning
//!   ([`Campaign::rollout_plan`]) and driving ([`Campaign::drive`]) are
//!   split: planning clusters the fleet into a strategy-shaped
//!   [`RolloutPlan`]; driving pumps a `mirage-rollout` controller over
//!   the live agents, so `Canary`/`Rolling`/`BlueGreen` rollouts — and,
//!   with [`Campaign::with_guard`], URR-closed-loop automated rollback —
//!   work on real fleets exactly as they do in simulation. The vendor
//!   side debugs failures using the deduplicated failure groups and
//!   ships corrected releases until the fleet converges.
//!
//! Fleet-wide fingerprinting fans out across OS threads with
//! `std::thread::scope` — the user-side comparison work is "efficient and
//! distributed" in the paper, and embarrassingly parallel here.
//!
//! # Examples
//!
//! A complete campaign over a two-machine fleet:
//!
//! ```
//! use mirage_core::{Campaign, ProtocolChoice, RolloutStrategy, UserAgent, Vendor};
//! use mirage_env::{
//!     ApplicationSpec, File, MachineBuilder, Package, Repository, RunInput,
//!     Upgrade, Version, VersionReq,
//! };
//!
//! let mut repo = Repository::new();
//! repo.publish(
//!     Package::new("app", Version::new(1, 0, 0))
//!         .with_file(File::executable("/usr/bin/app", "app", 1)),
//! );
//! let spec = || ApplicationSpec::new("app", "app", "/usr/bin/app");
//! let reference = MachineBuilder::new("ref")
//!     .install(&repo, "app", VersionReq::Any)
//!     .app(spec())
//!     .build();
//! let vendor = Vendor::new(reference, repo);
//!
//! let mut agents = Vec::new();
//! for i in 0..2 {
//!     let mut agent = UserAgent::new(
//!         MachineBuilder::new(format!("u{i}"))
//!             .install(&vendor.repo, "app", VersionReq::Any)
//!             .app(spec())
//!             .build(),
//!     );
//!     agent.collect("app", RunInput::new("workload"));
//!     agents.push(agent);
//! }
//!
//! let mut campaign = Campaign::new(vendor, agents);
//! let classification = campaign
//!     .vendor
//!     .classify_reference("app", &[RunInput::new("workload")]);
//! let reference_fp = campaign.vendor.reference_fingerprint(&classification);
//! let (_clustering, plan) = campaign.rollout_plan(
//!     "app",
//!     &reference_fp,
//!     1,
//!     RolloutStrategy::Staged { waves: 1 },
//! );
//!
//! let upgrade = Upgrade::new(
//!     Package::new("app", Version::new(2, 0, 0))
//!         .with_file(File::executable("/usr/bin/app", "app", 2)),
//!     vec![],
//! );
//! let result = campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);
//! assert!(result.converged(2));
//! assert!(result.rollback.is_none());
//! assert_eq!(campaign.urr.stats().failures, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod agent;
pub mod campaign;
pub mod vendor;

pub use agent::UserAgent;
#[allow(deprecated)]
pub use campaign::ProtocolKind;
pub use campaign::{choice_for_urgency, Campaign, CampaignResult};
pub use mirage_deploy::ProtocolChoice;
pub use mirage_rollout::{
    GuardSettings, RollbackInfo, RolloutPlan, RolloutStatus, RolloutStatusReason, RolloutStrategy,
};
pub use vendor::{classify_machine, fingerprint_machine, Vendor};
