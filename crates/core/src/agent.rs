//! The per-machine user agent.

use std::collections::BTreeMap;

use mirage_cluster::MachineInfo;
use mirage_env::{Machine, Repository, RunInput, Upgrade};
use mirage_fingerprint::fnv1a;
use mirage_fingerprint::MachineFingerprint;
use mirage_heuristic::Classification;
use mirage_report::ReportImage;
use mirage_testing::{RecordedRun, ValidationReport, Validator};
use mirage_trace::RunId;

use crate::vendor::{classify_machine, fingerprint_machine, Vendor};

/// The Mirage daemon running on one user machine.
///
/// Owns the machine model and the machine's trace library; performs the
/// user-side half of every subsystem: trace collection, resource
/// identification, fingerprint comparison, sandbox validation, and
/// (after a pass) integration of the upgrade into the live system.
#[derive(Debug, Clone)]
pub struct UserAgent {
    /// The live machine.
    pub machine: Machine,
    /// Recorded runs (the trace library), all applications mixed.
    pub runs: Vec<RecordedRun>,
    next_run: u64,
    /// Environment digest per application at last trace collection —
    /// the dependence subsystem's trigger state (paper §3.3: tracing is
    /// re-started only "when necessary").
    trace_env_digest: BTreeMap<String, u64>,
}

impl UserAgent {
    /// Creates an agent for a machine.
    pub fn new(machine: Machine) -> Self {
        UserAgent {
            machine,
            runs: Vec::new(),
            next_run: 0,
            trace_env_digest: BTreeMap::new(),
        }
    }

    /// Digest of the environment an application currently depends on:
    /// the rendered contents of its executable, declared reads, and
    /// package manifest files.
    pub fn environment_digest(&self, app: &str) -> u64 {
        let Some(spec) = self.machine.apps.get(app) else {
            return 0;
        };
        // Deduplicate: XOR-combining would cancel a path listed both in
        // the spec and the package manifest.
        let mut paths: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        paths.insert(spec.exe.clone());
        paths.extend(spec.init_reads.iter().map(|r| r.path.clone()));
        paths.extend(spec.late_reads.iter().map(|r| r.path.clone()));
        paths.extend(
            self.machine
                .pkgs
                .manifest(&spec.package)
                .unwrap_or_default(),
        );
        let mut digest = 0u64;
        for path in paths {
            if let Some(file) = self.machine.fs.get(&path) {
                digest ^= fnv1a(path.as_bytes()) ^ fnv1a(&file.content.render());
            }
        }
        digest
    }

    /// Returns `true` if `app`'s environment changed since its traces
    /// were recorded (or it has never been traced): the dependence
    /// subsystem's trace-collection trigger.
    pub fn needs_retrace(&self, app: &str) -> bool {
        self.trace_env_digest.get(app).copied() != Some(self.environment_digest(app))
    }

    /// Runs `app` on `input` and records the trace.
    ///
    /// Returns `false` if the application is not installed.
    pub fn collect(&mut self, app: &str, input: RunInput) -> bool {
        let run = RunId(self.next_run);
        match self.machine.try_run_app(app, &input, run) {
            Some(trace) => {
                self.next_run += 1;
                self.runs.push(RecordedRun::new(input, trace));
                let digest = self.environment_digest(app);
                self.trace_env_digest.insert(app.to_string(), digest);
                true
            }
            None => false,
        }
    }

    /// Drops an application's recorded runs (stale after an approved
    /// I/O-changing upgrade); the next [`UserAgent::collect`] rebuilds
    /// the library.
    pub fn invalidate_runs(&mut self, app: &str) -> usize {
        let before = self.runs.len();
        self.runs.retain(|r| r.app() != app);
        self.trace_env_digest.remove(app);
        before - self.runs.len()
    }

    /// Recorded runs of one application.
    pub fn runs_of(&self, app: &str) -> Vec<RecordedRun> {
        self.runs
            .iter()
            .filter(|r| r.app() == app)
            .cloned()
            .collect()
    }

    /// Identifies environmental resources of `app` from this machine's
    /// own traces, under the vendor's heuristic configuration and rules.
    pub fn classify(&self, app: &str, vendor: &Vendor) -> Classification {
        let traces: Vec<mirage_trace::Trace> = self
            .runs
            .iter()
            .filter(|r| r.app() == app)
            .map(|r| r.trace.clone())
            .collect();
        classify_machine(
            &self.machine,
            app,
            &traces,
            &vendor.heuristic,
            &vendor.rules,
        )
    }

    /// Fingerprints this machine and produces its clustering input (the
    /// diff against the vendor's reference list plus the overlapping
    /// application set).
    pub fn clustering_input(
        &self,
        app: &str,
        vendor: &Vendor,
        reference: &MachineFingerprint,
    ) -> MachineInfo {
        let classification = self.classify(app, vendor);
        let fp = fingerprint_machine(
            &self.machine,
            &classification,
            &vendor.registry,
            &self.machine.id,
        );
        let diff = fp.diff(reference);
        let mut info = MachineInfo::new(diff);
        // Applications overlapping the upgraded application's resources:
        // those affected by a hypothetical change to its manifest.
        if let Some(spec) = self.machine.apps.get(app) {
            if let Some(manifest) = self.machine.pkgs.manifest(&spec.package) {
                let paths: std::collections::BTreeSet<String> = manifest.into_iter().collect();
                for affected in self.machine.apps_affected_by(&paths) {
                    if affected != app {
                        info.overlapping_apps.insert(affected);
                    }
                }
            }
        }
        info
    }

    /// Tests an upgrade in the sandbox against this machine's traces.
    pub fn test_upgrade(&self, repo: &Repository, upgrade: &Upgrade) -> ValidationReport {
        Validator::new().validate(&self.machine, repo, upgrade, &self.runs)
    }

    /// Integrates an upgrade into the live machine (after a pass).
    pub fn integrate(&mut self, repo: &Repository, upgrade: &Upgrade) -> bool {
        self.machine
            .pkgs
            .apply_package(&mut self.machine.fs, repo, &upgrade.package)
            .is_ok()
    }

    /// Builds the report image for a failed validation.
    pub fn report_image(&self, validation: &ValidationReport) -> ReportImage {
        let digest: String = format!("fs:{}files", self.machine.fs.len());
        let env_context = validation
            .changed_paths
            .iter()
            .map(|p| format!("changed:{p}"))
            .collect();
        let replayed_inputs = self.runs.iter().map(|r| r.input.id.clone()).collect();
        let observed_outputs = validation
            .verdicts
            .iter()
            .filter_map(|v| v.result.as_ref().err().map(|e| format!("{}: {e}", v.app)))
            .collect();
        ReportImage::new(digest, env_context, replayed_inputs, observed_outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_env::{ApplicationSpec, File, MachineBuilder, Package, Version, VersionReq};

    fn world() -> (Repository, Machine) {
        let mut repo = Repository::new();
        repo.publish(
            Package::new("app", Version::new(1, 0, 0)).with_file(File::executable(
                "/usr/bin/app",
                "app",
                1,
            )),
        );
        let machine = MachineBuilder::new("u1")
            .install(&repo, "app", VersionReq::Any)
            .app(ApplicationSpec::new("app", "app", "/usr/bin/app"))
            .build();
        (repo, machine)
    }

    #[test]
    fn collect_records_runs() {
        let (_, machine) = world();
        let mut agent = UserAgent::new(machine);
        assert!(agent.collect("app", RunInput::new("w1")));
        assert!(agent.collect("app", RunInput::new("w2")));
        assert!(!agent.collect("ghost", RunInput::new("w3")));
        assert_eq!(agent.runs.len(), 2);
        assert_eq!(agent.runs_of("app").len(), 2);
        assert_eq!(agent.runs[0].trace.run, RunId(0));
        assert_eq!(agent.runs[1].trace.run, RunId(1));
    }

    #[test]
    fn clustering_input_against_identical_vendor_is_empty() {
        let (repo, reference) = world();
        let (_, user) = world();
        let vendor = Vendor::new(reference, repo);
        let c = vendor.classify_reference("app", &[RunInput::new("a")]);
        let ref_fp = vendor.reference_fingerprint(&c);
        let mut agent = UserAgent::new(user);
        agent.collect("app", RunInput::new("a"));
        let info = agent.clustering_input("app", &vendor, &ref_fp);
        assert!(info.diff.is_empty());
        assert!(info.overlapping_apps.is_empty());
    }

    #[test]
    fn test_and_integrate_upgrade() {
        let (mut repo, machine) = world();
        let v2 = Package::new("app", Version::new(2, 0, 0)).with_file(File::executable(
            "/usr/bin/app",
            "app",
            2,
        ));
        repo.publish(v2.clone());
        let upgrade = Upgrade::new(v2, vec![]);
        let mut agent = UserAgent::new(machine);
        agent.collect("app", RunInput::new("w"));
        let report = agent.test_upgrade(&repo, &upgrade);
        assert!(report.passed());
        assert!(agent.integrate(&repo, &upgrade));
        assert_eq!(
            agent.machine.pkgs.installed_version("app"),
            Some(Version::new(2, 0, 0))
        );
    }

    #[test]
    fn report_image_includes_failure_context() {
        use mirage_env::{EnvPredicate, ProblemEffect, ProblemSpec};
        let (mut repo, machine) = world();
        let v2 = Package::new("app", Version::new(2, 0, 0)).with_file(File::executable(
            "/usr/bin/app",
            "app",
            2,
        ));
        repo.publish(v2.clone());
        let upgrade = Upgrade::new(
            v2,
            vec![ProblemSpec::new(
                "p",
                "crash",
                EnvPredicate::Always,
                ProblemEffect::CrashOnStart { app: "app".into() },
            )],
        );
        let mut agent = UserAgent::new(machine);
        agent.collect("app", RunInput::new("w"));
        let validation = agent.test_upgrade(&repo, &upgrade);
        assert!(!validation.passed());
        let image = agent.report_image(&validation);
        assert!(!image.observed_outputs.is_empty());
        assert!(image.env_context.iter().any(|c| c.contains("/usr/bin/app")));
    }
}

#[cfg(test)]
mod retrace_tests {
    use super::*;
    use mirage_env::{ApplicationSpec, File, MachineBuilder, Package, Version, VersionReq};

    fn world() -> (Repository, Machine) {
        let mut repo = Repository::new();
        repo.publish(
            Package::new("app", Version::new(1, 0, 0)).with_file(File::executable(
                "/usr/bin/app",
                "app",
                1,
            )),
        );
        repo.publish(
            Package::new("app", Version::new(2, 0, 0)).with_file(File::executable(
                "/usr/bin/app",
                "app",
                2,
            )),
        );
        let machine = MachineBuilder::new("m")
            .install(&repo, "app", VersionReq::Exact(Version::new(1, 0, 0)))
            .app(ApplicationSpec::new("app", "app", "/usr/bin/app"))
            .build();
        (repo, machine)
    }

    #[test]
    fn retrace_triggers_on_environment_change() {
        let (repo, machine) = world();
        let mut agent = UserAgent::new(machine);
        // Never traced: needs collection.
        assert!(agent.needs_retrace("app"));
        agent.collect("app", RunInput::new("w"));
        assert!(!agent.needs_retrace("app"), "fresh traces are current");
        // Integrating an upgrade changes the executable: retrace needed.
        let upgrade = Upgrade::new(
            repo.get("app", Version::new(2, 0, 0)).unwrap().clone(),
            vec![],
        );
        assert!(agent.integrate(&repo, &upgrade));
        assert!(agent.needs_retrace("app"));
        // Collecting again re-arms the trigger.
        agent.collect("app", RunInput::new("w2"));
        assert!(!agent.needs_retrace("app"));
    }

    #[test]
    fn invalidate_runs_clears_library_and_trigger() {
        let (_, machine) = world();
        let mut agent = UserAgent::new(machine);
        agent.collect("app", RunInput::new("w1"));
        agent.collect("app", RunInput::new("w2"));
        assert_eq!(agent.invalidate_runs("app"), 2);
        assert!(agent.runs.is_empty());
        assert!(agent.needs_retrace("app"));
        assert_eq!(agent.invalidate_runs("app"), 0);
    }

    #[test]
    fn unknown_app_digest_is_stable() {
        let (_, machine) = world();
        let agent = UserAgent::new(machine);
        assert_eq!(agent.environment_digest("ghost"), 0);
        assert!(agent.needs_retrace("ghost"));
    }
}
