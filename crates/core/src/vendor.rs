//! The vendor side: reference environment, parsers, rules, repository.

use std::collections::BTreeSet;

use mirage_cluster::{ClusterEngine, Clustering, MachineInfo};
use mirage_env::{Machine, Repository, RunInput, Upgrade};
use mirage_fingerprint::{HashValue, ImportanceFilter, Item, MachineFingerprint, ParserRegistry};
use mirage_heuristic::{identify, Classification, HeuristicConfig, RuleSet};
use mirage_telemetry::Telemetry;
use mirage_trace::{RunId, Trace};

/// The vendor: reference machine, fingerprinting policy, repository.
pub struct Vendor {
    /// The vendor's reference machine for the application being shipped.
    pub reference: Machine,
    /// Parser registry (Mirage-supplied plus vendor-supplied parsers).
    pub registry: ParserRegistry,
    /// Include/exclude rules for the resource-identification heuristic.
    pub rules: RuleSet,
    /// Heuristic configuration (env types, default excludes).
    pub heuristic: HeuristicConfig,
    /// The package repository upgrades ship from.
    pub repo: Repository,
    /// Phase-2 cluster diameter.
    pub diameter: usize,
    /// Item-importance filter applied before clustering.
    pub importance: ImportanceFilter,
    /// Telemetry handle threaded into clustering (no-op by default).
    pub telemetry: Telemetry,
}

impl Vendor {
    /// Creates a vendor around a reference machine and repository.
    pub fn new(reference: Machine, repo: Repository) -> Self {
        Vendor {
            reference,
            registry: mirage_fingerprint::parsers::mirage_default_registry(),
            rules: RuleSet::new(),
            heuristic: HeuristicConfig::paper_default(),
            repo,
            diameter: 3,
            importance: ImportanceFilter::new(),
            telemetry: Telemetry::noop(),
        }
    }

    /// Replaces the parser registry (e.g. to add vendor parsers).
    pub fn with_registry(mut self, registry: ParserRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Sets the heuristic rules.
    pub fn with_rules(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// Sets the clustering diameter.
    pub fn with_diameter(mut self, diameter: usize) -> Self {
        self.diameter = diameter;
        self
    }

    /// Sets the importance filter.
    pub fn with_importance(mut self, importance: ImportanceFilter) -> Self {
        self.importance = importance;
        self
    }

    /// Attaches a telemetry handle; clustering runs are instrumented
    /// with it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Traces `app` on the reference machine over `inputs` and runs the
    /// identification heuristic on the resulting traces.
    pub fn classify_reference(&self, app: &str, inputs: &[RunInput]) -> Classification {
        let traces: Vec<Trace> = inputs
            .iter()
            .enumerate()
            .map(|(i, input)| self.reference.run_app(app, input, RunId(i as u64)))
            .collect();
        classify_machine(&self.reference, app, &traces, &self.heuristic, &self.rules)
    }

    /// Fingerprints the reference machine's environmental resources —
    /// the item list sent to every user machine for comparison.
    pub fn reference_fingerprint(&self, classification: &Classification) -> MachineFingerprint {
        fingerprint_machine(
            &self.reference,
            classification,
            &self.registry,
            "vendor-reference",
        )
    }

    /// Clusters a fleet given each machine's clustering input.
    pub fn cluster(&self, machines: &[MachineInfo]) -> Clustering {
        ClusterEngine::new(self.diameter)
            .with_importance(self.importance.clone())
            .with_telemetry(self.telemetry.clone())
            .cluster(machines)
    }

    /// Identifies which problems an upgrade exhibits on `machine`.
    ///
    /// Models the vendor reproducing a failure from a report image: the
    /// upgrade is re-applied to a sandboxed copy of the failing
    /// environment (the image carries that state in the paper) and the
    /// problems are pinpointed against the *post-upgrade* machine —
    /// triggers like "PHP linked against the new library" only hold once
    /// the upgrade is in place.
    pub fn diagnose(&self, upgrade: &Upgrade, machine: &Machine) -> Vec<String> {
        let mut sandbox = mirage_testing::Sandbox::boot(machine);
        let _ = sandbox.apply_upgrade(&self.repo, upgrade);
        upgrade
            .active_problems(&sandbox.machine)
            .into_iter()
            .map(|p| p.id.0.clone())
            .collect()
    }
}

/// Runs the identification heuristic for `app` on any machine.
pub fn classify_machine(
    machine: &Machine,
    app: &str,
    traces: &[Trace],
    config: &HeuristicConfig,
    rules: &RuleSet,
) -> Classification {
    let manifest: BTreeSet<String> = machine
        .apps
        .get(app)
        .and_then(|spec| machine.pkgs.manifest(&spec.package))
        .map(|v| v.into_iter().collect())
        .unwrap_or_default();
    let kind_of = |path: &str| machine.fs.get(path).map(|f| f.kind);
    identify(traces, &manifest, &kind_of, config, rules)
}

/// Fingerprints a machine's identified environmental resources.
///
/// Environment variables read by the application become parsed items of
/// the form `env.NAME.VALUE_HASH`.
pub fn fingerprint_machine(
    machine: &Machine,
    classification: &Classification,
    registry: &ParserRegistry,
    label: &str,
) -> MachineFingerprint {
    let resources = machine.fs.resources(classification.env_resources.iter());
    let mut fp = MachineFingerprint::of_resources(label, &resources, registry);
    for var in &classification.env_vars {
        if let Some(value) = machine.env.get(var) {
            fp.parsed.insert(Item::new([
                "env",
                var.as_str(),
                &HashValue::of_str(value).short(),
            ]));
        }
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_env::{ApplicationSpec, File, IniDoc, MachineBuilder, Package, Version, VersionReq};

    fn world() -> (Repository, Machine) {
        let mut repo = Repository::new();
        repo.publish(
            Package::new("app", Version::new(1, 0, 0))
                .with_file(File::executable("/usr/bin/app", "app", 1))
                .with_file(File::library("/usr/lib/libapp.so", "libapp", "1.0", 1)),
        );
        let machine = MachineBuilder::new("ref")
            .install(&repo, "app", VersionReq::Any)
            .file(File::config(
                "/etc/app.conf",
                IniDoc::new().section("main").key("mode", "fast"),
            ))
            .env_var("APP_HOME", "/usr/share/app")
            .app(
                ApplicationSpec::new("app", "app", "/usr/bin/app")
                    .reads("/usr/lib/libapp.so")
                    .reads("/etc/app.conf")
                    .env("APP_HOME"),
            )
            .build();
        (repo, machine)
    }

    #[test]
    fn vendor_classifies_and_fingerprints_reference() {
        let (repo, reference) = world();
        let vendor = Vendor::new(reference, repo);
        let classification =
            vendor.classify_reference("app", &[RunInput::new("a"), RunInput::new("b")]);
        assert!(classification.is_env("/usr/bin/app"));
        assert!(classification.is_env("/etc/app.conf"));
        assert!(classification.env_vars.contains("APP_HOME"));
        let fp = vendor.reference_fingerprint(&classification);
        assert!(!fp.is_empty());
        // Env var item present.
        assert!(fp.parsed.iter().any(|i| i.resource() == "env"));
    }

    #[test]
    fn identical_machine_diffs_empty() {
        let (repo, reference) = world();
        let (_, user) = world();
        let vendor = Vendor::new(reference, repo);
        let c = vendor.classify_reference("app", &[RunInput::new("a")]);
        let ref_fp = vendor.reference_fingerprint(&c);
        let traces = vec![user.run_app("app", &RunInput::new("a"), RunId(0))];
        let uc = classify_machine(&user, "app", &traces, &vendor.heuristic, &vendor.rules);
        let ufp = fingerprint_machine(&user, &uc, &vendor.registry, &user.id);
        assert!(ufp.diff(&ref_fp).is_empty());
    }

    #[test]
    fn config_difference_shows_in_diff() {
        let (repo, reference) = world();
        let (_, mut user) = world();
        user.fs.insert(File::config(
            "/etc/app.conf",
            IniDoc::new().section("main").key("mode", "slow"),
        ));
        let vendor = Vendor::new(reference, repo);
        let c = vendor.classify_reference("app", &[RunInput::new("a")]);
        let ref_fp = vendor.reference_fingerprint(&c);
        let traces = vec![user.run_app("app", &RunInput::new("a"), RunId(0))];
        let uc = classify_machine(&user, "app", &traces, &vendor.heuristic, &vendor.rules);
        let ufp = fingerprint_machine(&user, &uc, &vendor.registry, &user.id);
        let diff = ufp.diff(&ref_fp);
        // One item each side (differing value hash for mode).
        assert_eq!(diff.parsed.len(), 2);
    }

    #[test]
    fn diagnose_resolves_problem_ids() {
        use mirage_env::{EnvPredicate, ProblemEffect, ProblemSpec};
        let (repo, reference) = world();
        let (_, user) = world();
        let vendor = Vendor::new(reference, repo);
        let upgrade = Upgrade::new(
            Package::new("app", Version::new(2, 0, 0)),
            vec![ProblemSpec::new(
                "p1",
                "always breaks",
                EnvPredicate::Always,
                ProblemEffect::CrashOnStart { app: "app".into() },
            )],
        );
        assert_eq!(vendor.diagnose(&upgrade, &user), vec!["p1"]);
    }
}
