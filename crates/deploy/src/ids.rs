//! Dense interned identifiers for the deployment/simulation data plane.
//!
//! The paper's evaluation runs deployment protocols over 100 000 (and,
//! for us, 1 000 000) machines. Keying protocol state and simulator
//! events by machine *names* means one `String` allocation per machine
//! per event and `O(log n)` string-comparing map lookups on every state
//! transition. This module provides the interned alternative:
//!
//! * [`MachineId`] — a dense `u32` index into a [`MachineTable`];
//! * [`ProblemId`] — a dense `u16` index into a [`ProblemTable`];
//! * [`MachineSet`] / [`ProblemSet`] — flat bitsets over those ids.
//!
//! Names exist only at the boundaries (plan construction, JSON/snapshot
//! rendering, flight events); the hot loops move `Copy` ids and index
//! flat `Vec`s. The string-keyed implementations are retained under
//! [`crate::reference`] so equivalence tests can prove the interned data
//! plane bit-identical.

use std::collections::HashMap;
use std::fmt;

/// A dense machine identifier: an index into a [`MachineTable`].
///
/// Ids are assigned in interning order, so a table built by walking a
/// plan's clusters front to back gives ids that follow plan order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MachineId(pub u32);

impl MachineId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m#{}", self.0)
    }
}

/// A dense problem identifier: an index into a [`ProblemTable`].
///
/// `u16` bounds the table at 65 536 distinct problems — the paper's
/// scenarios use a handful, and a real vendor's open-problem set is
/// orders of magnitude below the limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProblemId(pub u16);

impl ProblemId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProblemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p#{}", self.0)
    }
}

/// Bidirectional machine name ↔ [`MachineId`] interner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl MachineTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its (possibly pre-existing) id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` machines are interned.
    pub fn intern(&mut self, name: &str) -> MachineId {
        if let Some(&i) = self.index.get(name) {
            return MachineId(i);
        }
        let i = u32::try_from(self.names.len()).expect("machine table overflow");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        MachineId(i)
    }

    /// Looks up the id of an already-interned name.
    pub fn id(&self, name: &str) -> Option<MachineId> {
        self.index.get(name).map(|&i| MachineId(i))
    }

    /// The name behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: MachineId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned machines.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All ids in interning (dense) order.
    pub fn ids(&self) -> impl Iterator<Item = MachineId> + '_ {
        (0..self.names.len() as u32).map(MachineId)
    }

    /// All names in interning (dense) order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// Bidirectional problem name ↔ [`ProblemId`] interner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProblemTable {
    names: Vec<String>,
    index: HashMap<String, u16>,
}

impl ProblemTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its (possibly pre-existing) id.
    ///
    /// # Panics
    ///
    /// Panics if more than 65 536 problems are interned.
    pub fn intern(&mut self, name: &str) -> ProblemId {
        if let Some(&i) = self.index.get(name) {
            return ProblemId(i);
        }
        let i = u16::try_from(self.names.len()).expect("problem table overflow (max 65536)");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        ProblemId(i)
    }

    /// Looks up the id of an already-interned name.
    pub fn id(&self, name: &str) -> Option<ProblemId> {
        self.index.get(name).map(|&i| ProblemId(i))
    }

    /// The name behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: ProblemId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned problems.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names in interning (dense) order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// A flat bitset over dense indices (the shared machinery behind
/// [`MachineSet`] and [`ProblemSet`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    fn insert(&mut self, bit: usize) -> bool {
        let word = bit / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (bit % 64);
        if self.words[word] & mask != 0 {
            return false;
        }
        self.words[word] |= mask;
        self.len += 1;
        true
    }

    fn remove(&mut self, bit: usize) -> bool {
        let word = bit / 64;
        if word >= self.words.len() {
            return false;
        }
        let mask = 1u64 << (bit % 64);
        if self.words[word] & mask == 0 {
            return false;
        }
        self.words[word] &= !mask;
        self.len -= 1;
        true
    }

    #[inline]
    fn contains(&self, bit: usize) -> bool {
        self.words
            .get(bit / 64)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }
}

/// A set of [`MachineId`]s as a flat bitset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineSet(DenseBitSet);

impl MachineSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `id`; returns `true` if it was newly added.
    pub fn insert(&mut self, id: MachineId) -> bool {
        self.0.insert(id.index())
    }

    /// Removes `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: MachineId) -> bool {
        self.0.remove(id.index())
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: MachineId) -> bool {
        self.0.contains(id.index())
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.len
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.len == 0
    }
}

/// A set of [`ProblemId`]s as a flat bitset — the cumulative fixed-set
/// handed to [`crate::Protocol::on_release`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProblemSet(DenseBitSet);

impl ProblemSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `id`; returns `true` if it was newly added.
    pub fn insert(&mut self, id: ProblemId) -> bool {
        self.0.insert(id.index())
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: ProblemId) -> bool {
        self.0.contains(id.index())
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.len
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_table_round_trips() {
        let mut t = MachineTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_eq!(a, MachineId(0));
        assert_eq!(b, MachineId(1));
        // Re-interning is idempotent.
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "alpha");
        assert_eq!(t.id("beta"), Some(b));
        assert_eq!(t.id("gamma"), None);
        assert_eq!(t.ids().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(t.names(), &["alpha".to_string(), "beta".to_string()]);
    }

    #[test]
    fn problem_table_round_trips() {
        let mut t = ProblemTable::new();
        let p = t.intern("prevalent");
        assert_eq!(p, ProblemId(0));
        assert_eq!(t.intern("prevalent"), p);
        assert_eq!(t.name(p), "prevalent");
        assert_eq!(t.id("rare"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bitsets_insert_and_query() {
        let mut m = MachineSet::new();
        assert!(m.is_empty());
        assert!(m.insert(MachineId(3)));
        assert!(!m.insert(MachineId(3)), "double insert reports false");
        assert!(m.insert(MachineId(200)));
        assert!(m.contains(MachineId(3)));
        assert!(m.contains(MachineId(200)));
        assert!(!m.contains(MachineId(64)));
        assert!(!m.contains(MachineId(100_000)), "beyond allocated words");
        assert_eq!(m.len(), 2);
        assert!(m.remove(MachineId(3)));
        assert!(!m.remove(MachineId(3)), "double remove reports false");
        assert!(
            !m.remove(MachineId(100_000)),
            "remove beyond words is a no-op"
        );
        assert!(!m.contains(MachineId(3)));
        assert_eq!(m.len(), 1);
        assert!(m.insert(MachineId(3)), "re-insert after remove");

        let mut p = ProblemSet::new();
        assert!(p.insert(ProblemId(0)));
        assert!(p.contains(ProblemId(0)));
        assert!(!p.contains(ProblemId(1)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(MachineId(7).to_string(), "m#7");
        assert_eq!(ProblemId(2).to_string(), "p#2");
    }
}
