//! Unified protocol selection and enum dispatch.
//!
//! Before this module, every driver (the simulator runner, the
//! end-to-end campaign, the repro harness, the scenario suite) carried
//! its own `match` over protocol names producing `Box<dyn Protocol>`
//! trait objects — triplicated construction logic that each new
//! protocol concern (telemetry, fault hardening) had to be threaded
//! through once per call site. [`ProtocolChoice`] centralises the
//! *selection* (a tiny `Copy` value, parseable from a name) and
//! [`AnyProtocol`] the *dispatch* (a concrete enum, no heap
//! allocation, no vtable), so drivers configure protocols through one
//! typed surface.

use crate::plan::DeployPlan;
use crate::protocol::{Command, Protocol, Release, SimTime, TestReport};
use crate::protocols::{Balanced, FrontLoading, NoStaging};
use crate::ProblemSet;
use mirage_telemetry::Telemetry;

/// Deterministic Fisher–Yates shuffle driven by a xorshift64 stream —
/// the RandomStaging baseline's cluster-order generator. Kept
/// dependency-free (the workspace builds offline; there is no external
/// `rand`).
pub fn seeded_shuffle(order: &mut [usize], seed: u64) {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..order.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
}

/// A protocol *selection*: which deployment protocol to run, plus any
/// selection-time parameters (the RandomStaging shuffle seed).
///
/// This is the typed replacement for the string-keyed `match` arms that
/// drivers used to carry; [`ProtocolChoice::build`] turns a choice into
/// a ready [`AnyProtocol`] over a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolChoice {
    /// The NoStaging baseline (everyone a representative).
    NoStaging,
    /// Balanced staging in ascending vendor-distance order.
    Balanced,
    /// FrontLoading: global rep phase, then descending distance.
    FrontLoading,
    /// Balanced staging over a seeded random cluster order.
    RandomStaging {
        /// Shuffle seed (xorshift64 Fisher–Yates).
        seed: u64,
    },
}

impl ProtocolChoice {
    /// The canonical protocol name (matches [`Protocol::name`]).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolChoice::NoStaging => "NoStaging",
            ProtocolChoice::Balanced => "Balanced",
            ProtocolChoice::FrontLoading => "FrontLoading",
            ProtocolChoice::RandomStaging { .. } => "RandomStaging",
        }
    }

    /// Parses a canonical protocol name (RandomStaging gets seed 0; use
    /// the enum directly for an explicit seed).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "NoStaging" => Some(ProtocolChoice::NoStaging),
            "Balanced" => Some(ProtocolChoice::Balanced),
            "FrontLoading" => Some(ProtocolChoice::FrontLoading),
            "RandomStaging" => Some(ProtocolChoice::RandomStaging { seed: 0 }),
            _ => None,
        }
    }

    /// Builds the chosen protocol over `plan` at `threshold`
    /// (NoStaging ignores the threshold).
    pub fn build(self, plan: DeployPlan, threshold: f64) -> AnyProtocol {
        match self {
            ProtocolChoice::NoStaging => AnyProtocol::NoStaging(NoStaging::new(plan)),
            ProtocolChoice::Balanced => AnyProtocol::Balanced(Balanced::new(plan, threshold)),
            ProtocolChoice::FrontLoading => {
                AnyProtocol::FrontLoading(FrontLoading::new(plan, threshold))
            }
            ProtocolChoice::RandomStaging { seed } => {
                let mut order: Vec<usize> = (0..plan.clusters.len()).collect();
                seeded_shuffle(&mut order, seed);
                AnyProtocol::Balanced(Balanced::with_order(plan, order, threshold))
            }
        }
    }
}

/// Enum dispatch over the concrete interned-plane protocols: one value
/// type every driver can hold without boxing, carrying the
/// cross-cutting configuration hooks (telemetry, fault hardening) in a
/// single place.
#[derive(Debug, Clone)]
pub enum AnyProtocol {
    /// See [`NoStaging`].
    NoStaging(NoStaging),
    /// See [`Balanced`] (also the RandomStaging baseline).
    Balanced(Balanced),
    /// See [`FrontLoading`].
    FrontLoading(FrontLoading),
}

impl AnyProtocol {
    /// Attaches a telemetry handle (notification counters, wave events).
    pub fn with_telemetry(self, telemetry: Telemetry) -> Self {
        match self {
            AnyProtocol::NoStaging(p) => AnyProtocol::NoStaging(p.with_telemetry(telemetry)),
            AnyProtocol::Balanced(p) => AnyProtocol::Balanced(p.with_telemetry(telemetry)),
            AnyProtocol::FrontLoading(p) => AnyProtocol::FrontLoading(p.with_telemetry(telemetry)),
        }
    }

    /// Enables timeout-based stage advancement for unreliable fleets.
    pub fn with_rep_timeout(self, timeout: SimTime) -> Self {
        match self {
            AnyProtocol::NoStaging(p) => AnyProtocol::NoStaging(p.with_rep_timeout(timeout)),
            AnyProtocol::Balanced(p) => AnyProtocol::Balanced(p.with_rep_timeout(timeout)),
            AnyProtocol::FrontLoading(p) => AnyProtocol::FrontLoading(p.with_rep_timeout(timeout)),
        }
    }
}

impl From<NoStaging> for AnyProtocol {
    fn from(p: NoStaging) -> Self {
        AnyProtocol::NoStaging(p)
    }
}

impl From<Balanced> for AnyProtocol {
    fn from(p: Balanced) -> Self {
        AnyProtocol::Balanced(p)
    }
}

impl From<FrontLoading> for AnyProtocol {
    fn from(p: FrontLoading) -> Self {
        AnyProtocol::FrontLoading(p)
    }
}

impl Protocol for AnyProtocol {
    fn name(&self) -> &'static str {
        match self {
            AnyProtocol::NoStaging(p) => p.name(),
            AnyProtocol::Balanced(p) => p.name(),
            AnyProtocol::FrontLoading(p) => p.name(),
        }
    }

    fn start(&mut self) -> Vec<Command> {
        match self {
            AnyProtocol::NoStaging(p) => p.start(),
            AnyProtocol::Balanced(p) => p.start(),
            AnyProtocol::FrontLoading(p) => p.start(),
        }
    }

    fn on_report(&mut self, report: &TestReport) -> Vec<Command> {
        match self {
            AnyProtocol::NoStaging(p) => p.on_report(report),
            AnyProtocol::Balanced(p) => p.on_report(report),
            AnyProtocol::FrontLoading(p) => p.on_report(report),
        }
    }

    fn absorb_passes(&mut self, reports: &[(crate::MachineId, Release)]) -> usize {
        match self {
            AnyProtocol::NoStaging(p) => p.absorb_passes(reports),
            AnyProtocol::Balanced(p) => p.absorb_passes(reports),
            AnyProtocol::FrontLoading(p) => p.absorb_passes(reports),
        }
    }

    fn absorb_pass_batch(&mut self, reports: &[(crate::MachineId, Release)]) -> bool {
        match self {
            AnyProtocol::NoStaging(p) => p.absorb_pass_batch(reports),
            AnyProtocol::Balanced(p) => p.absorb_pass_batch(reports),
            AnyProtocol::FrontLoading(p) => p.absorb_pass_batch(reports),
        }
    }

    fn on_release(&mut self, release: Release, fixed: &ProblemSet) -> Vec<Command> {
        match self {
            AnyProtocol::NoStaging(p) => p.on_release(release, fixed),
            AnyProtocol::Balanced(p) => p.on_release(release, fixed),
            AnyProtocol::FrontLoading(p) => p.on_release(release, fixed),
        }
    }

    fn on_tick(&mut self, now: SimTime) -> Vec<Command> {
        match self {
            AnyProtocol::NoStaging(p) => p.on_tick(now),
            AnyProtocol::Balanced(p) => p.on_tick(now),
            AnyProtocol::FrontLoading(p) => p.on_tick(now),
        }
    }

    fn rep_timeouts(&self) -> u64 {
        match self {
            AnyProtocol::NoStaging(p) => p.rep_timeouts(),
            AnyProtocol::Balanced(p) => p.rep_timeouts(),
            AnyProtocol::FrontLoading(p) => p.rep_timeouts(),
        }
    }

    fn wants_ticks(&self) -> bool {
        match self {
            AnyProtocol::NoStaging(p) => p.wants_ticks(),
            AnyProtocol::Balanced(p) => p.wants_ticks(),
            AnyProtocol::FrontLoading(p) => p.wants_ticks(),
        }
    }

    fn done(&self) -> bool {
        match self {
            AnyProtocol::NoStaging(p) => p.done(),
            AnyProtocol::Balanced(p) => p.done(),
            AnyProtocol::FrontLoading(p) => p.done(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> DeployPlan {
        DeployPlan::from_named([(["a", "b"], 1, 1.0), (["c", "d"], 1, 2.0)])
    }

    #[test]
    fn choice_round_trips_names() {
        for name in ["NoStaging", "Balanced", "FrontLoading", "RandomStaging"] {
            let choice = ProtocolChoice::from_name(name).expect("known protocol");
            assert_eq!(choice.name(), name);
        }
        assert_eq!(ProtocolChoice::from_name("Nope"), None);
    }

    #[test]
    fn build_produces_matching_protocols() {
        let plan = tiny_plan();
        for choice in [
            ProtocolChoice::NoStaging,
            ProtocolChoice::Balanced,
            ProtocolChoice::FrontLoading,
            ProtocolChoice::RandomStaging { seed: 7 },
        ] {
            let mut p = choice.build(plan.clone(), 1.0);
            assert_eq!(p.name(), choice.name());
            assert!(!p.start().is_empty(), "{} produced no commands", p.name());
            assert!(!p.done());
        }
    }

    #[test]
    fn seeded_shuffle_is_deterministic() {
        let mut a: Vec<usize> = (0..16).collect();
        let mut b: Vec<usize> = (0..16).collect();
        seeded_shuffle(&mut a, 42);
        seeded_shuffle(&mut b, 42);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "still a permutation");
    }

    #[test]
    fn any_protocol_dispatches_like_the_concrete_type() {
        let plan = tiny_plan();
        let mut direct = Balanced::new(plan.clone(), 1.0);
        let mut wrapped: AnyProtocol = Balanced::new(plan, 1.0).into();
        assert_eq!(direct.start(), wrapped.start());
        assert_eq!(direct.done(), wrapped.done());
        assert_eq!(wrapped.rep_timeouts(), 0);
    }
}
