//! The deployment plan: clusters, representatives, distances.
//!
//! Plans own the [`MachineTable`] that maps machine names to dense
//! [`MachineId`]s; cluster membership is stored as id vectors so that
//! protocols and the simulator never touch strings on the hot path.

use mirage_cluster::Clustering;

use crate::ids::{MachineId, MachineTable};

/// One cluster as seen by a deployment protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployCluster {
    /// Cluster index within the plan.
    pub id: usize,
    /// All member machine ids (representatives included).
    pub members: Vec<MachineId>,
    /// Representative machine ids (a prefix subset of `members`).
    pub reps: Vec<MachineId>,
    /// Vendor↔cluster distance (environment dissimilarity).
    pub distance: f64,
}

impl DeployCluster {
    /// Non-representative member ids.
    pub fn non_reps(&self) -> Vec<MachineId> {
        self.members
            .iter()
            .filter(|m| !self.reps.contains(m))
            .copied()
            .collect()
    }

    /// Number of member machines.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// A complete deployment plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeployPlan {
    /// Machine name ↔ id interner; ids are dense and follow plan order
    /// (cluster 0's members first, then cluster 1's, …).
    pub machines: MachineTable,
    /// Clusters in plan order (ids are indexes into this vector).
    pub clusters: Vec<DeployCluster>,
}

impl DeployPlan {
    /// Builds a plan from named clusters: each spec is `(member names,
    /// representative count, distance)`. Representatives are the first
    /// `reps` members.
    pub fn from_named<M, S>(specs: impl IntoIterator<Item = (M, usize, f64)>) -> Self
    where
        M: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut machines = MachineTable::new();
        let clusters = specs
            .into_iter()
            .enumerate()
            .map(|(id, (members, reps, distance))| {
                let members: Vec<MachineId> = members
                    .into_iter()
                    .map(|m| machines.intern(m.as_ref()))
                    .collect();
                let reps = members.iter().take(reps).copied().collect();
                DeployCluster {
                    id,
                    members,
                    reps,
                    distance,
                }
            })
            .collect();
        DeployPlan { machines, clusters }
    }

    /// Builds a plan from a clustering, electing the first
    /// `reps_per_cluster` members (sorted order) of each cluster as
    /// representatives.
    ///
    /// The paper assumes representatives are always online and willing to
    /// test (perhaps under a financial arrangement with the vendor);
    /// election strategy is orthogonal, so "first k members" keeps the
    /// plan deterministic.
    pub fn from_clustering(clustering: &Clustering, reps_per_cluster: usize) -> Self {
        DeployPlan::from_named(clustering.clusters.iter().map(|c| {
            let reps = reps_per_cluster.max(1).min(c.members.len());
            (
                c.members.iter().map(String::as_str),
                reps,
                c.vendor_distance,
            )
        }))
    }

    /// Cluster ids ordered by ascending distance (ties by id).
    pub fn order_by_distance_asc(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.clusters.len()).collect();
        ids.sort_by(|&a, &b| {
            self.clusters[a]
                .distance
                .partial_cmp(&self.clusters[b].distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        ids
    }

    /// Cluster ids ordered by descending distance (ties by id).
    pub fn order_by_distance_desc(&self) -> Vec<usize> {
        let mut ids = self.order_by_distance_asc();
        ids.reverse();
        ids
    }

    /// Total machine count (sum of cluster sizes).
    pub fn machine_count(&self) -> usize {
        self.clusters.iter().map(DeployCluster::len).sum()
    }

    /// All machine ids across clusters, in plan order.
    pub fn all_machines(&self) -> Vec<MachineId> {
        self.clusters
            .iter()
            .flat_map(|c| c.members.iter().copied())
            .collect()
    }

    /// Looks up the cluster containing a machine.
    pub fn cluster_of(&self, machine: MachineId) -> Option<&DeployCluster> {
        self.clusters.iter().find(|c| c.members.contains(&machine))
    }

    /// The name behind a machine id (boundary helper).
    pub fn machine_name(&self, id: MachineId) -> &str {
        self.machines.name(id)
    }

    /// The id behind a machine name (boundary helper).
    pub fn machine_id(&self, name: &str) -> Option<MachineId> {
        self.machines.id(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic plan: each tuple is (members, reps, distance).
    fn plan(specs: &[(&[&str], usize, f64)]) -> DeployPlan {
        DeployPlan::from_named(
            specs
                .iter()
                .map(|(members, reps, distance)| (members.iter().copied(), *reps, *distance)),
        )
    }

    #[test]
    fn non_reps_and_counts() {
        let p = plan(&[(&["a", "b", "c"], 1, 0.0)]);
        assert_eq!(p.clusters[0].reps, vec![MachineId(0)]);
        assert_eq!(p.clusters[0].non_reps(), vec![MachineId(1), MachineId(2)]);
        assert_eq!(p.machine_count(), 3);
        assert_eq!(p.all_machines().len(), 3);
        assert!(!p.clusters[0].is_empty());
        // Names round-trip through the table in plan order.
        assert_eq!(p.machine_name(MachineId(1)), "b");
        assert_eq!(p.machine_id("c"), Some(MachineId(2)));
        assert_eq!(p.machine_id("zzz"), None);
    }

    #[test]
    fn distance_orders() {
        let p = plan(&[
            (&["a"], 1, 5.0),
            (&["b"], 1, 1.0),
            (&["c"], 1, 3.0),
            (&["d"], 1, 1.0),
        ]);
        assert_eq!(p.order_by_distance_asc(), vec![1, 3, 2, 0]);
        assert_eq!(p.order_by_distance_desc(), vec![0, 2, 3, 1]);
    }

    #[test]
    fn cluster_lookup() {
        let p = plan(&[(&["a", "b"], 1, 0.0), (&["c"], 1, 1.0)]);
        let c = p.machine_id("c").unwrap();
        assert_eq!(p.cluster_of(c).unwrap().id, 1);
        assert!(p.cluster_of(MachineId(99)).is_none());
    }

    #[test]
    fn from_clustering_elects_reps() {
        use mirage_cluster::{Cluster, ClusterId};
        use std::collections::BTreeSet;
        let clustering = Clustering {
            clusters: vec![Cluster {
                id: ClusterId(0),
                members: vec!["x".into(), "y".into(), "z".into()],
                label: Default::default(),
                app_set: BTreeSet::new(),
                vendor_distance: 2.5,
            }],
        };
        let p = DeployPlan::from_clustering(&clustering, 2);
        assert_eq!(
            p.clusters[0].reps,
            vec![p.machine_id("x").unwrap(), p.machine_id("y").unwrap()]
        );
        assert_eq!(p.clusters[0].distance, 2.5);
        // Rep count is clamped to the cluster size and floored at one.
        let p = DeployPlan::from_clustering(&clustering, 0);
        assert_eq!(p.clusters[0].reps.len(), 1);
        let p = DeployPlan::from_clustering(&clustering, 10);
        assert_eq!(p.clusters[0].reps.len(), 3);
    }
}
