//! Staged deployment protocols (paper §3.2.1–§3.2.2, §4.3).
//!
//! Mirage provides three deployment abstractions — **clusters of
//! deployment**, **representatives**, and a **vendor↔cluster distance** —
//! on which vendors build protocols optimising different objectives:
//! upgrade overhead (machines that test a faulty upgrade), upgrade
//! latency, report deduplication, or front-loaded debugging.
//!
//! Protocols are implemented here as *pure, clock-free state machines*
//! ([`Protocol`]): a driver (the discrete-event simulator in `mirage-sim`,
//! or the end-to-end orchestrator in `mirage-core`) feeds them test
//! reports and release announcements and executes the notification
//! commands they emit. This keeps protocol logic identical between
//! simulation and "real" deployment, and makes every protocol trivially
//! testable.
//!
//! Four protocols are provided, matching the paper's evaluation:
//!
//! * [`NoStaging`] — everyone is a representative; fastest, maximum
//!   overhead. For simple and urgent upgrades (security patches).
//! * [`Balanced`] — clusters ordered by *ascending* vendor distance; reps
//!   test before non-reps within each cluster. Low overhead, good
//!   latency.
//! * `RandomStaging` — [`Balanced`] with a caller-supplied (shuffled)
//!   order; isolates the benefit of staging from that of intelligent
//!   ordering.
//! * [`FrontLoading`] — phase 1 tests on all representatives of all
//!   clusters in parallel until no problems remain, then deploys to
//!   non-representatives cluster-by-cluster in *descending* distance
//!   order, front-loading the vendor's debugging effort.

//! ## The interned data plane
//!
//! Protocol state, commands, and reports are keyed by dense interned
//! ids ([`MachineId`], [`ProblemId`]) rather than machine names: a
//! report is a 12-byte `Copy` value and handling it costs a few array
//! indexings. Names exist only at the boundaries (plan construction,
//! rendering) via the plan's [`MachineTable`]. The original
//! string-keyed protocols are retained under [`mod@reference`] so
//! equivalence tests and benchmarks can compare against them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod dispatch;
pub mod ids;
pub mod plan;
pub mod protocol;
pub mod protocols;
pub mod reference;

pub use dispatch::{seeded_shuffle, AnyProtocol, ProtocolChoice};
pub use ids::{MachineId, MachineSet, MachineTable, ProblemId, ProblemSet, ProblemTable};
pub use plan::{DeployCluster, DeployPlan};
pub use protocol::{Command, Protocol, Release, SimTime, TestOutcome, TestReport, PRIOR_RELEASE};
pub use protocols::{Balanced, FrontLoading, NoStaging};
