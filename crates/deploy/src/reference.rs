//! The retained string-keyed protocol implementations.
//!
//! This module preserves the pre-interning deployment data plane —
//! `String` machine names, `BTreeMap` protocol state, `BTreeSet<String>`
//! fixed-sets — exactly as it worked before the id migration, so the
//! equivalence property tests (and the `repro sim-perf` benchmark's
//! *reference* rows) can compare the interned hot path against the
//! original behaviour. Nothing here is used on the hot path.
//!
//! The types mirror [`crate::protocol`] with names in place of ids:
//! [`NamedCommand`], [`NamedReport`], [`NamedOutcome`], and the
//! [`NamedProtocol`] trait; [`NamedPlan`] mirrors
//! [`DeployPlan`] and is constructed from one via
//! [`NamedPlan::from_plan`].

use std::collections::{BTreeMap, BTreeSet};

use crate::dispatch::{seeded_shuffle, ProtocolChoice};
use crate::plan::DeployPlan;
use crate::protocol::{MachineStatus, Release, SimTime};

/// One cluster with string membership (pre-interning shape).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedCluster {
    /// Cluster index within the plan.
    pub id: usize,
    /// All member machine names (representatives included).
    pub members: Vec<String>,
    /// Representative machine names (a prefix subset of `members`).
    pub reps: Vec<String>,
    /// Vendor↔cluster distance.
    pub distance: f64,
}

impl NamedCluster {
    /// Non-representative member names.
    pub fn non_reps(&self) -> Vec<String> {
        self.members
            .iter()
            .filter(|m| !self.reps.contains(m))
            .cloned()
            .collect()
    }
}

/// A deployment plan with string membership (pre-interning shape).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NamedPlan {
    /// Clusters in plan order.
    pub clusters: Vec<NamedCluster>,
}

impl NamedPlan {
    /// Renders an interned plan back to names.
    pub fn from_plan(plan: &DeployPlan) -> Self {
        NamedPlan {
            clusters: plan
                .clusters
                .iter()
                .map(|c| NamedCluster {
                    id: c.id,
                    members: c
                        .members
                        .iter()
                        .map(|&m| plan.machine_name(m).to_string())
                        .collect(),
                    reps: c
                        .reps
                        .iter()
                        .map(|&m| plan.machine_name(m).to_string())
                        .collect(),
                    distance: c.distance,
                })
                .collect(),
        }
    }

    /// Cluster ids ordered by ascending distance (ties by id).
    pub fn order_by_distance_asc(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.clusters.len()).collect();
        ids.sort_by(|&a, &b| {
            self.clusters[a]
                .distance
                .partial_cmp(&self.clusters[b].distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        ids
    }

    /// Cluster ids ordered by descending distance (ties by id).
    pub fn order_by_distance_desc(&self) -> Vec<usize> {
        let mut ids = self.order_by_distance_asc();
        ids.reverse();
        ids
    }

    /// All machine names across clusters, in plan order.
    pub fn all_machines(&self) -> Vec<String> {
        self.clusters
            .iter()
            .flat_map(|c| c.members.iter().cloned())
            .collect()
    }

    /// Total machine count (sum of cluster sizes).
    pub fn machine_count(&self) -> usize {
        self.clusters.iter().map(|c| c.members.len()).sum()
    }
}

/// The outcome of one machine testing one release (string-keyed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NamedOutcome {
    /// The upgrade integrated and behaved identically.
    Pass,
    /// Testing failed; the failure signature identifies the problem.
    Fail {
        /// Failure signature (problem name).
        problem: String,
    },
}

/// A test report keyed by machine name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedReport {
    /// Reporting machine name.
    pub machine: String,
    /// Release that was tested.
    pub release: Release,
    /// Outcome.
    pub outcome: NamedOutcome,
}

/// A command emitted by a string-keyed protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NamedCommand {
    /// Notify these machines that `release` is available.
    Notify {
        /// Machines to notify, in protocol-determined order.
        machines: Vec<String>,
        /// Release to test.
        release: Release,
    },
    /// Deployment finished: every machine passed.
    Complete,
}

/// The string-keyed protocol interface (pre-interning shape).
///
/// Mirrors [`crate::Protocol`] hook-for-hook — including the
/// unreliable-channel additions ([`NamedProtocol::on_tick`],
/// [`NamedProtocol::rep_timeouts`]) — so the equivalence property
/// tests drive both planes through one interface shape.
pub trait NamedProtocol {
    /// Protocol name for reporting.
    fn name(&self) -> &'static str;
    /// Begins deployment of release 0.
    fn start(&mut self) -> Vec<NamedCommand>;
    /// Handles a test report.
    fn on_report(&mut self, report: &NamedReport) -> Vec<NamedCommand>;
    /// Handles the vendor shipping a corrected release; `fixed` is the
    /// cumulative set of fixed problem names.
    fn on_release(&mut self, release: Release, fixed: &BTreeSet<String>) -> Vec<NamedCommand>;
    /// Periodic timer callback (mirror of [`crate::Protocol::on_tick`]);
    /// the reference plane is only exercised on reliable channels, so
    /// the default no-op is also the only implementation.
    fn on_tick(&mut self, _now: SimTime) -> Vec<NamedCommand> {
        Vec::new()
    }
    /// Mirror of [`crate::Protocol::rep_timeouts`].
    fn rep_timeouts(&self) -> u64 {
        0
    }
    /// Returns `true` once every machine has passed.
    fn done(&self) -> bool;
}

fn ceil_threshold(total: usize, threshold: f64) -> usize {
    if total == 0 {
        return 0;
    }
    (((total as f64) * threshold).ceil() as usize).max(1)
}

/// String-keyed NoStaging (retained pre-interning implementation).
#[derive(Debug, Clone)]
pub struct NamedNoStaging {
    status: BTreeMap<String, MachineStatus>,
    failed_problem: BTreeMap<String, String>,
    /// Release each machine was most recently notified for (absent ⇒
    /// release 0); the stale-duplicate guard, mirroring the interned
    /// plane's hardening.
    notified_release: BTreeMap<String, u32>,
    passed: usize,
    release: Release,
    completed: bool,
}

impl NamedNoStaging {
    /// Creates the protocol over a plan (cluster structure is ignored).
    pub fn new(plan: NamedPlan) -> Self {
        let status = plan
            .all_machines()
            .into_iter()
            .map(|m| (m, MachineStatus::Idle))
            .collect();
        NamedNoStaging {
            status,
            failed_problem: BTreeMap::new(),
            notified_release: BTreeMap::new(),
            passed: 0,
            release: Release(0),
            completed: false,
        }
    }

    fn completion(&mut self) -> Vec<NamedCommand> {
        if !self.completed && self.done() {
            self.completed = true;
            vec![NamedCommand::Complete]
        } else {
            Vec::new()
        }
    }
}

impl NamedProtocol for NamedNoStaging {
    fn name(&self) -> &'static str {
        "NoStaging"
    }

    fn start(&mut self) -> Vec<NamedCommand> {
        let machines: Vec<String> = self.status.keys().cloned().collect();
        for m in &machines {
            self.status.insert(m.clone(), MachineStatus::Testing);
        }
        if machines.is_empty() {
            self.completed = true;
            return vec![NamedCommand::Complete];
        }
        vec![NamedCommand::Notify {
            machines,
            release: self.release,
        }]
    }

    fn on_report(&mut self, report: &NamedReport) -> Vec<NamedCommand> {
        // Unreliable-channel idempotence (mirrors the interned plane):
        // drop reports for a release older than the machine's latest
        // notification, and never demote a machine that already passed.
        let notified = self
            .notified_release
            .get(&report.machine)
            .copied()
            .unwrap_or(0);
        if report.release.0 < notified
            || self.status.get(&report.machine) == Some(&MachineStatus::Passed)
        {
            return Vec::new();
        }
        let status = match &report.outcome {
            NamedOutcome::Pass => MachineStatus::Passed,
            NamedOutcome::Fail { problem } => {
                self.failed_problem
                    .insert(report.machine.clone(), problem.clone());
                MachineStatus::Failed
            }
        };
        let previous = self.status.insert(report.machine.clone(), status);
        if status == MachineStatus::Passed && previous != Some(MachineStatus::Passed) {
            self.passed += 1;
        }
        self.completion()
    }

    fn on_release(&mut self, release: Release, fixed: &BTreeSet<String>) -> Vec<NamedCommand> {
        self.release = release;
        let failed: Vec<String> = self
            .status
            .iter()
            .filter(|(m, s)| {
                **s == MachineStatus::Failed
                    && self
                        .failed_problem
                        .get(*m)
                        .map(|p| fixed.contains(p))
                        .unwrap_or(true)
            })
            .map(|(m, _)| m.clone())
            .collect();
        for m in &failed {
            self.status.insert(m.clone(), MachineStatus::Testing);
            self.notified_release.insert(m.clone(), release.0);
        }
        if failed.is_empty() {
            return self.completion();
        }
        vec![NamedCommand::Notify {
            machines: failed,
            release,
        }]
    }

    fn done(&self) -> bool {
        self.passed == self.status.len()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    GlobalReps,
    Cluster(usize),
    Draining,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClusterStage {
    Reps,
    NonReps,
}

/// String-keyed staged engine (retained pre-interning implementation).
#[derive(Debug, Clone)]
struct NamedStagedEngine {
    plan: NamedPlan,
    order: Vec<usize>,
    threshold: f64,
    global_rep_phase: bool,
    status: BTreeMap<String, MachineStatus>,
    cluster_of: BTreeMap<String, usize>,
    cluster_passed: Vec<usize>,
    reps_passed: usize,
    total_reps: usize,
    total_passed: usize,
    total_machines: usize,
    release: Release,
    phase: Phase,
    stage: ClusterStage,
    failed_problem: BTreeMap<String, String>,
    /// Release each machine was most recently notified for (absent ⇒
    /// release 0); the stale-duplicate guard, mirroring the interned
    /// plane's hardening.
    notified_release: BTreeMap<String, u32>,
    completed: bool,
}

impl NamedStagedEngine {
    fn new(plan: NamedPlan, order: Vec<usize>, threshold: f64, global_rep_phase: bool) -> Self {
        assert_eq!(
            order.len(),
            plan.clusters.len(),
            "order must cover every cluster exactly once"
        );
        let status: BTreeMap<String, MachineStatus> = plan
            .all_machines()
            .into_iter()
            .map(|m| (m, MachineStatus::Idle))
            .collect();
        let mut cluster_of = BTreeMap::new();
        for (i, c) in plan.clusters.iter().enumerate() {
            for m in &c.members {
                cluster_of.insert(m.clone(), i);
            }
        }
        let total_reps = plan.clusters.iter().map(|c| c.reps.len()).sum();
        let total_machines = status.len();
        let cluster_passed = vec![0; plan.clusters.len()];
        NamedStagedEngine {
            plan,
            order,
            threshold,
            global_rep_phase,
            status,
            cluster_of,
            cluster_passed,
            reps_passed: 0,
            total_reps,
            total_passed: 0,
            total_machines,
            release: Release(0),
            phase: if global_rep_phase {
                Phase::GlobalReps
            } else {
                Phase::Cluster(0)
            },
            stage: ClusterStage::Reps,
            failed_problem: BTreeMap::new(),
            notified_release: BTreeMap::new(),
            completed: false,
        }
    }

    fn notify(&mut self, machines: Vec<String>, out: &mut Vec<NamedCommand>) {
        let fresh: Vec<String> = machines
            .into_iter()
            .filter(|m| {
                matches!(
                    self.status.get(m),
                    Some(MachineStatus::Idle) | Some(MachineStatus::Failed)
                )
            })
            .collect();
        if fresh.is_empty() {
            return;
        }
        for m in &fresh {
            self.status.insert(m.clone(), MachineStatus::Testing);
            self.notified_release.insert(m.clone(), self.release.0);
        }
        out.push(NamedCommand::Notify {
            machines: fresh,
            release: self.release,
        });
    }

    fn all_passed(&self, machines: &[String]) -> bool {
        machines
            .iter()
            .all(|m| self.status.get(m) == Some(&MachineStatus::Passed))
    }

    fn all_reps(&self) -> Vec<String> {
        self.plan
            .clusters
            .iter()
            .flat_map(|c| c.reps.iter().cloned())
            .collect()
    }

    fn step(&mut self, out: &mut Vec<NamedCommand>) {
        loop {
            match self.phase {
                Phase::GlobalReps => {
                    if self.reps_passed == self.total_reps {
                        self.phase = Phase::Cluster(0);
                        self.stage = ClusterStage::NonReps;
                        if let Some(&cid) = self.order.first() {
                            let non_reps = self.plan.clusters[cid].non_reps();
                            self.notify(non_reps, out);
                        }
                        continue;
                    }
                    break;
                }
                Phase::Cluster(i) => {
                    let Some(&cid) = self.order.get(i) else {
                        self.phase = Phase::Draining;
                        continue;
                    };
                    let cluster = &self.plan.clusters[cid];
                    match self.stage {
                        ClusterStage::Reps => {
                            let reps = cluster.reps.clone();
                            if self.all_passed(&reps) {
                                self.stage = ClusterStage::NonReps;
                                let non_reps = cluster.non_reps();
                                self.notify(non_reps, out);
                                continue;
                            }
                            break;
                        }
                        ClusterStage::NonReps => {
                            let needed = ceil_threshold(cluster.members.len(), self.threshold);
                            if self.cluster_passed[cid] >= needed {
                                if i + 1 < self.order.len() {
                                    self.phase = Phase::Cluster(i + 1);
                                    let next = self.order[i + 1];
                                    if self.global_rep_phase {
                                        self.stage = ClusterStage::NonReps;
                                        let non_reps = self.plan.clusters[next].non_reps();
                                        self.notify(non_reps, out);
                                    } else {
                                        self.stage = ClusterStage::Reps;
                                        let reps = self.plan.clusters[next].reps.clone();
                                        self.notify(reps, out);
                                    }
                                } else {
                                    self.phase = Phase::Draining;
                                }
                                continue;
                            }
                            break;
                        }
                    }
                }
                Phase::Draining => break,
            }
        }
        if !self.completed && self.done() {
            self.completed = true;
            out.push(NamedCommand::Complete);
        }
    }

    fn start(&mut self) -> Vec<NamedCommand> {
        let mut out = Vec::new();
        if self.plan.machine_count() == 0 {
            self.completed = true;
            return vec![NamedCommand::Complete];
        }
        if self.global_rep_phase {
            let reps = self.all_reps();
            self.notify(reps, &mut out);
        } else if let Some(&cid) = self.order.first() {
            let reps = self.plan.clusters[cid].reps.clone();
            self.notify(reps, &mut out);
        }
        self.step(&mut out);
        out
    }

    fn on_report(&mut self, report: &NamedReport) -> Vec<NamedCommand> {
        // Unreliable-channel idempotence (mirrors the interned plane):
        // drop reports for a release older than the machine's latest
        // notification, and never demote a machine that already passed.
        let notified = self
            .notified_release
            .get(&report.machine)
            .copied()
            .unwrap_or(0);
        if report.release.0 < notified
            || self.status.get(&report.machine) == Some(&MachineStatus::Passed)
        {
            return Vec::new();
        }
        let status = match &report.outcome {
            NamedOutcome::Pass => MachineStatus::Passed,
            NamedOutcome::Fail { problem } => {
                self.failed_problem
                    .insert(report.machine.clone(), problem.clone());
                MachineStatus::Failed
            }
        };
        let previous = self.status.insert(report.machine.clone(), status);
        if status == MachineStatus::Passed && previous != Some(MachineStatus::Passed) {
            self.total_passed += 1;
            if let Some(&cid) = self.cluster_of.get(&report.machine) {
                self.cluster_passed[cid] += 1;
                if self.plan.clusters[cid]
                    .reps
                    .iter()
                    .any(|r| r == &report.machine)
                {
                    self.reps_passed += 1;
                }
            }
        }
        let mut out = Vec::new();
        self.step(&mut out);
        out
    }

    fn on_release(&mut self, release: Release, fixed: &BTreeSet<String>) -> Vec<NamedCommand> {
        self.release = release;
        let failed: Vec<String> = self
            .status
            .iter()
            .filter(|(m, s)| {
                **s == MachineStatus::Failed
                    && self
                        .failed_problem
                        .get(*m)
                        .map(|p| fixed.contains(p))
                        .unwrap_or(true)
            })
            .map(|(m, _)| m.clone())
            .collect();
        let mut out = Vec::new();
        self.notify(failed, &mut out);
        self.step(&mut out);
        out
    }

    fn done(&self) -> bool {
        self.total_passed == self.total_machines
    }
}

/// String-keyed Balanced (retained pre-interning implementation).
#[derive(Debug, Clone)]
pub struct NamedBalanced {
    engine: NamedStagedEngine,
    name: &'static str,
}

impl NamedBalanced {
    /// Creates a Balanced deployment (ascending-distance order).
    pub fn new(plan: NamedPlan, threshold: f64) -> Self {
        let order = plan.order_by_distance_asc();
        NamedBalanced {
            engine: NamedStagedEngine::new(plan, order, threshold, false),
            name: "Balanced",
        }
    }

    /// Creates a staged deployment with an explicit cluster order.
    pub fn with_order(plan: NamedPlan, order: Vec<usize>, threshold: f64) -> Self {
        NamedBalanced {
            engine: NamedStagedEngine::new(plan, order, threshold, false),
            name: "RandomStaging",
        }
    }
}

impl NamedProtocol for NamedBalanced {
    fn name(&self) -> &'static str {
        self.name
    }
    fn start(&mut self) -> Vec<NamedCommand> {
        self.engine.start()
    }
    fn on_report(&mut self, report: &NamedReport) -> Vec<NamedCommand> {
        self.engine.on_report(report)
    }
    fn on_release(&mut self, release: Release, fixed: &BTreeSet<String>) -> Vec<NamedCommand> {
        self.engine.on_release(release, fixed)
    }
    fn done(&self) -> bool {
        self.engine.done()
    }
}

/// String-keyed FrontLoading (retained pre-interning implementation).
#[derive(Debug, Clone)]
pub struct NamedFrontLoading {
    engine: NamedStagedEngine,
}

impl NamedFrontLoading {
    /// Creates a FrontLoading deployment.
    pub fn new(plan: NamedPlan, threshold: f64) -> Self {
        let order = plan.order_by_distance_desc();
        NamedFrontLoading {
            engine: NamedStagedEngine::new(plan, order, threshold, true),
        }
    }
}

impl NamedProtocol for NamedFrontLoading {
    fn name(&self) -> &'static str {
        "FrontLoading"
    }
    fn start(&mut self) -> Vec<NamedCommand> {
        self.engine.start()
    }
    fn on_report(&mut self, report: &NamedReport) -> Vec<NamedCommand> {
        self.engine.on_report(report)
    }
    fn on_release(&mut self, release: Release, fixed: &BTreeSet<String>) -> Vec<NamedCommand> {
        self.engine.on_release(release, fixed)
    }
    fn done(&self) -> bool {
        self.engine.done()
    }
}

/// Enum dispatch over the string-keyed reference protocols — the
/// mirror of [`crate::AnyProtocol`], so equivalence tests construct
/// both planes from one [`ProtocolChoice`].
#[derive(Debug, Clone)]
pub enum AnyNamedProtocol {
    /// See [`NamedNoStaging`].
    NoStaging(NamedNoStaging),
    /// See [`NamedBalanced`] (also the RandomStaging baseline).
    Balanced(NamedBalanced),
    /// See [`NamedFrontLoading`].
    FrontLoading(NamedFrontLoading),
}

impl NamedProtocol for AnyNamedProtocol {
    fn name(&self) -> &'static str {
        match self {
            AnyNamedProtocol::NoStaging(p) => p.name(),
            AnyNamedProtocol::Balanced(p) => p.name(),
            AnyNamedProtocol::FrontLoading(p) => p.name(),
        }
    }
    fn start(&mut self) -> Vec<NamedCommand> {
        match self {
            AnyNamedProtocol::NoStaging(p) => p.start(),
            AnyNamedProtocol::Balanced(p) => p.start(),
            AnyNamedProtocol::FrontLoading(p) => p.start(),
        }
    }
    fn on_report(&mut self, report: &NamedReport) -> Vec<NamedCommand> {
        match self {
            AnyNamedProtocol::NoStaging(p) => p.on_report(report),
            AnyNamedProtocol::Balanced(p) => p.on_report(report),
            AnyNamedProtocol::FrontLoading(p) => p.on_report(report),
        }
    }
    fn on_release(&mut self, release: Release, fixed: &BTreeSet<String>) -> Vec<NamedCommand> {
        match self {
            AnyNamedProtocol::NoStaging(p) => p.on_release(release, fixed),
            AnyNamedProtocol::Balanced(p) => p.on_release(release, fixed),
            AnyNamedProtocol::FrontLoading(p) => p.on_release(release, fixed),
        }
    }
    fn done(&self) -> bool {
        match self {
            AnyNamedProtocol::NoStaging(p) => p.done(),
            AnyNamedProtocol::Balanced(p) => p.done(),
            AnyNamedProtocol::FrontLoading(p) => p.done(),
        }
    }
}

impl ProtocolChoice {
    /// Builds the string-keyed reference twin of [`ProtocolChoice::build`]
    /// over a [`NamedPlan`] — same protocol, same order (RandomStaging
    /// uses the identical seeded shuffle), pre-interning data plane.
    pub fn build_named(self, plan: NamedPlan, threshold: f64) -> AnyNamedProtocol {
        match self {
            ProtocolChoice::NoStaging => AnyNamedProtocol::NoStaging(NamedNoStaging::new(plan)),
            ProtocolChoice::Balanced => {
                AnyNamedProtocol::Balanced(NamedBalanced::new(plan, threshold))
            }
            ProtocolChoice::FrontLoading => {
                AnyNamedProtocol::FrontLoading(NamedFrontLoading::new(plan, threshold))
            }
            ProtocolChoice::RandomStaging { seed } => {
                let mut order: Vec<usize> = (0..plan.clusters.len()).collect();
                seeded_shuffle(&mut order, seed);
                AnyNamedProtocol::Balanced(NamedBalanced::with_order(plan, order, threshold))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(specs: &[(&[&str], usize, f64)]) -> NamedPlan {
        NamedPlan {
            clusters: specs
                .iter()
                .enumerate()
                .map(|(id, (members, reps, distance))| NamedCluster {
                    id,
                    members: members.iter().map(|s| s.to_string()).collect(),
                    reps: members.iter().take(*reps).map(|s| s.to_string()).collect(),
                    distance: *distance,
                })
                .collect(),
        }
    }

    fn notified(cmds: &[NamedCommand]) -> Vec<String> {
        cmds.iter()
            .flat_map(|c| match c {
                NamedCommand::Notify { machines, .. } => machines.clone(),
                NamedCommand::Complete => vec![],
            })
            .collect()
    }

    fn pass(machine: &str, release: u32) -> NamedReport {
        NamedReport {
            machine: machine.into(),
            release: Release(release),
            outcome: NamedOutcome::Pass,
        }
    }

    fn fail(machine: &str, release: u32, problem: &str) -> NamedReport {
        NamedReport {
            machine: machine.into(),
            release: Release(release),
            outcome: NamedOutcome::Fail {
                problem: problem.into(),
            },
        }
    }

    #[test]
    fn from_plan_round_trips_names() {
        let p = DeployPlan::from_named([(["a", "b"], 1, 0.5), (["c", "d"], 2, 1.5)]);
        let named = NamedPlan::from_plan(&p);
        assert_eq!(named.clusters.len(), 2);
        assert_eq!(named.clusters[0].members, vec!["a", "b"]);
        assert_eq!(named.clusters[0].reps, vec!["a"]);
        assert_eq!(named.clusters[0].non_reps(), vec!["b"]);
        assert_eq!(named.clusters[1].reps, vec!["c", "d"]);
        assert_eq!(named.clusters[1].distance, 1.5);
        assert_eq!(named.machine_count(), 4);
        assert_eq!(named.order_by_distance_desc(), vec![1, 0]);
    }

    #[test]
    fn named_nostaging_behaves_like_the_old_implementation() {
        let mut p = NamedNoStaging::new(plan(&[(&["a", "b"], 1, 0.0), (&["c"], 1, 1.0)]));
        let cmds = p.start();
        // BTreeMap iteration: lexicographic name order.
        assert_eq!(notified(&cmds), vec!["a", "b", "c"]);
        p.on_report(&pass("a", 0));
        p.on_report(&fail("b", 0, "p1"));
        p.on_report(&pass("c", 0));
        assert!(!p.done());
        let fixed: BTreeSet<String> = ["p1".to_string()].into();
        let cmds = p.on_release(Release(1), &fixed);
        assert_eq!(notified(&cmds), vec!["b"]);
        let cmds = p.on_report(&pass("b", 1));
        assert_eq!(cmds, vec![NamedCommand::Complete]);
    }

    #[test]
    fn named_balanced_walks_distance_order() {
        let mut p = NamedBalanced::new(
            plan(&[(&["f1", "f2"], 1, 5.0), (&["n1", "n2"], 1, 1.0)]),
            1.0,
        );
        assert_eq!(p.name(), "Balanced");
        assert_eq!(notified(&p.start()), vec!["n1"]);
        assert_eq!(notified(&p.on_report(&pass("n1", 0))), vec!["n2"]);
        assert_eq!(notified(&p.on_report(&pass("n2", 0))), vec!["f1"]);
        assert_eq!(notified(&p.on_report(&pass("f1", 0))), vec!["f2"]);
        assert_eq!(p.on_report(&pass("f2", 0)), vec![NamedCommand::Complete]);
    }

    #[test]
    fn named_frontloading_reps_first() {
        let mut p = NamedFrontLoading::new(
            plan(&[(&["a1", "a2"], 1, 1.0), (&["b1", "b2"], 1, 5.0)]),
            1.0,
        );
        assert_eq!(p.name(), "FrontLoading");
        let mut reps = notified(&p.start());
        reps.sort();
        assert_eq!(reps, vec!["a1", "b1"]);
        assert!(notified(&p.on_report(&pass("a1", 0))).is_empty());
        // Farthest cluster's non-reps first in phase 2.
        assert_eq!(notified(&p.on_report(&pass("b1", 0))), vec!["b2"]);
    }

    #[test]
    fn named_with_order_is_random_staging() {
        let mut p =
            NamedBalanced::with_order(plan(&[(&["a"], 1, 1.0), (&["b"], 1, 2.0)]), vec![1, 0], 1.0);
        assert_eq!(p.name(), "RandomStaging");
        assert_eq!(notified(&p.start()), vec!["b"]);
    }

    /// Regression (unreliable channels): replaying an already-delivered
    /// report to any reference protocol must be a strict no-op — no
    /// commands, no `done()` flapping, and no re-notifications that
    /// would inflate `deploy.machines_notified` on the interned twin.
    #[test]
    fn duplicate_reports_are_no_ops_in_all_reference_protocols() {
        let specs: &[(&[&str], usize, f64)] = &[(&["a", "b"], 1, 1.0), (&["c", "d"], 1, 2.0)];
        let protos: Vec<Box<dyn NamedProtocol>> = vec![
            Box::new(NamedNoStaging::new(plan(specs))),
            Box::new(NamedBalanced::new(plan(specs), 1.0)),
            Box::new(NamedFrontLoading::new(plan(specs), 1.0)),
        ];
        for mut p in protos {
            let name = p.name();
            let first = notified(&p.start());
            // Duplicate Pass: second delivery emits nothing new.
            let target = first.first().expect("start notifies someone").clone();
            let once = p.on_report(&pass(&target, 0));
            let again = p.on_report(&pass(&target, 0));
            assert!(
                again.is_empty(),
                "{name}: duplicate pass re-emitted {again:?}"
            );
            // A duplicated *fail* for the same (now passed) machine must
            // not demote it either.
            let demote = p.on_report(&fail(&target, 0, "ghost"));
            assert!(demote.is_empty(), "{name}: late fail demoted a pass");
            let _ = once;
        }
    }

    /// Stale reports for a superseded release are dropped: a machine
    /// re-notified for release 1 ignores a replayed release-0 failure.
    #[test]
    fn stale_release_reports_are_dropped() {
        let mut p = NamedNoStaging::new(plan(&[(&["a", "b"], 1, 0.0)]));
        p.start();
        p.on_report(&fail("a", 0, "p1"));
        p.on_report(&pass("b", 0));
        let fixed: BTreeSet<String> = ["p1".to_string()].into();
        let cmds = p.on_release(Release(1), &fixed);
        assert_eq!(notified(&cmds), vec!["a"]);
        // The channel replays the old release-0 failure: ignored.
        assert!(p.on_report(&fail("a", 0, "p1")).is_empty());
        assert!(!p.done());
        // The genuine release-1 pass still lands.
        let cmds = p.on_report(&pass("a", 1));
        assert_eq!(cmds, vec![NamedCommand::Complete]);
        assert!(p.done());
    }

    #[test]
    fn build_named_mirrors_protocol_choice() {
        let dp = DeployPlan::from_named([(["a", "b"], 1, 1.0), (["c", "d"], 1, 2.0)]);
        let named = NamedPlan::from_plan(&dp);
        for choice in [
            ProtocolChoice::NoStaging,
            ProtocolChoice::Balanced,
            ProtocolChoice::FrontLoading,
            ProtocolChoice::RandomStaging { seed: 9 },
        ] {
            let mut p = choice.build_named(named.clone(), 1.0);
            assert_eq!(p.name(), choice.name());
            assert!(!p.start().is_empty());
            assert_eq!(p.rep_timeouts(), 0);
            assert!(p.on_tick(10).is_empty(), "reference plane never ticks");
        }
    }
}
