//! The concrete deployment protocols.
//!
//! All protocol state is indexed by dense [`MachineId`]s: per-machine
//! status and failure signatures live in flat `Vec`s, representative
//! membership in a [`MachineSet`] bitset, and the cumulative fixed-set
//! consulted on each release is a [`ProblemSet`]. A report is handled
//! with a handful of array indexings — no string hashing, no tree
//! walks, no allocation. The previous string-keyed implementations are
//! retained in [`crate::reference`] for equivalence testing.

use mirage_telemetry::{FlightEvent, JournalEvent, Telemetry};

use crate::ids::{MachineId, MachineSet, ProblemId, ProblemSet};
use crate::plan::DeployPlan;
use crate::protocol::{
    Command, MachineStatus, Protocol, Release, SimTime, TestOutcome, TestReport,
};

/// Sentinel progress marker meaning "no tick observed yet".
const NO_MARKER: (usize, u32) = (usize::MAX, u32::MAX);

/// How many members of a `total`-machine cluster must pass before the
/// deployment wave advances, at pass-fraction `threshold`.
///
/// Clamped to at least one machine for non-empty clusters — a
/// `threshold` of `0.0` must not let a wave skip a cluster nobody has
/// tested (this mirrors the `.max(1.0)` in `mirage-sim`'s latency
/// accounting, keeping protocol advancement and latency scoring
/// consistent). Empty clusters need zero passes.
fn ceil_threshold(total: usize, threshold: f64) -> usize {
    if total == 0 {
        return 0;
    }
    (((total as f64) * threshold).ceil() as usize).max(1)
}

/// Deduplicated machine list in plan order (== ascending id order,
/// because the plan's table interns members front to back).
fn unique_machines(plan: &DeployPlan) -> Vec<MachineId> {
    let mut machines = Vec::with_capacity(plan.machines.len());
    let mut seen = MachineSet::new();
    for m in plan.all_machines() {
        if seen.insert(m) {
            machines.push(m);
        }
    }
    machines
}

/// The NoStaging baseline: one giant cluster, everyone a representative.
///
/// Promotes deployment speed at the cost of maximum upgrade overhead —
/// every machine affected by a problem tests the faulty upgrade. The
/// vendor would use this for simple, urgent upgrades such as security
/// patches.
#[derive(Debug, Clone)]
pub struct NoStaging {
    /// Per-machine status, indexed by [`MachineId`].
    status: Vec<MachineStatus>,
    /// Deduplicated machine list in plan (== id) order.
    machines: Vec<MachineId>,
    /// Last failure signature per machine, for targeted re-notification.
    failed_problem: Vec<Option<ProblemId>>,
    /// Release each machine was most recently notified for; reports
    /// carrying an older release are stale duplicates and ignored.
    notified_release: Vec<u32>,
    /// Machines waived by timeout-based degradation (see
    /// [`Protocol::on_tick`]); disjoint from `Passed` machines.
    waived: MachineSet,
    /// Quiet-time budget before waiving blockers; `None` disables the
    /// stall detector (the reliable-channel default).
    rep_timeout: Option<SimTime>,
    /// Cumulative waived-machine count (`deploy.rep_timeouts`).
    timeouts: u64,
    /// Stall detector state: last observed `(passed, release)` marker
    /// and when it last moved.
    last_marker: (usize, u32),
    last_change: SimTime,
    passed: usize,
    release: Release,
    completed: bool,
    telemetry: Telemetry,
}

impl NoStaging {
    /// Creates the protocol over a plan (cluster structure is ignored).
    ///
    /// # Panics
    ///
    /// Panics if the plan's clusters reference ids outside its
    /// [`MachineTable`](crate::MachineTable) (impossible for plans built
    /// via [`DeployPlan::from_named`] / [`DeployPlan::from_clustering`]).
    pub fn new(plan: DeployPlan) -> Self {
        let n = plan.machines.len();
        let machines = unique_machines(&plan);
        for &m in &machines {
            assert!(m.index() < n, "cluster member {m} outside machine table");
        }
        NoStaging {
            status: vec![MachineStatus::Idle; n],
            machines,
            failed_problem: vec![None; n],
            notified_release: vec![0; n],
            waived: MachineSet::new(),
            rep_timeout: None,
            timeouts: 0,
            last_marker: NO_MARKER,
            last_change: 0,
            passed: 0,
            release: Release(0),
            completed: false,
            telemetry: Telemetry::noop(),
        }
    }

    /// Attaches a telemetry handle recording notification counters.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables timeout-based degradation: when no progress is observed
    /// for `timeout` ticks, machines still testing are waived so the
    /// deployment can complete around crashed fleet members.
    pub fn with_rep_timeout(mut self, timeout: SimTime) -> Self {
        self.rep_timeout = Some(timeout);
        self
    }

    fn completion(&mut self) -> Vec<Command> {
        if !self.completed && self.done() {
            self.completed = true;
            vec![Command::Complete]
        } else {
            Vec::new()
        }
    }
}

impl Protocol for NoStaging {
    fn name(&self) -> &'static str {
        "NoStaging"
    }

    fn start(&mut self) -> Vec<Command> {
        let machines = self.machines.clone();
        for &m in &machines {
            self.status[m.index()] = MachineStatus::Testing;
        }
        if machines.is_empty() {
            self.completed = true;
            return vec![Command::Complete];
        }
        self.telemetry.counter("deploy.notify_commands", 1);
        self.telemetry
            .counter("deploy.machines_notified", machines.len() as u64);
        vec![Command::Notify {
            machines,
            release: self.release,
        }]
    }

    fn on_report(&mut self, report: &TestReport) -> Vec<Command> {
        let idx = report.machine.index();
        // Unreliable-channel idempotence: ignore stale reports for a
        // release older than the machine's latest notification, and
        // never demote a machine that already passed (a duplicated
        // delivery must be a strict no-op).
        if report.release.0 < self.notified_release[idx]
            || self.status[idx] == MachineStatus::Passed
        {
            return Vec::new();
        }
        // Any report proves the machine is alive: un-waive it so
        // completion waits for its real outcome.
        self.waived.remove(report.machine);
        let status = match report.outcome {
            TestOutcome::Pass => MachineStatus::Passed,
            TestOutcome::Fail { problem } => {
                self.failed_problem[idx] = Some(problem);
                MachineStatus::Failed
            }
        };
        let previous = std::mem::replace(&mut self.status[idx], status);
        if status == MachineStatus::Passed && previous != MachineStatus::Passed {
            self.passed += 1;
        }
        self.completion()
    }

    fn absorb_passes(&mut self, reports: &[(MachineId, Release)]) -> usize {
        let total = self.machines.len();
        let mut absorbed = 0;
        for &(m, r) in reports {
            let idx = m.index();
            if r.0 < self.notified_release[idx] || self.status[idx] == MachineStatus::Passed {
                // Stale or duplicated delivery: `on_report` is a strict
                // no-op, so absorbing it is free.
                absorbed += 1;
                continue;
            }
            // Applying this pass must not flip `done()` — the Complete
            // command has to come out of the full `on_report` path.
            let waived_here = usize::from(self.waived.contains(m));
            if !self.completed && self.passed + 1 + self.waived.len() - waived_here >= total {
                break;
            }
            self.waived.remove(m);
            self.status[idx] = MachineStatus::Passed;
            self.passed += 1;
            absorbed += 1;
        }
        absorbed
    }

    /// Order-free all-or-nothing batch absorption (see
    /// [`Protocol::absorb_pass_batch`]). A batch is safe exactly when no
    /// applicable report un-waives a machine and the final pass count
    /// stays short of completion: pass counting is monotone, so if the
    /// final count is below the bound every intermediate ordering is
    /// too. Duplicated machines in the batch are double-counted by the
    /// check, which can only tighten the rejection.
    fn absorb_pass_batch(&mut self, reports: &[(MachineId, Release)]) -> bool {
        let total = self.machines.len();
        let mut applicable = 0usize;
        for &(m, r) in reports {
            let idx = m.index();
            if r.0 < self.notified_release[idx] || self.status[idx] == MachineStatus::Passed {
                // Stale or duplicated delivery: a strict no-op in any order.
                continue;
            }
            if self.waived.contains(m) {
                // Un-waiving backs out completion arithmetic — slow path.
                return false;
            }
            applicable += 1;
        }
        if !self.completed && self.passed + applicable + self.waived.len() >= total {
            // Some ordering would flip `done()` mid-batch; the Complete
            // command has to come out of the full `on_report` path.
            return false;
        }
        for &(m, r) in reports {
            let idx = m.index();
            if r.0 < self.notified_release[idx] || self.status[idx] == MachineStatus::Passed {
                continue;
            }
            self.status[idx] = MachineStatus::Passed;
            self.passed += 1;
        }
        true
    }

    fn on_release(&mut self, release: Release, fixed: &ProblemSet) -> Vec<Command> {
        self.release = release;
        let failed: Vec<MachineId> = self
            .machines
            .iter()
            .copied()
            .filter(|m| {
                self.status[m.index()] == MachineStatus::Failed
                    && self.failed_problem[m.index()].is_none_or(|p| fixed.contains(p))
            })
            .collect();
        for &m in &failed {
            self.status[m.index()] = MachineStatus::Testing;
            self.notified_release[m.index()] = release.0;
        }
        if failed.is_empty() {
            return self.completion();
        }
        self.telemetry.counter("deploy.notify_commands", 1);
        self.telemetry
            .counter("deploy.machines_notified", failed.len() as u64);
        vec![Command::Notify {
            machines: failed,
            release,
        }]
    }

    fn on_tick(&mut self, now: SimTime) -> Vec<Command> {
        let Some(timeout) = self.rep_timeout else {
            return Vec::new();
        };
        if self.completed {
            return Vec::new();
        }
        let marker = (self.passed + self.waived.len(), self.release.0);
        if marker != self.last_marker {
            self.last_marker = marker;
            self.last_change = now;
            return Vec::new();
        }
        if now.saturating_sub(self.last_change) < timeout {
            return Vec::new();
        }
        // Stalled past the budget: waive every machine still testing —
        // its report (and the driver's retries) would have landed by
        // now if it were coming.
        let mut newly_waived = Vec::new();
        for (idx, st) in self.status.iter().enumerate() {
            if *st == MachineStatus::Testing && self.waived.insert(MachineId(idx as u32)) {
                self.timeouts += 1;
                newly_waived.push(idx as u32);
            }
        }
        for machine in newly_waived {
            self.telemetry.journal(JournalEvent::Waiver {
                machine,
                release: self.release.0,
            });
        }
        self.last_change = now;
        self.completion()
    }

    fn rep_timeouts(&self) -> u64 {
        self.timeouts
    }

    fn done(&self) -> bool {
        self.passed + self.waived.len() == self.machines.len()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// FrontLoading phase 1: all representatives in parallel.
    GlobalReps,
    /// Sequential deployment at position `i` of the order.
    Cluster(usize),
    /// All clusters advanced; waiting for stragglers.
    Draining,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClusterStage {
    Reps,
    NonReps,
}

/// Sentinel for "machine belongs to no cluster" in the dense
/// machine→cluster index.
const NO_CLUSTER: u32 = u32::MAX;

/// The shared engine behind [`Balanced`] and [`FrontLoading`].
#[derive(Debug, Clone)]
struct StagedEngine {
    plan: DeployPlan,
    order: Vec<usize>,
    threshold: f64,
    global_rep_phase: bool,
    /// Per-machine status, indexed by [`MachineId`].
    status: Vec<MachineStatus>,
    /// Deduplicated machine list in plan (== id) order.
    machines: Vec<MachineId>,
    /// Machine → cluster index (last containing cluster wins), for O(1)
    /// counter updates. [`NO_CLUSTER`] when unclustered.
    cluster_of: Vec<u32>,
    /// Machines that count as representatives *of their own cluster*
    /// (per `cluster_of`), so `reps_passed` matches the rep definition
    /// the wave logic uses.
    counted_rep: MachineSet,
    /// Passed-machine count per cluster index.
    cluster_passed: Vec<usize>,
    /// Passed representatives (fleet-wide).
    reps_passed: usize,
    total_reps: usize,
    total_passed: usize,
    release: Release,
    phase: Phase,
    stage: ClusterStage,
    /// Last failure signature per machine, for targeted re-notification.
    failed_problem: Vec<Option<ProblemId>>,
    /// Release each machine was most recently notified for; reports
    /// carrying an older release are stale duplicates and ignored.
    notified_release: Vec<u32>,
    /// Machines waived by timeout-based degradation; disjoint from
    /// `Passed` machines (a report un-waives).
    waived: MachineSet,
    /// Waived-machine count per cluster index (mirrors
    /// `cluster_passed` in the wave-advancement arithmetic).
    cluster_waived: Vec<usize>,
    /// Waived counted representatives (mirrors `reps_passed`).
    waived_reps: usize,
    /// Quiet-time budget before waiving the current phase's blockers;
    /// `None` disables the stall detector (reliable-channel default).
    rep_timeout: Option<SimTime>,
    /// Cumulative waived-machine count (`deploy.rep_timeouts`).
    timeouts: u64,
    /// Stall detector state: last `(passed + waived, release)` marker
    /// and when it last moved.
    last_marker: (usize, u32),
    last_change: SimTime,
    completed: bool,
    telemetry: Telemetry,
}

impl StagedEngine {
    fn new(plan: DeployPlan, order: Vec<usize>, threshold: f64, global_rep_phase: bool) -> Self {
        assert_eq!(
            order.len(),
            plan.clusters.len(),
            "order must cover every cluster exactly once"
        );
        let n = plan.machines.len();
        let machines = unique_machines(&plan);
        let mut cluster_of = vec![NO_CLUSTER; n];
        for (i, c) in plan.clusters.iter().enumerate() {
            for &m in &c.members {
                assert!(m.index() < n, "cluster member {m} outside machine table");
                cluster_of[m.index()] = i as u32;
            }
        }
        let mut counted_rep = MachineSet::new();
        for (i, c) in plan.clusters.iter().enumerate() {
            for &r in &c.reps {
                if cluster_of[r.index()] == i as u32 {
                    counted_rep.insert(r);
                }
            }
        }
        let total_reps = plan.clusters.iter().map(|c| c.reps.len()).sum();
        let cluster_count = plan.clusters.len();
        let cluster_passed = vec![0; cluster_count];
        StagedEngine {
            plan,
            order,
            threshold,
            global_rep_phase,
            status: vec![MachineStatus::Idle; n],
            machines,
            cluster_of,
            counted_rep,
            cluster_passed,
            reps_passed: 0,
            total_reps,
            total_passed: 0,
            release: Release(0),
            phase: if global_rep_phase {
                Phase::GlobalReps
            } else {
                Phase::Cluster(0)
            },
            stage: ClusterStage::Reps,
            failed_problem: vec![None; n],
            notified_release: vec![0; n],
            waived: MachineSet::new(),
            cluster_waived: vec![0; cluster_count],
            waived_reps: 0,
            rep_timeout: None,
            timeouts: 0,
            last_marker: NO_MARKER,
            last_change: 0,
            completed: false,
            telemetry: Telemetry::noop(),
        }
    }

    fn notify(&mut self, machines: Vec<MachineId>, out: &mut Vec<Command>) {
        let fresh: Vec<MachineId> = machines
            .into_iter()
            .filter(|m| {
                matches!(
                    self.status[m.index()],
                    MachineStatus::Idle | MachineStatus::Failed
                )
            })
            .collect();
        if fresh.is_empty() {
            return;
        }
        for &m in &fresh {
            self.status[m.index()] = MachineStatus::Testing;
            self.notified_release[m.index()] = self.release.0;
        }
        self.telemetry.counter("deploy.notify_commands", 1);
        self.telemetry
            .counter("deploy.machines_notified", fresh.len() as u64);
        out.push(Command::Notify {
            machines: fresh,
            release: self.release,
        });
    }

    fn all_passed(&self, machines: &[MachineId]) -> bool {
        machines
            .iter()
            .all(|m| self.status[m.index()] == MachineStatus::Passed || self.waived.contains(*m))
    }

    fn all_reps(&self) -> Vec<MachineId> {
        self.plan
            .clusters
            .iter()
            .flat_map(|c| c.reps.iter().copied())
            .collect()
    }

    /// Runs phase/stage transitions until quiescent, collecting commands.
    fn step(&mut self, out: &mut Vec<Command>) {
        loop {
            match self.phase {
                Phase::GlobalReps => {
                    if self.reps_passed + self.waived_reps == self.total_reps {
                        self.phase = Phase::Cluster(0);
                        self.stage = ClusterStage::NonReps;
                        if let Some(&cid) = self.order.first() {
                            self.telemetry.counter("deploy.waves_advanced", 1);
                            self.telemetry.event(FlightEvent::WaveAdvanced {
                                wave: 0,
                                cluster: cid,
                            });
                            self.telemetry.journal(JournalEvent::WaveAdvance {
                                wave: 0,
                                cluster: cid as u32,
                            });
                            let non_reps = self.plan.clusters[cid].non_reps();
                            self.notify(non_reps, out);
                        }
                        continue;
                    }
                    break;
                }
                Phase::Cluster(i) => {
                    let Some(&cid) = self.order.get(i) else {
                        self.phase = Phase::Draining;
                        continue;
                    };
                    let cluster = &self.plan.clusters[cid];
                    match self.stage {
                        ClusterStage::Reps => {
                            if self.all_passed(&cluster.reps) {
                                self.stage = ClusterStage::NonReps;
                                let non_reps = cluster.non_reps();
                                self.notify(non_reps, out);
                                continue;
                            }
                            break;
                        }
                        ClusterStage::NonReps => {
                            let needed = ceil_threshold(cluster.members.len(), self.threshold);
                            if self.cluster_passed[cid] + self.cluster_waived[cid] >= needed {
                                // Advance to the next cluster.
                                if i + 1 < self.order.len() {
                                    self.phase = Phase::Cluster(i + 1);
                                    let next = self.order[i + 1];
                                    self.telemetry.counter("deploy.waves_advanced", 1);
                                    self.telemetry.event(FlightEvent::WaveAdvanced {
                                        wave: i + 1,
                                        cluster: next,
                                    });
                                    self.telemetry.journal(JournalEvent::WaveAdvance {
                                        wave: (i + 1) as u32,
                                        cluster: next as u32,
                                    });
                                    if self.global_rep_phase {
                                        // Representatives already passed in
                                        // phase 1; go straight to non-reps.
                                        self.stage = ClusterStage::NonReps;
                                        let non_reps = self.plan.clusters[next].non_reps();
                                        self.notify(non_reps, out);
                                    } else {
                                        self.stage = ClusterStage::Reps;
                                        let reps = self.plan.clusters[next].reps.clone();
                                        self.notify(reps, out);
                                    }
                                } else {
                                    self.phase = Phase::Draining;
                                }
                                continue;
                            }
                            break;
                        }
                    }
                }
                Phase::Draining => break,
            }
        }
        if !self.completed && self.done() {
            self.completed = true;
            out.push(Command::Complete);
        }
    }

    fn start(&mut self) -> Vec<Command> {
        let mut out = Vec::new();
        if self.machines.is_empty() {
            self.completed = true;
            return vec![Command::Complete];
        }
        if self.global_rep_phase {
            let reps = self.all_reps();
            self.notify(reps, &mut out);
        } else if let Some(&cid) = self.order.first() {
            let reps = self.plan.clusters[cid].reps.clone();
            self.notify(reps, &mut out);
        }
        self.step(&mut out);
        out
    }

    fn on_report(&mut self, report: &TestReport) -> Vec<Command> {
        let idx = report.machine.index();
        // Unreliable-channel idempotence: drop stale reports for a
        // release older than the machine's latest notification, and
        // never demote a machine that already passed (a duplicated
        // delivery must be a strict no-op).
        if report.release.0 < self.notified_release[idx]
            || self.status[idx] == MachineStatus::Passed
        {
            return Vec::new();
        }
        // Any report proves the machine is alive: un-waive it (and back
        // out its virtual-pass contribution) so the wave arithmetic
        // waits for its real outcome instead.
        if self.waived.remove(report.machine) {
            let cid = self.cluster_of[idx];
            if cid != NO_CLUSTER {
                self.cluster_waived[cid as usize] -= 1;
                if self.counted_rep.contains(report.machine) {
                    self.waived_reps -= 1;
                }
            }
        }
        let status = match report.outcome {
            TestOutcome::Pass => MachineStatus::Passed,
            TestOutcome::Fail { problem } => {
                self.failed_problem[idx] = Some(problem);
                MachineStatus::Failed
            }
        };
        let previous = std::mem::replace(&mut self.status[idx], status);
        if status == MachineStatus::Passed && previous != MachineStatus::Passed {
            self.total_passed += 1;
            let cid = self.cluster_of[idx];
            if cid != NO_CLUSTER {
                self.cluster_passed[cid as usize] += 1;
                if self.counted_rep.contains(report.machine) {
                    self.reps_passed += 1;
                }
            }
        }
        let mut out = Vec::new();
        self.step(&mut out);
        out
    }

    /// Batch pass-absorption (see [`Protocol::absorb_passes`]): applies
    /// the longest prefix of pass reports whose individual `on_report`
    /// calls would all have been silent — no waiver back-out, no wave
    /// advance, no completion — and stops at the first report that
    /// needs the full path.
    fn absorb_passes(&mut self, reports: &[(MachineId, Release)]) -> usize {
        let mut absorbed = 0;
        for &(m, r) in reports {
            let idx = m.index();
            if r.0 < self.notified_release[idx] || self.status[idx] == MachineStatus::Passed {
                // Stale or duplicated delivery: a strict no-op.
                absorbed += 1;
                continue;
            }
            if self.waived.contains(m) {
                // Un-waiving backs out wave arithmetic — slow path.
                break;
            }
            let cid = self.cluster_of[idx];
            let is_rep = cid != NO_CLUSTER && self.counted_rep.contains(m);
            // `step()` ran to quiescence after the previous mutation, so
            // the only transition this pass could trigger is the one its
            // own counter bump feeds. Stop one short of that bound.
            match self.phase {
                Phase::GlobalReps => {
                    if is_rep && self.reps_passed + 1 + self.waived_reps == self.total_reps {
                        break;
                    }
                }
                Phase::Cluster(i) => {
                    let Some(&active) = self.order.get(i) else {
                        break;
                    };
                    match self.stage {
                        ClusterStage::Reps => {
                            if self.plan.clusters[active].reps.contains(&m) {
                                // Could be the last rep the stage waits
                                // for (the stage checks the literal reps
                                // list, not `counted_rep`); let
                                // `on_report` decide.
                                break;
                            }
                        }
                        ClusterStage::NonReps => {
                            if cid == active as u32 {
                                let needed = ceil_threshold(
                                    self.plan.clusters[active].members.len(),
                                    self.threshold,
                                );
                                if self.cluster_passed[active] + 1 + self.cluster_waived[active]
                                    >= needed
                                {
                                    break;
                                }
                            }
                        }
                    }
                }
                Phase::Draining => {}
            }
            if !self.completed && self.total_passed + 1 + self.waived.len() == self.machines.len() {
                break;
            }
            // Mirror of `on_report`'s pass path, transitions excluded.
            self.status[idx] = MachineStatus::Passed;
            self.total_passed += 1;
            if cid != NO_CLUSTER {
                self.cluster_passed[cid as usize] += 1;
                if is_rep {
                    self.reps_passed += 1;
                }
            }
            absorbed += 1;
        }
        absorbed
    }

    /// Order-free all-or-nothing batch absorption (see
    /// [`Protocol::absorb_pass_batch`]). Acceptance requires that no
    /// ordering of the batch could advance a wave: the engine is
    /// quiescent on entry (`step()` ran after the previous mutation),
    /// every transition guard is a monotone count reaching a fixed
    /// bound, and the batch only increments counts — so checking the
    /// *final* counts against every bound covers all orderings. The
    /// order-sensitive cases (un-waiving, a literal rep of the active
    /// cluster whose stage checks the reps list directly) are rejected
    /// outright. Duplicated machines are double-counted by the check,
    /// which can only tighten the rejection.
    fn absorb_pass_batch(&mut self, reports: &[(MachineId, Release)]) -> bool {
        // The phase/stage cannot move during the check (no mutation), so
        // resolve the active cluster once.
        let active = match self.phase {
            Phase::Cluster(i) => match self.order.get(i) {
                Some(&cid) => Some(cid),
                // Inconsistent phase (step() should have drained) — be
                // conservative rather than reason about it.
                None => return false,
            },
            _ => None,
        };
        let mut applicable = 0usize;
        let mut applicable_reps = 0usize;
        let mut active_cluster_new = 0usize;
        for &(m, r) in reports {
            let idx = m.index();
            if r.0 < self.notified_release[idx] || self.status[idx] == MachineStatus::Passed {
                // Stale or duplicated delivery: a strict no-op in any order.
                continue;
            }
            if self.waived.contains(m) {
                // Un-waiving backs out wave arithmetic — slow path.
                return false;
            }
            let cid = self.cluster_of[idx];
            match self.phase {
                Phase::GlobalReps => {
                    if cid != NO_CLUSTER && self.counted_rep.contains(m) {
                        applicable_reps += 1;
                    }
                }
                Phase::Cluster(_) => {
                    let active = active.expect("resolved above");
                    match self.stage {
                        ClusterStage::Reps => {
                            if self.plan.clusters[active].reps.contains(&m) {
                                // The stage waits on the literal reps
                                // list; this pass could be the one it
                                // waits for. Slow path.
                                return false;
                            }
                        }
                        ClusterStage::NonReps => {
                            if cid == active as u32 {
                                active_cluster_new += 1;
                            }
                        }
                    }
                }
                Phase::Draining => {}
            }
            applicable += 1;
        }
        // Transition bounds against the final counts. Counts are
        // monotone and move by 1 per applied report, so staying short of
        // a bound at the end means every prefix in every order did too.
        match self.phase {
            Phase::GlobalReps => {
                if applicable_reps > 0
                    && self.reps_passed + applicable_reps + self.waived_reps >= self.total_reps
                {
                    return false;
                }
            }
            Phase::Cluster(_) => {
                if active_cluster_new > 0 {
                    let active = active.expect("resolved above");
                    let needed =
                        ceil_threshold(self.plan.clusters[active].members.len(), self.threshold);
                    if self.cluster_passed[active]
                        + active_cluster_new
                        + self.cluster_waived[active]
                        >= needed
                    {
                        return false;
                    }
                }
            }
            Phase::Draining => {}
        }
        if !self.completed
            && self.total_passed + applicable + self.waived.len() >= self.machines.len()
        {
            return false;
        }
        // Apply: the mirror of `on_report`'s pass path, transitions
        // statically excluded above.
        for &(m, r) in reports {
            let idx = m.index();
            if r.0 < self.notified_release[idx] || self.status[idx] == MachineStatus::Passed {
                continue;
            }
            self.status[idx] = MachineStatus::Passed;
            self.total_passed += 1;
            let cid = self.cluster_of[idx];
            if cid != NO_CLUSTER {
                self.cluster_passed[cid as usize] += 1;
                if self.counted_rep.contains(m) {
                    self.reps_passed += 1;
                }
            }
        }
        true
    }

    fn on_release(&mut self, release: Release, fixed: &ProblemSet) -> Vec<Command> {
        self.release = release;
        let failed: Vec<MachineId> = self
            .machines
            .iter()
            .copied()
            .filter(|m| {
                self.status[m.index()] == MachineStatus::Failed
                    && self.failed_problem[m.index()].is_none_or(|p| fixed.contains(p))
            })
            .collect();
        let mut out = Vec::new();
        self.notify(failed, &mut out);
        self.step(&mut out);
        out
    }

    /// Timeout-based stage advancement (paper §5's offline-machine
    /// degradation): when the `(passed + waived, release)` progress
    /// marker has not moved for `rep_timeout` ticks, the machines
    /// blocking the *current* phase that are still marked `Testing` are
    /// waived — their reports (and the driver's retries) would have
    /// arrived by now if they were coming — and the wave advances.
    fn on_tick(&mut self, now: SimTime) -> Vec<Command> {
        let Some(timeout) = self.rep_timeout else {
            return Vec::new();
        };
        if self.completed {
            return Vec::new();
        }
        let marker = (self.total_passed + self.waived.len(), self.release.0);
        if marker != self.last_marker {
            self.last_marker = marker;
            self.last_change = now;
            return Vec::new();
        }
        if now.saturating_sub(self.last_change) < timeout {
            return Vec::new();
        }
        let targets: Vec<MachineId> = match self.phase {
            Phase::GlobalReps => self.all_reps(),
            Phase::Cluster(i) => {
                let cid = self.order[i];
                let cluster = &self.plan.clusters[cid];
                match self.stage {
                    ClusterStage::Reps => cluster.reps.clone(),
                    ClusterStage::NonReps => cluster.members.clone(),
                }
            }
            Phase::Draining => self.machines.clone(),
        };
        let mut waived_any = false;
        for m in targets {
            let idx = m.index();
            if self.status[idx] == MachineStatus::Testing && self.waived.insert(m) {
                self.timeouts += 1;
                self.telemetry.journal(JournalEvent::Waiver {
                    machine: m.index() as u32,
                    release: self.release.0,
                });
                let cid = self.cluster_of[idx];
                if cid != NO_CLUSTER {
                    self.cluster_waived[cid as usize] += 1;
                    if self.counted_rep.contains(m) {
                        self.waived_reps += 1;
                    }
                }
                waived_any = true;
            }
        }
        self.last_change = now;
        let mut out = Vec::new();
        if waived_any {
            self.step(&mut out);
        }
        out
    }

    fn done(&self) -> bool {
        self.total_passed + self.waived.len() == self.machines.len()
    }
}

/// The Balanced protocol (paper §4.3): clusters in ascending vendor
/// distance; within each cluster, representatives before
/// non-representatives.
///
/// Low overhead with good latency: clusters most similar to the vendor —
/// the least likely to break — integrate early, and debugging is spread
/// across the deployment.
#[derive(Debug, Clone)]
pub struct Balanced {
    engine: StagedEngine,
    name: &'static str,
}

impl Balanced {
    /// Creates a Balanced deployment (ascending-distance order).
    pub fn new(plan: DeployPlan, threshold: f64) -> Self {
        let order = plan.order_by_distance_asc();
        Balanced {
            engine: StagedEngine::new(plan, order, threshold, false),
            name: "Balanced",
        }
    }

    /// Creates a staged deployment with an explicit cluster order — the
    /// paper's RandomStaging baseline when the order is shuffled.
    pub fn with_order(plan: DeployPlan, order: Vec<usize>, threshold: f64) -> Self {
        Balanced {
            engine: StagedEngine::new(plan, order, threshold, false),
            name: "RandomStaging",
        }
    }

    /// Attaches a telemetry handle recording notification counters and
    /// wave-advance events.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.engine.telemetry = telemetry;
        self
    }

    /// Enables timeout-based stage advancement (see
    /// [`NoStaging::with_rep_timeout`]).
    pub fn with_rep_timeout(mut self, timeout: SimTime) -> Self {
        self.engine.rep_timeout = Some(timeout);
        self
    }
}

impl Protocol for Balanced {
    fn name(&self) -> &'static str {
        self.name
    }
    fn start(&mut self) -> Vec<Command> {
        self.engine.start()
    }
    fn on_report(&mut self, report: &TestReport) -> Vec<Command> {
        self.engine.on_report(report)
    }
    fn absorb_passes(&mut self, reports: &[(MachineId, Release)]) -> usize {
        self.engine.absorb_passes(reports)
    }
    fn absorb_pass_batch(&mut self, reports: &[(MachineId, Release)]) -> bool {
        self.engine.absorb_pass_batch(reports)
    }
    fn on_release(&mut self, release: Release, fixed: &ProblemSet) -> Vec<Command> {
        self.engine.on_release(release, fixed)
    }
    fn on_tick(&mut self, now: SimTime) -> Vec<Command> {
        self.engine.on_tick(now)
    }
    fn rep_timeouts(&self) -> u64 {
        self.engine.timeouts
    }
    fn done(&self) -> bool {
        self.engine.done()
    }
}

/// The FrontLoading protocol (paper §4.3).
///
/// Phase 1 notifies the representatives of *all* clusters in parallel and
/// iterates fix/re-test rounds until no representative fails, giving the
/// vendor the full problem picture up front. Phase 2 then deploys to
/// non-representatives one cluster at a time in *descending* distance
/// order (the most vendor-dissimilar — most problem-prone — clusters
/// first).
#[derive(Debug, Clone)]
pub struct FrontLoading {
    engine: StagedEngine,
}

impl FrontLoading {
    /// Creates a FrontLoading deployment.
    pub fn new(plan: DeployPlan, threshold: f64) -> Self {
        let order = plan.order_by_distance_desc();
        FrontLoading {
            engine: StagedEngine::new(plan, order, threshold, true),
        }
    }

    /// Creates a FrontLoading deployment with an explicit phase-2 order.
    pub fn with_order(plan: DeployPlan, order: Vec<usize>, threshold: f64) -> Self {
        FrontLoading {
            engine: StagedEngine::new(plan, order, threshold, true),
        }
    }

    /// Attaches a telemetry handle recording notification counters and
    /// wave-advance events.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.engine.telemetry = telemetry;
        self
    }

    /// Enables timeout-based stage advancement (see
    /// [`NoStaging::with_rep_timeout`]).
    pub fn with_rep_timeout(mut self, timeout: SimTime) -> Self {
        self.engine.rep_timeout = Some(timeout);
        self
    }
}

impl Protocol for FrontLoading {
    fn name(&self) -> &'static str {
        "FrontLoading"
    }
    fn start(&mut self) -> Vec<Command> {
        self.engine.start()
    }
    fn on_report(&mut self, report: &TestReport) -> Vec<Command> {
        self.engine.on_report(report)
    }
    fn absorb_passes(&mut self, reports: &[(MachineId, Release)]) -> usize {
        self.engine.absorb_passes(reports)
    }
    fn absorb_pass_batch(&mut self, reports: &[(MachineId, Release)]) -> bool {
        self.engine.absorb_pass_batch(reports)
    }
    fn on_release(&mut self, release: Release, fixed: &ProblemSet) -> Vec<Command> {
        self.engine.on_release(release, fixed)
    }
    fn on_tick(&mut self, now: SimTime) -> Vec<Command> {
        self.engine.on_tick(now)
    }
    fn rep_timeouts(&self) -> u64 {
        self.engine.timeouts
    }
    fn done(&self) -> bool {
        self.engine.done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::TestOutcome;

    fn plan(specs: &[(&[&str], usize, f64)]) -> DeployPlan {
        DeployPlan::from_named(
            specs
                .iter()
                .map(|(members, reps, distance)| (members.iter().copied(), *reps, *distance)),
        )
    }

    /// Renders notified machines back to names via the plan's table.
    fn notified(plan: &DeployPlan, cmds: &[Command]) -> Vec<String> {
        cmds.iter()
            .flat_map(|c| match c {
                Command::Notify { machines, .. } => machines
                    .iter()
                    .map(|&m| plan.machine_name(m).to_string())
                    .collect(),
                Command::Complete => Vec::new(),
            })
            .collect()
    }

    fn pass(plan: &DeployPlan, machine: &str, release: u32) -> TestReport {
        TestReport {
            machine: plan.machine_id(machine).expect("machine in plan"),
            release: Release(release),
            outcome: TestOutcome::Pass,
        }
    }

    fn fail(plan: &DeployPlan, machine: &str, release: u32, problem: u16) -> TestReport {
        TestReport {
            machine: plan.machine_id(machine).expect("machine in plan"),
            release: Release(release),
            outcome: TestOutcome::Fail {
                problem: ProblemId(problem),
            },
        }
    }

    fn fixed(problems: &[u16]) -> ProblemSet {
        let mut s = ProblemSet::new();
        for &p in problems {
            s.insert(ProblemId(p));
        }
        s
    }

    #[test]
    fn nostaging_notifies_everyone_then_retries_failures() {
        let pl = plan(&[(&["a", "b"], 1, 0.0), (&["c"], 1, 1.0)]);
        let mut p = NoStaging::new(pl.clone());
        let cmds = p.start();
        let mut all = notified(&pl, &cmds);
        all.sort();
        assert_eq!(all, vec!["a", "b", "c"]);
        assert!(p.on_report(&pass(&pl, "a", 0)).is_empty());
        assert!(p.on_report(&fail(&pl, "b", 0, 1)).is_empty());
        assert!(p.on_report(&pass(&pl, "c", 0)).is_empty());
        assert!(!p.done());
        // Fixed release: only the failed machine is re-notified.
        let cmds = p.on_release(Release(1), &fixed(&[0, 1]));
        assert_eq!(notified(&pl, &cmds), vec!["b"]);
        let cmds = p.on_report(&pass(&pl, "b", 1));
        assert_eq!(cmds, vec![Command::Complete]);
        assert!(p.done());
    }

    #[test]
    fn nostaging_skips_failures_whose_problem_is_still_open() {
        let pl = plan(&[(&["a", "b"], 1, 0.0)]);
        let mut p = NoStaging::new(pl.clone());
        p.start();
        p.on_report(&fail(&pl, "a", 0, 7));
        p.on_report(&fail(&pl, "b", 0, 8));
        // Release fixing only problem 7 re-notifies only "a".
        let cmds = p.on_release(Release(1), &fixed(&[7]));
        assert_eq!(notified(&pl, &cmds), vec!["a"]);
    }

    #[test]
    fn balanced_walks_clusters_in_distance_order() {
        // near (distance 1) then far (distance 5).
        let pl = plan(&[(&["f1", "f2"], 1, 5.0), (&["n1", "n2"], 1, 1.0)]);
        let mut p = Balanced::new(pl.clone(), 1.0);
        // Start: reps of the nearest cluster only.
        let cmds = p.start();
        assert_eq!(notified(&pl, &cmds), vec!["n1"]);
        // Rep passes → non-reps of that cluster.
        let cmds = p.on_report(&pass(&pl, "n1", 0));
        assert_eq!(notified(&pl, &cmds), vec!["n2"]);
        // Cluster complete → next cluster's rep.
        let cmds = p.on_report(&pass(&pl, "n2", 0));
        assert_eq!(notified(&pl, &cmds), vec!["f1"]);
        let cmds = p.on_report(&pass(&pl, "f1", 0));
        assert_eq!(notified(&pl, &cmds), vec!["f2"]);
        let cmds = p.on_report(&pass(&pl, "f2", 0));
        assert_eq!(cmds, vec![Command::Complete]);
    }

    #[test]
    fn balanced_rep_failure_stalls_until_release() {
        let pl = plan(&[(&["a", "b"], 1, 0.0)]);
        let mut p = Balanced::new(pl.clone(), 1.0);
        let cmds = p.start();
        assert_eq!(notified(&pl, &cmds), vec!["a"]);
        // Rep fails: nothing moves.
        assert!(p.on_report(&fail(&pl, "a", 0, 1)).is_empty());
        // Fix ships: rep re-notified.
        let cmds = p.on_release(Release(1), &fixed(&[0, 1]));
        assert_eq!(notified(&pl, &cmds), vec!["a"]);
        // Rep passes → non-rep notified with the *fixed* release.
        let cmds = p.on_report(&pass(&pl, "a", 1));
        match &cmds[0] {
            Command::Notify { machines, release } => {
                assert_eq!(machines, &vec![pl.machine_id("b").unwrap()]);
                assert_eq!(*release, Release(1));
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmds = p.on_report(&pass(&pl, "b", 1));
        assert_eq!(cmds, vec![Command::Complete]);
    }

    #[test]
    fn threshold_advances_past_stragglers() {
        // threshold 0.5: cluster advances once half its machines passed.
        let pl = plan(&[(&["a", "b", "c", "d"], 1, 0.0), (&["z"], 1, 9.0)]);
        let mut p = Balanced::new(pl.clone(), 0.5);
        p.start();
        let cmds = p.on_report(&pass(&pl, "a", 0));
        assert_eq!(notified(&pl, &cmds), vec!["b", "c", "d"]);
        // 2/4 passed (a + b) → threshold met → next cluster despite c, d
        // still testing.
        let cmds = p.on_report(&pass(&pl, "b", 0));
        assert!(notified(&pl, &cmds).contains(&"z".to_string()));
        assert!(p.on_report(&fail(&pl, "c", 0, 1)).is_empty());
        // The straggler still gets the fix later.
        p.on_report(&pass(&pl, "d", 0));
        p.on_report(&pass(&pl, "z", 0));
        assert!(!p.done());
        let cmds = p.on_release(Release(1), &fixed(&[0, 1]));
        assert_eq!(notified(&pl, &cmds), vec!["c"]);
        let cmds = p.on_report(&pass(&pl, "c", 1));
        assert_eq!(cmds, vec![Command::Complete]);
    }

    #[test]
    fn frontloading_tests_all_reps_first() {
        let pl = plan(&[(&["a1", "a2"], 1, 1.0), (&["b1", "b2"], 1, 5.0)]);
        let mut p = FrontLoading::new(pl.clone(), 1.0);
        // Phase 1: all reps in parallel.
        let cmds = p.start();
        let mut reps = notified(&pl, &cmds);
        reps.sort();
        assert_eq!(reps, vec!["a1", "b1"]);
        // One rep fails; the other passes. Phase 2 must not start.
        assert!(p.on_report(&fail(&pl, "b1", 0, 1)).is_empty());
        assert!(p.on_report(&pass(&pl, "a1", 0)).is_empty());
        // Fix ships; failed rep re-tests.
        let cmds = p.on_release(Release(1), &fixed(&[0, 1]));
        assert_eq!(notified(&pl, &cmds), vec!["b1"]);
        // All reps passed → phase 2 starts at the *farthest* cluster (b).
        let cmds = p.on_report(&pass(&pl, "b1", 1));
        assert_eq!(notified(&pl, &cmds), vec!["b2"]);
        let cmds = p.on_report(&pass(&pl, "b2", 1));
        assert_eq!(notified(&pl, &cmds), vec!["a2"]);
        let cmds = p.on_report(&pass(&pl, "a2", 1));
        assert_eq!(cmds, vec![Command::Complete]);
    }

    #[test]
    fn random_staging_uses_given_order() {
        let pl = plan(&[(&["a"], 1, 1.0), (&["b"], 1, 2.0), (&["c"], 1, 3.0)]);
        let mut p = Balanced::with_order(pl.clone(), vec![2, 0, 1], 1.0);
        assert_eq!(p.name(), "RandomStaging");
        let cmds = p.start();
        assert_eq!(notified(&pl, &cmds), vec!["c"]);
        let cmds = p.on_report(&pass(&pl, "c", 0));
        assert_eq!(notified(&pl, &cmds), vec!["a"]);
        let cmds = p.on_report(&pass(&pl, "a", 0));
        assert_eq!(notified(&pl, &cmds), vec!["b"]);
    }

    #[test]
    fn empty_plan_completes_immediately() {
        let mut p = NoStaging::new(DeployPlan::default());
        assert_eq!(p.start(), vec![Command::Complete]);
        let mut p = Balanced::new(DeployPlan::default(), 1.0);
        assert_eq!(p.start(), vec![Command::Complete]);
        let mut p = FrontLoading::new(DeployPlan::default(), 1.0);
        assert_eq!(p.start(), vec![Command::Complete]);
    }

    #[test]
    fn single_member_clusters_cascade() {
        // Clusters whose only member is the rep: non-rep stage is empty
        // and must cascade to the next cluster without extra reports.
        let pl = plan(&[(&["a"], 1, 1.0), (&["b"], 1, 2.0)]);
        let mut p = Balanced::new(pl.clone(), 1.0);
        let cmds = p.start();
        assert_eq!(notified(&pl, &cmds), vec!["a"]);
        let cmds = p.on_report(&pass(&pl, "a", 0));
        assert_eq!(notified(&pl, &cmds), vec!["b"]);
        let cmds = p.on_report(&pass(&pl, "b", 0));
        assert_eq!(cmds, vec![Command::Complete]);
        assert!(p.done());
    }

    #[test]
    #[should_panic(expected = "order must cover")]
    fn mismatched_order_panics() {
        let _ = Balanced::with_order(plan(&[(&["a"], 1, 1.0)]), vec![0, 1], 1.0);
    }

    #[test]
    fn ceil_threshold_clamps_to_one_for_nonempty_clusters() {
        // Empty clusters need zero passes.
        assert_eq!(ceil_threshold(0, 0.0), 0);
        assert_eq!(ceil_threshold(0, 1.0), 0);
        // A zero threshold must still require one pass.
        assert_eq!(ceil_threshold(4, 0.0), 1);
        assert_eq!(ceil_threshold(1, 0.0), 1);
        // Ordinary fractions round up.
        assert_eq!(ceil_threshold(4, 0.5), 2);
        assert_eq!(ceil_threshold(5, 0.5), 3);
        assert_eq!(ceil_threshold(4, 1.0), 4);
        // Tiny thresholds on large clusters clamp up to one, not zero.
        assert_eq!(ceil_threshold(1_000, 0.0), 1);
    }

    #[test]
    fn zero_threshold_waits_for_first_pass() {
        // With threshold 0.0 the wave must not skip a cluster before at
        // least one of its machines (the rep) has passed.
        let pl = plan(&[(&["a", "b"], 1, 1.0), (&["z"], 1, 9.0)]);
        let mut p = Balanced::new(pl.clone(), 0.0);
        let cmds = p.start();
        assert_eq!(notified(&pl, &cmds), vec!["a"]);
        // Only once the rep passes does the wave advance (threshold met
        // by that single pass) — and the non-rep is still notified.
        let cmds = p.on_report(&pass(&pl, "a", 0));
        let mut next = notified(&pl, &cmds);
        next.sort();
        assert_eq!(next, vec!["b", "z"]);
    }

    #[test]
    fn empty_cluster_in_plan_is_skipped() {
        // A degenerate plan containing an empty cluster must cascade
        // straight through it rather than stalling forever.
        let pl = plan(&[(&["a"], 1, 0.0), (&[], 1, 1.0), (&["c"], 1, 2.0)]);
        let mut p = Balanced::new(pl.clone(), 1.0);
        let cmds = p.start();
        assert_eq!(notified(&pl, &cmds), vec!["a"]);
        // Passing "a" advances through the empty cluster to "c".
        let cmds = p.on_report(&pass(&pl, "a", 0));
        assert_eq!(notified(&pl, &cmds), vec!["c"]);
        let cmds = p.on_report(&pass(&pl, "c", 0));
        assert_eq!(cmds, vec![Command::Complete]);
        assert!(p.done());
    }

    /// Timeout-based degradation: a representative that never reports is
    /// waived after the quiet-time budget, the wave advances, and the
    /// `rep_timeouts` counter records the waiver. A late report from the
    /// resurrected machine un-waives it and counts its real outcome.
    #[test]
    fn rep_timeout_waives_crashed_rep_and_advances() {
        let pl = plan(&[(&["a", "b"], 1, 1.0), (&["z"], 1, 9.0)]);
        let mut p = Balanced::new(pl.clone(), 1.0).with_rep_timeout(100);
        let cmds = p.start();
        assert_eq!(notified(&pl, &cmds), vec!["a"]);
        // First tick records the progress marker; the second is inside
        // the budget; the third crosses it and waives the silent rep.
        assert!(p.on_tick(10).is_empty());
        assert!(p.on_tick(50).is_empty());
        let cmds = p.on_tick(120);
        assert_eq!(notified(&pl, &cmds), vec!["b"], "waiver advanced the wave");
        assert_eq!(p.rep_timeouts(), 1);
        // Threshold 1.0 over {a, b}: the waived rep plus b's pass meet
        // the wave-advance arithmetic.
        let cmds = p.on_report(&pass(&pl, "b", 0));
        assert!(notified(&pl, &cmds).contains(&"z".to_string()));
        let cmds = p.on_report(&pass(&pl, "z", 0));
        assert_eq!(cmds, vec![Command::Complete]);
        assert!(p.done());
        // The "crashed" rep resurrects with a late pass: un-waived and
        // counted for real; the deployment stays done.
        p.on_report(&pass(&pl, "a", 0));
        assert!(p.done());
        assert_eq!(p.rep_timeouts(), 1, "cumulative counter never decrements");
    }

    /// Regression (unreliable channels): replaying an already-delivered
    /// report must not change `deploy.machines_notified` — a duplicated
    /// Pass/Fail delivery is a strict no-op and triggers no
    /// re-notification wave.
    #[test]
    fn replayed_reports_leave_machines_notified_unchanged() {
        use std::sync::Arc;

        use mirage_telemetry::Registry;

        use crate::dispatch::ProtocolChoice;

        let pl = plan(&[(&["a", "b"], 1, 1.0), (&["z"], 1, 9.0)]);
        for choice in [
            ProtocolChoice::NoStaging,
            ProtocolChoice::Balanced,
            ProtocolChoice::FrontLoading,
        ] {
            let name = choice.name();
            let registry = Arc::new(Registry::new(64));
            let mut p = choice
                .build(pl.clone(), 1.0)
                .with_telemetry(Telemetry::from_registry(Arc::clone(&registry)));
            let cmds = p.start();
            let first = match &cmds[0] {
                Command::Notify { machines, .. } => machines[0],
                other => panic!("{name}: unexpected {other:?}"),
            };
            let report = TestReport {
                machine: first,
                release: Release(0),
                outcome: TestOutcome::Pass,
            };
            p.on_report(&report);
            let before = registry.snapshot().counters["deploy.machines_notified"];
            // Replay the same report three times: counters must not move
            // and no commands may be emitted.
            for _ in 0..3 {
                assert!(
                    p.on_report(&report).is_empty(),
                    "{name}: replayed report emitted commands"
                );
            }
            let after = registry.snapshot().counters["deploy.machines_notified"];
            assert_eq!(before, after, "{name}: replay changed machines_notified");
        }
    }

    /// The batch fast path must be observationally identical to the
    /// per-report path: drive the same pass storm through `on_report`
    /// alone and through `absorb_passes` + `on_report` fallback, and
    /// compare every emitted command stream.
    #[test]
    fn absorb_passes_matches_on_report() {
        use crate::dispatch::ProtocolChoice;

        let pl = plan(&[
            (&["a0", "a1", "a2", "a3"], 1, 1.0),
            (&["b0", "b1", "b2", "b3"], 2, 2.0),
        ]);
        for choice in [
            ProtocolChoice::NoStaging,
            ProtocolChoice::Balanced,
            ProtocolChoice::FrontLoading,
            ProtocolChoice::RandomStaging { seed: 5 },
        ] {
            for threshold in [1.0, 0.75, 0.5] {
                let mut slow = choice.build(pl.clone(), threshold);
                let mut fast = choice.build(pl.clone(), threshold);
                let mut slow_cmds = slow.start();
                assert_eq!(slow_cmds, fast.start());
                // Keep delivering passes for whatever was notified until
                // both complete, replaying each report once (duplicate).
                for round in 0..8 {
                    let notified: Vec<(MachineId, Release)> = slow_cmds
                        .iter()
                        .flat_map(|c| match c {
                            Command::Notify { machines, release } => {
                                machines.iter().map(|&m| (m, *release)).collect()
                            }
                            Command::Complete => Vec::new(),
                        })
                        .collect();
                    if notified.is_empty() {
                        break;
                    }
                    // Duplicate every other report to exercise the
                    // stale/duplicate absorption arm.
                    let mut reports = Vec::new();
                    for (i, &r) in notified.iter().enumerate() {
                        reports.push(r);
                        if i % 2 == 1 {
                            reports.push(r);
                        }
                    }
                    slow_cmds = Vec::new();
                    for &(m, release) in &reports {
                        slow_cmds.extend(slow.on_report(&TestReport {
                            machine: m,
                            release,
                            outcome: TestOutcome::Pass,
                        }));
                    }
                    let mut fast_cmds = Vec::new();
                    let mut rest: &[(MachineId, Release)] = &reports;
                    while !rest.is_empty() {
                        let k = fast.absorb_passes(rest);
                        rest = &rest[k..];
                        if let Some(&(m, release)) = rest.first() {
                            fast_cmds.extend(fast.on_report(&TestReport {
                                machine: m,
                                release,
                                outcome: TestOutcome::Pass,
                            }));
                            rest = &rest[1..];
                        }
                    }
                    assert_eq!(
                        slow_cmds,
                        fast_cmds,
                        "{} t={threshold} round {round}",
                        choice.name()
                    );
                }
                assert_eq!(slow.done(), fast.done(), "{}", choice.name());
                assert!(slow.done(), "{} never completed", choice.name());
            }
        }
    }

    /// Drives every protocol to completion twice — once report-by-report,
    /// once absorbing the first half of each wave through
    /// `absorb_pass_batch` in *reversed* order (exercising the order-free
    /// contract) — and checks the command streams stay identical whether
    /// the batch was accepted or rejected.
    #[test]
    fn absorb_pass_batch_matches_on_report() {
        use crate::dispatch::ProtocolChoice;

        let pl = plan(&[
            (&["a0", "a1", "a2", "a3"], 1, 1.0),
            (&["b0", "b1", "b2", "b3"], 2, 2.0),
        ]);
        let mut accepted_batches = 0usize;
        for choice in [
            ProtocolChoice::NoStaging,
            ProtocolChoice::Balanced,
            ProtocolChoice::FrontLoading,
            ProtocolChoice::RandomStaging { seed: 5 },
        ] {
            for threshold in [1.0, 0.75, 0.5] {
                let mut slow = choice.build(pl.clone(), threshold);
                let mut fast = choice.build(pl.clone(), threshold);
                let mut slow_cmds = slow.start();
                assert_eq!(slow_cmds, fast.start());
                for round in 0..8 {
                    let notified: Vec<(MachineId, Release)> = slow_cmds
                        .iter()
                        .flat_map(|c| match c {
                            Command::Notify { machines, release } => {
                                machines.iter().map(|&m| (m, *release)).collect()
                            }
                            Command::Complete => Vec::new(),
                        })
                        .collect();
                    if notified.is_empty() {
                        break;
                    }
                    // Duplicate every other report to exercise the
                    // stale/duplicate skip arm of the batch check.
                    let mut reports = Vec::new();
                    for (i, &r) in notified.iter().enumerate() {
                        reports.push(r);
                        if i % 2 == 1 {
                            reports.push(r);
                        }
                    }
                    slow_cmds = Vec::new();
                    for &(m, release) in &reports {
                        slow_cmds.extend(slow.on_report(&TestReport {
                            machine: m,
                            release,
                            outcome: TestOutcome::Pass,
                        }));
                    }
                    let split = reports.len() / 2;
                    let mut head: Vec<(MachineId, Release)> = reports[..split].to_vec();
                    head.reverse();
                    let accepted = fast.absorb_pass_batch(&head);
                    if accepted {
                        accepted_batches += 1;
                    }
                    let mut fast_cmds = Vec::new();
                    let start = if accepted { split } else { 0 };
                    for &(m, release) in &reports[start..] {
                        fast_cmds.extend(fast.on_report(&TestReport {
                            machine: m,
                            release,
                            outcome: TestOutcome::Pass,
                        }));
                    }
                    // An accepted batch was, by contract, silent under the
                    // slow path too, so the streams match either way.
                    assert_eq!(
                        slow_cmds,
                        fast_cmds,
                        "{} t={threshold} round {round}",
                        choice.name()
                    );
                }
                assert_eq!(slow.done(), fast.done(), "{}", choice.name());
                assert!(slow.done(), "{} never completed", choice.name());
            }
        }
        assert!(
            accepted_batches > 0,
            "the batch fast path never fired across the whole matrix"
        );
    }

    /// The all-or-nothing arm: batches that would complete the
    /// deployment, touch an active-stage representative, or un-waive a
    /// machine are refused with no state change.
    #[test]
    fn absorb_pass_batch_rejects_transitions_atomically() {
        // A batch completing NoStaging is refused; a partial batch lands
        // and the closing report still emits Complete via on_report.
        let pl = plan(&[(&["a", "b", "c"], 1, 1.0)]);
        let id = |name: &str| pl.machine_id(name).expect("machine in plan");
        let mut p = NoStaging::new(pl.clone());
        p.start();
        let all = [
            (id("a"), Release(0)),
            (id("b"), Release(0)),
            (id("c"), Release(0)),
        ];
        assert!(
            !p.absorb_pass_batch(&all),
            "completing batch must be refused"
        );
        assert!(p.absorb_pass_batch(&all[..2]));
        assert_eq!(p.on_report(&pass(&pl, "c", 0)), vec![Command::Complete]);

        // A batch touching the active cluster's representative is
        // refused while the stage waits on the literal reps list; a
        // non-rep pass in the same state is absorbed.
        let pl = plan(&[(&["r", "n1", "n2", "n3"], 1, 1.0), (&["x"], 1, 2.0)]);
        let id = |name: &str| pl.machine_id(name).expect("machine in plan");
        let mut p = Balanced::new(pl.clone(), 1.0);
        p.start();
        assert!(!p.absorb_pass_batch(&[(id("r"), Release(0))]));
        assert!(p.absorb_pass_batch(&[(id("n1"), Release(0))]));

        // A batch containing a waived machine is refused outright.
        let pl = plan(&[(&["r", "n1", "n2", "n3"], 1, 1.0), (&["x"], 1, 2.0)]);
        let id = |name: &str| pl.machine_id(name).expect("machine in plan");
        let mut p = Balanced::new(pl.clone(), 1.0).with_rep_timeout(10);
        p.start();
        p.on_tick(5);
        let cmds = p.on_tick(50);
        assert!(
            !cmds.is_empty(),
            "stalled rep should be waived past the timeout"
        );
        assert!(!p.absorb_pass_batch(&[(id("r"), Release(0))]));
        assert!(p.absorb_pass_batch(&[(id("n1"), Release(0))]));
    }

    #[test]
    fn telemetry_counts_notifications_and_waves() {
        use std::sync::Arc;

        use mirage_telemetry::Registry;

        let registry = Arc::new(Registry::new(64));
        let t = Telemetry::from_registry(Arc::clone(&registry));
        let pl = plan(&[(&["a", "b"], 1, 1.0), (&["z"], 1, 9.0)]);
        let mut p = Balanced::new(pl.clone(), 1.0).with_telemetry(t);
        p.start();
        p.on_report(&pass(&pl, "a", 0));
        p.on_report(&pass(&pl, "b", 0));
        p.on_report(&pass(&pl, "z", 0));
        let snap = registry.snapshot();
        // start→a, a→b, cluster advance→z: three Notify commands.
        assert_eq!(snap.counters["deploy.notify_commands"], 3);
        assert_eq!(snap.counters["deploy.machines_notified"], 3);
        assert_eq!(snap.counters["deploy.waves_advanced"], 1);
        assert_eq!(snap.event_counts["wave_advanced"], 1);
    }
}

#[cfg(test)]
mod multi_rep_tests {
    use super::*;
    use crate::protocol::TestOutcome;

    fn plan(specs: &[(&[&str], usize, f64)]) -> DeployPlan {
        DeployPlan::from_named(
            specs
                .iter()
                .map(|(members, reps, distance)| (members.iter().copied(), *reps, *distance)),
        )
    }

    fn pass(plan: &DeployPlan, machine: &str) -> TestReport {
        pass_at(plan, machine, 0)
    }

    fn pass_at(plan: &DeployPlan, machine: &str, release: u32) -> TestReport {
        TestReport {
            machine: plan.machine_id(machine).expect("machine in plan"),
            release: Release(release),
            outcome: TestOutcome::Pass,
        }
    }

    fn fail(plan: &DeployPlan, machine: &str, problem: u16) -> TestReport {
        TestReport {
            machine: plan.machine_id(machine).expect("machine in plan"),
            release: Release(0),
            outcome: TestOutcome::Fail {
                problem: ProblemId(problem),
            },
        }
    }

    fn notified(plan: &DeployPlan, cmds: &[Command]) -> Vec<String> {
        cmds.iter()
            .flat_map(|c| match c {
                Command::Notify { machines, .. } => machines
                    .iter()
                    .map(|&m| plan.machine_name(m).to_string())
                    .collect(),
                Command::Complete => Vec::new(),
            })
            .collect()
    }

    /// Non-representatives wait for *all* representatives: one passing
    /// rep is not enough (the paper's marginal-improvement argument for
    /// multiple representatives).
    #[test]
    fn all_reps_must_pass_before_non_reps() {
        let pl = plan(&[(&["r1", "r2", "n1", "n2"], 2, 0.0)]);
        let mut p = Balanced::new(pl.clone(), 1.0);
        let cmds = p.start();
        let mut first = notified(&pl, &cmds);
        first.sort();
        assert_eq!(first, vec!["r1", "r2"]);
        // One rep passes: nothing happens yet.
        assert!(notified(&pl, &p.on_report(&pass(&pl, "r1"))).is_empty());
        // Second rep fails: still nothing.
        assert!(notified(&pl, &p.on_report(&fail(&pl, "r2", 0))).is_empty());
        // Fix ships: only the failed rep retests.
        let mut fixed = ProblemSet::new();
        fixed.insert(ProblemId(0));
        assert_eq!(notified(&pl, &p.on_release(Release(1), &fixed)), vec!["r2"]);
        // Now the non-reps go out (the retest reports the fixed release;
        // a stale release-0 report would be dropped as a duplicate).
        let mut nonreps = notified(&pl, &p.on_report(&pass_at(&pl, "r2", 1)));
        nonreps.sort();
        assert_eq!(nonreps, vec!["n1", "n2"]);
    }

    /// FrontLoading's phase 1 likewise waits for every representative of
    /// every cluster, even when failures interleave with passes.
    #[test]
    fn frontloading_phase1_with_multiple_reps() {
        let pl = plan(&[(&["a1", "a2", "a3"], 2, 0.0), (&["b1", "b2"], 1, 1.0)]);
        let mut p = FrontLoading::new(pl.clone(), 1.0);
        let cmds = p.start();
        assert_eq!(notified(&pl, &cmds).len(), 3, "all three reps in parallel");
        assert!(notified(&pl, &p.on_report(&pass(&pl, "a1"))).is_empty());
        assert!(notified(&pl, &p.on_report(&pass(&pl, "b1"))).is_empty());
        // The last rep's pass opens phase 2 at the farthest cluster.
        let cmds = p.on_report(&pass(&pl, "a2"));
        assert_eq!(notified(&pl, &cmds), vec!["b2"]);
    }
}
