//! The protocol abstraction: clock-free deployment state machines.
//!
//! Everything on this interface moves dense interned ids
//! ([`MachineId`], [`ProblemId`]) rather than names: reports and
//! commands are small `Copy`-friendly values, and the fixed-problem set
//! announced with each release is a flat [`ProblemSet`] bitset. Names
//! are resolved at the boundaries via the plan's
//! [`MachineTable`](crate::MachineTable). The previous string-keyed
//! interface survives in [`crate::reference`] for equivalence testing.

use std::fmt;

use crate::ids::{MachineId, ProblemId, ProblemSet};

/// Simulated (or wall-clock) time in abstract ticks.
///
/// Mirrored from the simulator so the vendor-side protocol hardening
/// ([`Protocol::on_tick`]) can reason about elapsed time without
/// depending on `mirage-sim`; the two crates agree this is a plain
/// `u64` tick count.
pub type SimTime = u64;

/// A release of an upgrade. Release 0 is the original; the driver bumps
/// the number each time the vendor ships a corrected version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Release(pub u32);

/// Sentinel release meaning "re-install whatever was running before
/// this campaign" — the rollback wire. A rollout controller that
/// decides to abort emits an ordinary [`Command::Notify`] carrying this
/// release, so reverts travel the same hardened notify/retry/backoff
/// path as forward deployments. Drivers treat a test of
/// `PRIOR_RELEASE` as always passing (the prior release was the
/// known-good state) and record it as a revert rather than an
/// integration.
pub const PRIOR_RELEASE: Release = Release(u32::MAX);

impl fmt::Display for Release {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The outcome of one machine testing one release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestOutcome {
    /// The upgrade integrated and behaved identically.
    Pass,
    /// Testing failed; the failure signature identifies the problem.
    Fail {
        /// Interned problem identifier (the failure signature sent to
        /// the URR, interned through a `ProblemTable`).
        problem: ProblemId,
    },
}

impl TestOutcome {
    /// Returns `true` for a pass.
    pub fn passed(&self) -> bool {
        matches!(self, TestOutcome::Pass)
    }
}

/// A test report delivered to the vendor's protocol engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestReport {
    /// Reporting machine.
    pub machine: MachineId,
    /// Release that was tested.
    pub release: Release,
    /// Outcome.
    pub outcome: TestOutcome,
}

/// A command emitted by a protocol for the driver to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Notify these machines that `release` is available; each will
    /// download, test, and report.
    Notify {
        /// Machines to notify, in protocol-determined order.
        machines: Vec<MachineId>,
        /// Release to test.
        release: Release,
    },
    /// Deployment finished: every machine passed.
    Complete,
}

/// A deployment protocol as a pure state machine.
///
/// The driver contract:
///
/// 1. call [`Protocol::start`] once and execute the commands;
/// 2. deliver every test report via [`Protocol::on_report`];
/// 3. when the vendor ships a corrected release, announce it via
///    [`Protocol::on_release`] (the driver owns fix scheduling);
/// 4. keep executing returned commands until [`Command::Complete`].
///
/// Protocols never block and never consult a clock, which is what lets
/// the same implementations run under simulated time and in live
/// deployments.
pub trait Protocol {
    /// Protocol name for reporting.
    fn name(&self) -> &'static str;

    /// Begins deployment of release 0.
    fn start(&mut self) -> Vec<Command>;

    /// Handles a test report.
    fn on_report(&mut self, report: &TestReport) -> Vec<Command>;

    /// Absorbs a maximal prefix of consecutive *passing* test reports
    /// in one call, returning how many were absorbed.
    ///
    /// Contract: absorbing `k` reports must be exactly equivalent to
    /// `k` successive [`Protocol::on_report`] calls (each with
    /// [`TestOutcome::Pass`]) every one of which would have returned no
    /// commands and recorded no telemetry. Implementations stop at the
    /// first report that would emit a command, advance a wave, back out
    /// a waiver, or complete the deployment — the caller routes that
    /// report (and everything after it) through `on_report` as usual.
    ///
    /// This is the batch fast path the parallel simulation driver leans
    /// on: pass-report storms (the overwhelmingly common case in a
    /// healthy fleet) collapse into a tight counter loop instead of a
    /// per-report dispatch. The default absorbs nothing, which is
    /// always correct.
    fn absorb_passes(&mut self, _reports: &[(MachineId, Release)]) -> usize {
        0
    }

    /// Absorbs a whole batch of passing test reports in **one shot,
    /// order-free** — or refuses and mutates nothing.
    ///
    /// Contract: returning `true` means every report in `reports` was
    /// applied and the resulting state is exactly what `k` successive
    /// silent [`Protocol::on_report`] calls (each with
    /// [`TestOutcome::Pass`]) would have produced **in any order** —
    /// which requires that no ordering of the batch could have emitted
    /// a command, advanced a wave, backed out a waiver, or completed
    /// the deployment part-way through. Returning `false` means the
    /// batch was rejected *without any state change*; the caller must
    /// route every report through the ordered path instead.
    /// Implementations may reject conservatively; the default rejects
    /// everything, which is always correct.
    ///
    /// This is the wave-scale fast path of the parallel simulation
    /// driver: a time bucket whose reports all pass (the common case —
    /// an entire cluster's machines reporting in one simulated instant)
    /// collapses into two linear scans with no per-report dispatch and
    /// no ordering constraint, so shards can hand over their reports
    /// without a merge.
    fn absorb_pass_batch(&mut self, _reports: &[(MachineId, Release)]) -> bool {
        false
    }

    /// Handles the vendor shipping a corrected release.
    ///
    /// `fixed` is the *cumulative* set of problems the release fixes;
    /// protocols use it to re-notify exactly the failed machines whose
    /// reported problem is now addressed (re-testing a machine whose
    /// problem is still open would only inflate the upgrade overhead).
    fn on_release(&mut self, release: Release, fixed: &ProblemSet) -> Vec<Command>;

    /// Periodic timer callback from the driver (only invoked when a
    /// fault plan is active).
    ///
    /// Protocols use ticks to detect representatives that will *never*
    /// report (crashed mid-stage, left the fleet) and degrade
    /// gracefully: after a configured timeout with no forward progress
    /// the blocking machines are waived and the stage advances. The
    /// default implementation does nothing, preserving the clock-free
    /// contract for reliable channels.
    fn on_tick(&mut self, _now: SimTime) -> Vec<Command> {
        Vec::new()
    }

    /// Number of machines waived by timeout-based stage advancement
    /// (the `deploy.rep_timeouts` counter). Zero for protocols that
    /// never tick.
    fn rep_timeouts(&self) -> u64 {
        0
    }

    /// Returns `true` when the protocol needs [`Protocol::on_tick`]
    /// callbacks even on a reliable channel (no fault plan). Rollout
    /// controllers use ticks as their decision clock — bake timers and
    /// URR guard evaluation run on ticks — so drivers arm the periodic
    /// timer whenever this returns `true`. The default is `false`,
    /// which keeps the classic protocols clock-free and the driver's
    /// reliable-channel fast path bit-identical to the pre-rollout
    /// simulator.
    fn wants_ticks(&self) -> bool {
        false
    }

    /// Returns `true` once every machine has passed (or, under an
    /// active fault plan, has been waived by timeout).
    fn done(&self) -> bool;
}

/// Per-machine deployment status tracked by protocol implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MachineStatus {
    /// Not yet told about the upgrade.
    #[default]
    Idle,
    /// Notified; a report is pending.
    Testing,
    /// Failed the most recent release it tested.
    Failed,
    /// Passed (the upgrade is integrated).
    Passed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_helpers() {
        assert!(TestOutcome::Pass.passed());
        assert!(!TestOutcome::Fail {
            problem: ProblemId(0)
        }
        .passed());
    }

    #[test]
    fn release_display_and_order() {
        assert_eq!(Release(3).to_string(), "r3");
        assert!(Release(1) < Release(2));
        assert_eq!(Release::default(), Release(0));
    }

    #[test]
    fn reports_are_copy() {
        // The simulator relies on reports/outcomes being tiny Copy values.
        fn assert_copy<T: Copy>() {}
        assert_copy::<TestReport>();
        assert_copy::<TestOutcome>();
        assert_copy::<MachineId>();
        assert_copy::<ProblemId>();
    }
}
