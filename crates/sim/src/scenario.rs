//! Simulation scenarios: cluster structure, timings, problem placement.
//!
//! Scenarios are fully *interned*: problem placement, offline windows,
//! and missed-detection flags are dense per-machine vectors indexed by
//! [`MachineId`], so the simulator's inner loop never touches a string
//! or a tree map. Names exist only at the boundaries, through the
//! plan's machine table and the scenario's [`ProblemTable`].

use std::collections::BTreeMap;
use std::sync::Arc;

use mirage_deploy::{DeployPlan, MachineId, MachineSet, ProblemId, ProblemTable};
use mirage_report::{DurableUrr, Urr};
use mirage_rollout::{GuardSettings, RolloutStrategy};

use crate::engine::SimTime;
use crate::faults::{FaultPlan, FaultSpec};

/// The three time constants of the paper's simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timings {
    /// Time for a machine to download an upgrade.
    pub download: u64,
    /// Time for a machine to test an upgrade.
    pub test: u64,
    /// Time for the vendor to debug and fix one problem.
    pub fix: u64,
}

impl Timings {
    /// The paper's configuration: download 5, test 10, fix 500 — chosen
    /// to mimic minutes of download/test against a day of debugging.
    pub fn paper_default() -> Self {
        Timings {
            download: 5,
            test: 10,
            fix: 500,
        }
    }

    /// Round-trip for one machine: download + test.
    pub fn machine_cycle(&self) -> u64 {
        self.download + self.test
    }
}

/// A complete simulation scenario.
///
/// All per-machine state is stored in dense vectors indexed by
/// [`MachineId`]; use the name-based helpers ([`Scenario::assign_problem`],
/// [`Scenario::problem_populations`], …) at boundaries.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The deployment plan (clusters, reps, distances). Owns the
    /// machine name ↔ id table.
    pub plan: DeployPlan,
    /// Problem name ↔ id table for this scenario.
    pub problems: ProblemTable,
    /// Per-machine problem assignment (`None` = healthy): a machine
    /// fails any release in which its problem is not yet fixed.
    pub machine_problem: Vec<Option<ProblemId>>,
    /// Time constants.
    pub timings: Timings,
    /// Fraction of a cluster's machines that must pass before staged
    /// protocols advance.
    pub threshold: f64,
    /// Per-machine offline horizon (`0` = always online): a
    /// notification delivered while offline is acted on when the
    /// machine comes back (the paper's "late arrivals", which motivate
    /// the threshold).
    pub offline_until: Vec<SimTime>,
    /// Machines whose user-machine testing *misses* their problem: the
    /// faulty upgrade passes testing and integrates — the survey's
    /// "problems that pass initial testing" phenomenon. The paper's
    /// simulations assume perfect testing; this knob relaxes that.
    pub missed_detection: MachineSet,
    /// The fault-injection plan for this run. [`FaultPlan::none`] (the
    /// default) keeps the original reliable-channel fast path and is
    /// bit-identical to the pre-fault simulator.
    pub faults: FaultPlan,
    /// Optional Upgrade Report Repository: when attached (via
    /// [`ScenarioBuilder::with_urr`]) every vendor-received test outcome
    /// is also deposited as a structured report. `None` (the default)
    /// keeps the simulator bit-identical to the unwired driver.
    pub urr: Option<Arc<Urr>>,
    /// Optional durable wrapper around [`Scenario::urr`] (set via
    /// [`ScenarioBuilder::with_durable_urr`]): when present, the
    /// simulator's repository deposits are journaled through
    /// [`mirage_report::DurableUrr`] — every flushed batch hits the
    /// write-ahead log before it is applied, so a campaign's repository
    /// survives a vendor crash and can be recovered and re-queried.
    pub durable: Option<Arc<DurableUrr>>,
    /// Preferred worker (shard) count for the parallel driver, set via
    /// [`ScenarioBuilder::with_workers`]. `None` defers to the
    /// `MIRAGE_SIM_THREADS` environment variable and then the host's
    /// available parallelism (see [`crate::parallel::resolve_workers`]).
    /// Purely a scheduling hint: results are bit-identical at every
    /// worker count.
    pub workers: Option<usize>,
    /// Optional rollout strategy (set via
    /// [`ScenarioBuilder::with_strategy`]): when present,
    /// [`crate::run_rollout`] drives the fleet through a
    /// [`mirage_rollout::RolloutController`] instead of a bare staging
    /// protocol.
    pub strategy: Option<RolloutStrategy>,
    /// Optional URR guard thresholds (set via
    /// [`ScenarioBuilder::with_guard`]): requires [`Scenario::urr`];
    /// the controller then evaluates live repository health each tick
    /// and rolls back automatically when the guard trips.
    pub guard: Option<GuardSettings>,
}

impl Scenario {
    /// Starts a healthy scenario over an existing plan (paper-default
    /// timings, threshold 1.0, everyone online, perfect testing).
    pub fn from_plan(plan: DeployPlan) -> Self {
        let n = plan.machines.len();
        Scenario {
            plan,
            problems: ProblemTable::new(),
            machine_problem: vec![None; n],
            timings: Timings::paper_default(),
            threshold: 1.0,
            offline_until: vec![0; n],
            missed_detection: MachineSet::new(),
            faults: FaultPlan::none(),
            urr: None,
            durable: None,
            workers: None,
            strategy: None,
            guard: None,
        }
    }

    /// Total machine count.
    pub fn machine_count(&self) -> usize {
        self.plan.machine_count()
    }

    /// The problem carried by a machine, if any (hot-path accessor).
    #[inline]
    pub fn problem_of(&self, machine: MachineId) -> Option<ProblemId> {
        self.machine_problem.get(machine.index()).copied().flatten()
    }

    /// Resolves a machine name, panicking with a uniform message.
    fn must_id(&self, machine: &str) -> MachineId {
        self.plan
            .machine_id(machine)
            .unwrap_or_else(|| panic!("unknown machine {machine:?}"))
    }

    /// Assigns `problem` to the named machine (internal lowering hook
    /// for [`ScenarioBuilder::problem_on_machine`]).
    fn place_problem(&mut self, machine: &str, problem: &str) {
        let m = self.must_id(machine);
        let p = self.problems.intern(problem);
        self.machine_problem[m.index()] = Some(p);
    }

    /// Takes the named machine offline until `until` (internal lowering
    /// hook for [`ScenarioBuilder::offline_machine`]).
    fn place_offline(&mut self, machine: &str, until: SimTime) {
        let m = self.must_id(machine);
        self.offline_until[m.index()] = until;
    }

    /// Marks the named machine's testing as missing its problem
    /// (internal lowering hook for
    /// [`ScenarioBuilder::missed_detection_on`]).
    fn place_missed_detection(&mut self, machine: &str) {
        let m = self.must_id(machine);
        self.missed_detection.insert(m);
    }

    /// Assigns `problem` to the named machine (boundary helper).
    ///
    /// # Panics
    ///
    /// Panics if the machine is not in the plan.
    #[deprecated(
        since = "0.5.0",
        note = "use ScenarioBuilder::over_plan(..).problem_on_machine(..) instead; \
                this shim will be removed next release"
    )]
    pub fn assign_problem(&mut self, machine: &str, problem: &str) {
        self.place_problem(machine, problem);
    }

    /// Takes the named machine offline until `until` (boundary helper).
    ///
    /// # Panics
    ///
    /// Panics if the machine is not in the plan.
    #[deprecated(
        since = "0.5.0",
        note = "use ScenarioBuilder::over_plan(..).offline_machine(..) instead; \
                this shim will be removed next release"
    )]
    pub fn set_offline_until(&mut self, machine: &str, until: SimTime) {
        self.place_offline(machine, until);
    }

    /// Marks the named machine's testing as missing its problem
    /// (boundary helper).
    ///
    /// # Panics
    ///
    /// Panics if the machine is not in the plan.
    #[deprecated(
        since = "0.5.0",
        note = "use ScenarioBuilder::over_plan(..).missed_detection_on(..) instead; \
                this shim will be removed next release"
    )]
    pub fn set_missed_detection(&mut self, machine: &str) {
        self.place_missed_detection(machine);
    }

    /// Number of machines carrying any problem.
    pub fn problem_machine_count(&self) -> usize {
        self.machine_problem.iter().filter(|p| p.is_some()).count()
    }

    /// Number of machines carrying each problem, keyed by problem name.
    pub fn problem_populations(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for p in self.machine_problem.iter().flatten() {
            *counts
                .entry(self.problems.name(*p).to_string())
                .or_insert(0usize) += 1;
        }
        counts
    }

    /// Names of machines that are offline at time zero (boundary
    /// helper for tests).
    pub fn offline_machine_names(&self) -> Vec<String> {
        self.offline_until
            .iter()
            .enumerate()
            .filter(|(_, &t)| t > 0)
            .map(|(i, _)| self.plan.machine_name(MachineId(i as u32)).to_string())
            .collect()
    }

    /// The problem assigned to a named machine, if any (boundary
    /// helper for tests).
    pub fn problem_name_of(&self, machine: &str) -> Option<&str> {
        let m = self.plan.machine_id(machine)?;
        self.machine_problem[m.index()].map(|p| self.problems.name(p))
    }
}

/// Builder for synthetic scenarios like the paper's §4.3 setup.
///
/// # Examples
///
/// The paper's sound-clustering scenario: 100 000 machines in 20 equal
/// clusters, one prevalent problem in three clusters, two non-prevalent
/// problems in one cluster each:
///
/// ```
/// use mirage_sim::ScenarioBuilder;
/// let scenario = ScenarioBuilder::new()
///     .clusters(20, 5_000, 1)
///     .problem_in_clusters("prevalent", &[14, 15, 16])
///     .problem_in_clusters("rare-a", &[17])
///     .problem_in_clusters("rare-b", &[18])
///     .build();
/// assert_eq!(scenario.machine_count(), 100_000);
/// assert_eq!(scenario.problem_populations()["prevalent"], 15_000);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    base_plan: Option<DeployPlan>,
    cluster_count: usize,
    cluster_size: usize,
    reps_per_cluster: usize,
    problems: Vec<(String, Vec<usize>)>,
    misplaced: Vec<(usize, String)>,
    offline: Vec<(usize, usize, SimTime)>,
    missed: Vec<(usize, usize)>,
    named_problems: Vec<(String, String)>,
    named_offline: Vec<(String, SimTime)>,
    named_missed: Vec<String>,
    faults: Option<FaultSpec>,
    urr: Option<Arc<Urr>>,
    durable: Option<Arc<DurableUrr>>,
    timings: Timings,
    threshold: f64,
    workers: Option<usize>,
    strategy: Option<RolloutStrategy>,
    guard: Option<GuardSettings>,
}

impl ScenarioBuilder {
    /// Starts a builder with paper-default timings and threshold 1.0.
    pub fn new() -> Self {
        ScenarioBuilder {
            base_plan: None,
            cluster_count: 0,
            cluster_size: 0,
            reps_per_cluster: 1,
            problems: Vec::new(),
            misplaced: Vec::new(),
            offline: Vec::new(),
            missed: Vec::new(),
            named_problems: Vec::new(),
            named_offline: Vec::new(),
            named_missed: Vec::new(),
            faults: None,
            urr: None,
            durable: None,
            timings: Timings::paper_default(),
            threshold: 1.0,
            workers: None,
            strategy: None,
            guard: None,
        }
    }

    /// Builds the scenario over an existing, hand-constructed plan
    /// instead of synthetic `c00-m00000`-style clusters.
    ///
    /// Use the name-based directives ([`Self::problem_on_machine`],
    /// [`Self::offline_machine`], [`Self::missed_detection_on`]) with
    /// this entry point; cluster-index directives also work as long as
    /// the indexes exist in the plan.
    pub fn over_plan(plan: DeployPlan) -> Self {
        let mut b = Self::new();
        b.base_plan = Some(plan);
        b
    }

    /// Assigns `problem` to one named machine of the plan.
    pub fn problem_on_machine(mut self, machine: &str, problem: &str) -> Self {
        self.named_problems.push((machine.into(), problem.into()));
        self
    }

    /// Takes one named machine offline until `until`.
    pub fn offline_machine(mut self, machine: &str, until: SimTime) -> Self {
        self.named_offline.push((machine.into(), until));
        self
    }

    /// Makes the named machine's user-machine testing miss its problem.
    pub fn missed_detection_on(mut self, machine: &str) -> Self {
        self.named_missed.push(machine.into());
        self
    }

    /// Attaches a fault-injection spec; it is lowered against the final
    /// plan in [`Self::build`]. Without this call the scenario keeps
    /// [`FaultPlan::none`] and the reliable-channel fast path.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Attaches an Upgrade Report Repository: every test outcome the
    /// vendor receives during the run is also deposited into `urr` as a
    /// structured report (paper §3.4 closing the loop with §4.3).
    /// Without this call the scenario carries no repository and the
    /// simulation loop is bit-identical to the unwired driver.
    pub fn with_urr(mut self, urr: Arc<Urr>) -> Self {
        self.urr = Some(urr);
        self
    }

    /// Attaches a *durable* Upgrade Report Repository: like
    /// [`Self::with_urr`], but deposits are journaled through the
    /// storage layer's write-ahead log, so the campaign's repository
    /// survives a vendor crash ([`mirage_report::DurableUrr::recover`])
    /// with every query surface intact. The durable handle's live
    /// repository is attached as [`Scenario::urr`], so guards and
    /// queries work unchanged.
    pub fn with_durable_urr(mut self, durable: Arc<DurableUrr>) -> Self {
        self.urr = Some(Arc::clone(durable.urr()));
        self.durable = Some(durable);
        self
    }

    /// Sets `count` equal-size clusters of `size` machines with
    /// `reps` representatives each.
    ///
    /// Cluster `i` is given vendor distance `i as f64` — deployment-order
    /// position doubles as distance, so `problem_in_clusters` indexes are
    /// also positions in the Balanced order.
    pub fn clusters(mut self, count: usize, size: usize, reps: usize) -> Self {
        self.cluster_count = count;
        self.cluster_size = size;
        self.reps_per_cluster = reps;
        self
    }

    /// Makes every machine of the given clusters exhibit `problem`.
    pub fn problem_in_clusters(mut self, problem: &str, clusters: &[usize]) -> Self {
        self.problems.push((problem.into(), clusters.to_vec()));
        self
    }

    /// Injects one misplaced machine: a *non-representative* of
    /// `cluster` that exhibits `problem` although the rest of its cluster
    /// does not (the paper's imperfect-clustering experiment).
    pub fn misplaced_machine(mut self, cluster: usize, problem: &str) -> Self {
        self.misplaced.push((cluster, problem.into()));
        self
    }

    /// Takes `count` non-representative machines of `cluster` offline
    /// until `until`: they miss notifications delivered in the meantime
    /// and catch up once back online.
    pub fn offline_machines(mut self, cluster: usize, count: usize, until: SimTime) -> Self {
        self.offline.push((cluster, count, until));
        self
    }

    /// Makes testing on `count` problem-carrying machines of `cluster`
    /// miss the problem (it integrates anyway).
    pub fn missed_detections(mut self, cluster: usize, count: usize) -> Self {
        self.missed.push((cluster, count));
        self
    }

    /// Overrides the time constants.
    pub fn timings(mut self, timings: Timings) -> Self {
        self.timings = timings;
        self
    }

    /// Overrides the advancement threshold.
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Pins the parallel driver's worker (shard) count for this
    /// scenario, overriding `MIRAGE_SIM_THREADS` and the host's
    /// available parallelism. Purely a scheduling hint — the simulation
    /// is bit-identical at every worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Selects a rollout strategy for this scenario: [`crate::run_rollout`]
    /// then partitions the fleet into cohorts and drives it through a
    /// [`mirage_rollout::RolloutController`]. Without this call the
    /// scenario runs bare staging protocols as before.
    pub fn with_strategy(mut self, strategy: RolloutStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Attaches URR guard thresholds: the rollout controller assesses
    /// live repository health on each decision tick and rolls the
    /// campaign back automatically when the guard trips. Requires
    /// [`Self::with_urr`] to take effect.
    pub fn with_guard(mut self, guard: GuardSettings) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Builds the scenario.
    ///
    /// # Panics
    ///
    /// Panics if a problem or misplaced-machine directive references a
    /// cluster that does not exist, if a misplaced machine is asked
    /// for in a cluster with no non-representatives, or if a name-based
    /// directive references a machine missing from the plan.
    pub fn build(self) -> Scenario {
        let plan = match self.base_plan {
            Some(plan) => plan,
            None => DeployPlan::from_named((0..self.cluster_count).map(|c| {
                let members: Vec<String> = (0..self.cluster_size)
                    .map(|i| format!("c{c:02}-m{i:05}"))
                    .collect();
                let reps = self.reps_per_cluster.max(1).min(members.len().max(1));
                (members, reps, c as f64)
            })),
        };

        let mut scenario = Scenario::from_plan(plan);
        scenario.timings = self.timings;
        scenario.threshold = self.threshold;
        scenario.workers = self.workers;

        for (problem, cluster_ids) in &self.problems {
            let p = scenario.problems.intern(problem);
            for &cid in cluster_ids {
                let cluster = scenario
                    .plan
                    .clusters
                    .get(cid)
                    .unwrap_or_else(|| panic!("problem references missing cluster {cid}"));
                for &m in &cluster.members {
                    scenario.machine_problem[m.index()] = Some(p);
                }
            }
        }
        for (cid, problem) in &self.misplaced {
            let p = scenario.problems.intern(problem);
            let cluster = scenario
                .plan
                .clusters
                .get(*cid)
                .unwrap_or_else(|| panic!("misplaced machine in missing cluster {cid}"));
            let victim = cluster
                .non_reps()
                .into_iter()
                .next()
                .unwrap_or_else(|| panic!("cluster {cid} has no non-representatives"));
            scenario.machine_problem[victim.index()] = Some(p);
        }

        for (cid, count, until) in &self.offline {
            let cluster = scenario
                .plan
                .clusters
                .get(*cid)
                .unwrap_or_else(|| panic!("offline directive for missing cluster {cid}"));
            // Skip the first non-rep: misplaced_machine may have used it.
            for m in cluster.non_reps().into_iter().skip(1).take(*count) {
                scenario.offline_until[m.index()] = *until;
            }
        }
        for (cid, count) in &self.missed {
            let cluster =
                scenario.plan.clusters.get(*cid).unwrap_or_else(|| {
                    panic!("missed-detection directive for missing cluster {cid}")
                });
            let victims: Vec<MachineId> = cluster
                .members
                .iter()
                .filter(|m| scenario.machine_problem[m.index()].is_some())
                .take(*count)
                .copied()
                .collect();
            for m in victims {
                scenario.missed_detection.insert(m);
            }
        }

        for (machine, problem) in &self.named_problems {
            scenario.place_problem(machine, problem);
        }
        for (machine, until) in &self.named_offline {
            scenario.place_offline(machine, *until);
        }
        for machine in &self.named_missed {
            scenario.place_missed_detection(machine);
        }

        if let Some(spec) = &self.faults {
            scenario.faults = spec.lower(&scenario.plan);
        }
        scenario.urr = self.urr;
        scenario.durable = self.durable;
        scenario.strategy = self.strategy;
        scenario.guard = self.guard;
        scenario
    }
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_plan() {
        let s = ScenarioBuilder::new().clusters(3, 10, 2).build();
        assert_eq!(s.plan.clusters.len(), 3);
        assert_eq!(s.machine_count(), 30);
        assert_eq!(s.plan.clusters[1].reps.len(), 2);
        assert_eq!(s.plan.clusters[2].distance, 2.0);
        assert_eq!(s.problem_machine_count(), 0);
        assert_eq!(s.threshold, 1.0);
    }

    #[test]
    fn problems_cover_whole_clusters() {
        let s = ScenarioBuilder::new()
            .clusters(4, 5, 1)
            .problem_in_clusters("p", &[1, 3])
            .build();
        assert_eq!(s.problem_populations()["p"], 10);
        // A machine in cluster 0 is healthy.
        assert_eq!(s.problem_name_of("c00-m00000"), None);
        assert_eq!(s.problem_name_of("c01-m00000"), Some("p"));
    }

    #[test]
    fn misplaced_machine_is_a_non_rep() {
        let s = ScenarioBuilder::new()
            .clusters(2, 4, 1)
            .misplaced_machine(0, "odd")
            .build();
        let odd = s.problems.id("odd").unwrap();
        let victims: Vec<MachineId> = s
            .machine_problem
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == Some(odd))
            .map(|(i, _)| MachineId(i as u32))
            .collect();
        assert_eq!(victims.len(), 1);
        assert!(!s.plan.clusters[0].reps.contains(&victims[0]));
        assert!(s.plan.clusters[0].members.contains(&victims[0]));
    }

    #[test]
    #[should_panic(expected = "missing cluster")]
    fn bad_cluster_reference_panics() {
        let _ = ScenarioBuilder::new()
            .clusters(1, 2, 1)
            .problem_in_clusters("p", &[5])
            .build();
    }

    #[test]
    fn timings_accessors() {
        let t = Timings::paper_default();
        assert_eq!(t.machine_cycle(), 15);
        assert_eq!(t.fix, 500);
    }

    #[test]
    fn over_plan_with_named_directives() {
        let plan =
            DeployPlan::from_named([(vec!["a", "b", "c"], 1, 0.0), (vec!["d", "e"], 1, 1.0)]);
        let s = ScenarioBuilder::over_plan(plan)
            .problem_on_machine("b", "p")
            .offline_machine("c", 100)
            .missed_detection_on("b")
            .threshold(0.75)
            .build();
        assert_eq!(s.machine_count(), 5);
        assert_eq!(s.problem_name_of("b"), Some("p"));
        assert_eq!(s.offline_machine_names(), vec!["c".to_string()]);
        let b = s.plan.machine_id("b").unwrap();
        assert!(s.missed_detection.contains(b));
        assert_eq!(s.threshold, 0.75);
        assert!(s.faults.is_none());
    }

    #[test]
    #[should_panic(expected = "unknown machine")]
    fn over_plan_unknown_machine_panics() {
        let plan = DeployPlan::from_named([(["a"], 1, 0.0)]);
        let _ = ScenarioBuilder::over_plan(plan)
            .problem_on_machine("nope", "p")
            .build();
    }

    #[test]
    fn faults_spec_is_lowered_against_the_final_plan() {
        let s = ScenarioBuilder::new()
            .clusters(2, 4, 1)
            .faults(
                FaultSpec::new(0xFA17)
                    .loss(0.2)
                    .duplication(0.1)
                    .churn(1, 2, 30, 200),
            )
            .build();
        assert!(!s.faults.is_none());
        assert_eq!(s.faults.seed, 0xFA17);
        assert_eq!(s.faults.loss, 0.2);
        assert_eq!(s.faults.churn.len(), 2);
        // Churned machines are non-reps of cluster 1.
        for &(m, leave, rejoin) in &s.faults.churn {
            assert!(s.plan.clusters[1].members.contains(&m));
            assert!(!s.plan.clusters[1].reps.contains(&m));
            assert_eq!((leave, rejoin), (30, 200));
        }
    }

    #[test]
    #[allow(deprecated)]
    fn from_plan_boundary_helpers() {
        let plan = DeployPlan::from_named([(["a", "b", "c"], 1, 0.0)]);
        let mut s = Scenario::from_plan(plan);
        s.assign_problem("b", "p");
        s.set_offline_until("c", 100);
        s.set_missed_detection("b");
        assert_eq!(s.problem_name_of("b"), Some("p"));
        assert_eq!(s.problem_name_of("a"), None);
        assert_eq!(s.offline_machine_names(), vec!["c".to_string()]);
        let b = s.plan.machine_id("b").unwrap();
        assert!(s.missed_detection.contains(b));
        assert_eq!(s.problem_machine_count(), 1);
    }
}
