//! The fault model: seeded, deterministic unreliable-channel and
//! churn injection for deployment simulations.
//!
//! The paper's staged-deployment protocols (§5) are specified over a
//! reliable vendor↔machine channel, but real fleets lose reports,
//! deliver duplicates, delay messages, and watch machines leave —
//! sometimes forever — mid-stage. A [`FaultPlan`] describes exactly
//! which of those environmental faults a simulation run injects:
//!
//! * **message loss** — each channel transmission (vendor→machine
//!   notification, machine→vendor report) is dropped with probability
//!   [`FaultPlan::loss`];
//! * **duplication** — each surviving transmission is delivered twice
//!   with probability [`FaultPlan::duplication`];
//! * **delay** — each delivery is postponed by a uniform draw from
//!   `0..=max_delay` ticks;
//! * **churn** — machines leave the fleet during `[leave, rejoin)`
//!   windows; `rejoin == SimTime::MAX` models a crash (the machine
//!   never returns);
//! * **vendor hardening knobs** — retry backoff parameters for
//!   re-notification and the protocol-side `rep_timeout` that enables
//!   timeout-based stage advancement.
//!
//! Everything is driven by one xorshift64* stream seeded from
//! [`FaultPlan::seed`], so a `(Scenario, FaultPlan)` pair replays
//! bit-identically — the property tests rely on it. The zero-fault
//! plan ([`FaultPlan::none`]) disables the entire fault path: the
//! simulator takes the original synchronous-delivery code and produces
//! bit-identical [`crate::SimMetrics`] to the pre-fault driver.
//!
//! [`FaultSpec`] is the fluent builder-side surface, lowered onto a
//! concrete plan by [`crate::ScenarioBuilder::build`] (cluster indexes
//! become machine ids).

use mirage_deploy::{DeployPlan, MachineId};

use crate::engine::SimTime;

/// Default base delay before the first re-notification retry.
pub const DEFAULT_RETRY_BASE: SimTime = 40;
/// Default cap on the backoff exponent (`base << cap` is the largest
/// retry delay: 40 << 6 = 2 560 ticks).
pub const DEFAULT_RETRY_BACKOFF_CAP: u32 = 6;
/// Default interval between protocol ticks.
pub const DEFAULT_TICK_INTERVAL: SimTime = 25;
/// Default bound on the number of ticks a run may issue (a safety
/// valve: no fault combination can hang the simulator).
pub const DEFAULT_MAX_TICKS: u64 = 100_000;

/// A complete, lowered fault-injection plan carried by a
/// [`crate::Scenario`]. Per-machine directives are keyed by dense
/// [`MachineId`]s; construct via [`FaultSpec`] + the scenario builder,
/// or field-by-field in tests.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG stream (xorshift64*).
    pub seed: u64,
    /// Per-transmission loss probability in `[0, 1]`.
    pub loss: f64,
    /// Per-delivery duplication probability in `[0, 1]`.
    pub duplication: f64,
    /// Maximum per-delivery delay; each delivery is postponed by a
    /// uniform draw from `0..=max_delay` ticks.
    pub max_delay: SimTime,
    /// Base delay before the first retry of an unanswered notification.
    pub retry_base: SimTime,
    /// Cap on the exponential-backoff exponent.
    pub retry_backoff_cap: u32,
    /// Optional cap on retries per (machine, release); `None` retries
    /// until the machine is known unreachable (crashed).
    pub max_retries: Option<u32>,
    /// Interval between protocol ticks.
    pub tick_interval: SimTime,
    /// Upper bound on ticks issued per run (safety valve).
    pub max_ticks: u64,
    /// Protocol-side stall budget: after this much quiet time the
    /// protocol waives silent machines and advances (graceful
    /// degradation). `None` leaves protocols un-hardened.
    pub rep_timeout: Option<SimTime>,
    /// Churn windows `(machine, leave, rejoin)`: the machine is
    /// unreachable during `[leave, rejoin)`. `rejoin == SimTime::MAX`
    /// is a crash. At most one window per machine (later entries win).
    pub churn: Vec<(MachineId, SimTime, SimTime)>,
}

impl FaultPlan {
    /// The zero-fault plan: a perfectly reliable channel. Runs carrying
    /// this plan take the original synchronous-delivery path and are
    /// bit-identical to the pre-fault simulator.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            loss: 0.0,
            duplication: 0.0,
            max_delay: 0,
            retry_base: DEFAULT_RETRY_BASE,
            retry_backoff_cap: DEFAULT_RETRY_BACKOFF_CAP,
            max_retries: None,
            tick_interval: DEFAULT_TICK_INTERVAL,
            max_ticks: DEFAULT_MAX_TICKS,
            rep_timeout: None,
            churn: Vec::new(),
        }
    }

    /// Returns `true` when the plan injects no faults at all — the
    /// simulator then runs the reliable-channel fast path.
    pub fn is_none(&self) -> bool {
        self.loss == 0.0
            && self.duplication == 0.0
            && self.max_delay == 0
            && self.churn.is_empty()
            && self.rep_timeout.is_none()
    }

    /// Delay before retry number `attempt` (0-based): exponential
    /// backoff `retry_base << min(attempt, cap)`.
    pub fn retry_delay(&self, attempt: u32) -> SimTime {
        self.retry_base
            .saturating_mul(1 << attempt.min(self.retry_backoff_cap))
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Builder-side fault directives, lowered to a [`FaultPlan`] against a
/// concrete [`DeployPlan`] by [`crate::ScenarioBuilder::build`]
/// (cluster indexes resolve to machine ids at that point).
///
/// # Examples
///
/// ```
/// use mirage_sim::{FaultSpec, ScenarioBuilder};
/// let scenario = ScenarioBuilder::new()
///     .clusters(4, 25, 1)
///     .faults(
///         FaultSpec::new(0xFA17)
///             .loss(0.2)
///             .duplication(0.1)
///             .delay(8)
///             .rep_timeout(3_000)
///             .crash_rep(2, 40),
///     )
///     .build();
/// assert!(!scenario.faults.is_none());
/// assert_eq!(scenario.faults.churn.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    seed: u64,
    loss: f64,
    duplication: f64,
    max_delay: SimTime,
    retry: Option<(SimTime, u32)>,
    max_retries: Option<u32>,
    tick_interval: Option<SimTime>,
    max_ticks: Option<u64>,
    rep_timeout: Option<SimTime>,
    /// `(cluster, count, leave, rejoin)` — take `count` non-reps of
    /// `cluster` away during `[leave, rejoin)`.
    churn: Vec<(usize, usize, SimTime, SimTime)>,
    /// `(cluster, at)` — crash the first representative of `cluster`
    /// at time `at` (it never returns).
    crash_reps: Vec<(usize, SimTime)>,
}

impl FaultSpec {
    /// Starts a spec with the given RNG seed and no faults.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            loss: 0.0,
            duplication: 0.0,
            max_delay: 0,
            retry: None,
            max_retries: None,
            tick_interval: None,
            max_ticks: None,
            rep_timeout: None,
            churn: Vec::new(),
            crash_reps: Vec::new(),
        }
    }

    /// Sets the per-transmission loss probability (clamped to `[0, 1]`).
    pub fn loss(mut self, p: f64) -> Self {
        self.loss = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-delivery duplication probability (clamped to `[0, 1]`).
    pub fn duplication(mut self, p: f64) -> Self {
        self.duplication = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the maximum per-delivery delay (uniform in `0..=max`).
    pub fn delay(mut self, max: SimTime) -> Self {
        self.max_delay = max;
        self
    }

    /// Overrides the retry backoff parameters (base delay, exponent cap).
    pub fn retry(mut self, base: SimTime, backoff_cap: u32) -> Self {
        self.retry = Some((base, backoff_cap));
        self
    }

    /// Caps the number of re-notification retries per (machine, release).
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = Some(retries);
        self
    }

    /// Overrides the protocol tick interval.
    pub fn tick_interval(mut self, interval: SimTime) -> Self {
        self.tick_interval = Some(interval);
        self
    }

    /// Overrides the per-run tick budget (safety valve).
    pub fn max_ticks(mut self, ticks: u64) -> Self {
        self.max_ticks = Some(ticks);
        self
    }

    /// Enables timeout-based stage advancement with the given quiet-time
    /// budget.
    pub fn rep_timeout(mut self, timeout: SimTime) -> Self {
        self.rep_timeout = Some(timeout);
        self
    }

    /// Takes `count` non-representatives of `cluster` out of the fleet
    /// during `[leave, rejoin)` (use `SimTime::MAX` for "never
    /// returns"). Victims are drawn from the *end* of the cluster's
    /// non-rep list so they do not collide with the builder's
    /// misplaced-machine (first non-rep) or offline (next `count`
    /// non-reps) directives.
    pub fn churn(mut self, cluster: usize, count: usize, leave: SimTime, rejoin: SimTime) -> Self {
        self.churn.push((cluster, count, leave, rejoin));
        self
    }

    /// Crashes the first representative of `cluster` at time `at`: it
    /// leaves and never returns, forcing timeout-based degradation.
    pub fn crash_rep(mut self, cluster: usize, at: SimTime) -> Self {
        self.crash_reps.push((cluster, at));
        self
    }

    /// Lowers the spec onto a concrete plan, resolving cluster indexes
    /// to machine ids.
    ///
    /// # Panics
    ///
    /// Panics if a directive references a missing cluster, a churn
    /// directive asks for more non-reps than the cluster has, or a
    /// crash-rep directive targets a cluster without representatives.
    pub fn lower(&self, plan: &DeployPlan) -> FaultPlan {
        let (retry_base, retry_backoff_cap) = self
            .retry
            .unwrap_or((DEFAULT_RETRY_BASE, DEFAULT_RETRY_BACKOFF_CAP));
        let mut churn: Vec<(MachineId, SimTime, SimTime)> = Vec::new();
        for &(cid, count, leave, rejoin) in &self.churn {
            let cluster = plan
                .clusters
                .get(cid)
                .unwrap_or_else(|| panic!("churn directive for missing cluster {cid}"));
            let non_reps = cluster.non_reps();
            assert!(
                count <= non_reps.len(),
                "churn directive wants {count} non-reps but cluster {cid} has {}",
                non_reps.len()
            );
            for &m in non_reps.iter().rev().take(count) {
                churn.push((m, leave, rejoin));
            }
        }
        for &(cid, at) in &self.crash_reps {
            let cluster = plan
                .clusters
                .get(cid)
                .unwrap_or_else(|| panic!("crash-rep directive for missing cluster {cid}"));
            let rep = *cluster
                .reps
                .first()
                .unwrap_or_else(|| panic!("cluster {cid} has no representatives to crash"));
            churn.push((rep, at, SimTime::MAX));
        }
        FaultPlan {
            seed: self.seed,
            loss: self.loss,
            duplication: self.duplication,
            max_delay: self.max_delay,
            retry_base,
            retry_backoff_cap,
            max_retries: self.max_retries,
            tick_interval: self.tick_interval.unwrap_or(DEFAULT_TICK_INTERVAL),
            max_ticks: self.max_ticks.unwrap_or(DEFAULT_MAX_TICKS),
            rep_timeout: self.rep_timeout,
            churn,
        }
    }
}

/// The fault RNG: xorshift64* seeded from [`FaultPlan::seed`]. Cheap,
/// deterministic, and dependency-free (the workspace builds offline —
/// no external `rand`).
#[derive(Debug, Clone)]
pub struct FaultRng(u64);

impl FaultRng {
    /// Seeds the stream (golden-ratio scrambled so nearby seeds give
    /// unrelated streams; forced odd so the state never collapses).
    pub fn new(seed: u64) -> Self {
        FaultRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Forks an independent per-`lane` stream off a base `seed`.
    ///
    /// The fork depends only on `(seed, lane)` — never on how many
    /// draws other lanes have made — so a simulation that assigns one
    /// lane per machine produces the same per-machine fault schedule
    /// regardless of event interleaving or (in the parallel driver)
    /// worker count.
    pub fn fork(seed: u64, lane: u64) -> Self {
        // A second odd multiplier decorrelates lanes from each other
        // and from the base stream before the `new` scramble.
        FaultRng::new(seed ^ lane.wrapping_add(1).wrapping_mul(0xD6E8_FEB8_6659_FD93))
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, 1)` (53-bit mantissa).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `0..=max`.
    pub fn below_inclusive(&mut self, max: u64) -> u64 {
        if max == 0 {
            0
        } else {
            self.next_u64() % (max + 1)
        }
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }
}

/// A table of lazily-seeded [`FaultRng::fork`] lanes over one base
/// seed: lane `i` always yields the stream `fork(seed, i*stride +
/// offset)`, no matter which other lanes were touched first.
///
/// The sequential driver uses one lane per machine (`stride == 1`) for
/// machine→vendor draws; the parallel driver's shards use strided
/// tables (`stride == workers`, `offset == shard`) so each shard stores
/// only its own machines yet draws from the *same* per-machine streams.
/// Unseeded lanes are marked by state 0, which a seeded xorshift64*
/// stream can never reach (`new` forces the low bit), so a fresh table
/// is one cheap zeroed allocation.
#[derive(Debug, Clone)]
pub struct RngLanes {
    seed: u64,
    stride: u64,
    offset: u64,
    lanes: Vec<FaultRng>,
}

impl RngLanes {
    /// One lane per index in `0..len`, lane id == index.
    pub fn new(seed: u64, len: usize) -> Self {
        RngLanes::strided(seed, len, 1, 0)
    }

    /// A strided table: local index `i` maps to lane id
    /// `i*stride + offset`.
    pub fn strided(seed: u64, len: usize, stride: u64, offset: u64) -> Self {
        RngLanes {
            seed,
            stride,
            offset,
            lanes: vec![FaultRng(0); len],
        }
    }

    /// The lane stream at local index `i`, seeded on first use.
    #[inline]
    pub fn lane(&mut self, i: usize) -> &mut FaultRng {
        let slot = &mut self.lanes[i];
        if slot.0 == 0 {
            *slot = FaultRng::fork(self.seed, (i as u64) * self.stride + self.offset);
        }
        slot
    }

    /// Re-keys the table for reuse (arena runs): every lane returns to
    /// the unseeded state, keeping the allocation.
    pub fn reset(&mut self, seed: u64, len: usize, stride: u64, offset: u64) {
        self.seed = seed;
        self.stride = stride;
        self.offset = offset;
        self.lanes.clear();
        self.lanes.resize(len, FaultRng(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> DeployPlan {
        DeployPlan::from_named([
            (vec!["a0", "a1", "a2", "a3"], 1, 1.0),
            (vec!["b0", "b1", "b2"], 1, 2.0),
        ])
    }

    #[test]
    fn none_is_none() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert_eq!(p, FaultPlan::default());
        // Retry knobs alone do not activate the fault path.
        let spec = FaultSpec::new(1).retry(10, 2).lower(&tiny_plan());
        assert!(spec.is_none());
    }

    #[test]
    fn any_fault_knob_activates_the_plan() {
        let plan = tiny_plan();
        for spec in [
            FaultSpec::new(1).loss(0.1),
            FaultSpec::new(1).duplication(0.1),
            FaultSpec::new(1).delay(3),
            FaultSpec::new(1).churn(0, 1, 10, 20),
            FaultSpec::new(1).rep_timeout(100),
        ] {
            assert!(!spec.lower(&plan).is_none(), "{spec:?}");
        }
    }

    #[test]
    fn retry_delay_backs_off_exponentially_and_caps() {
        let p = FaultPlan {
            retry_base: 10,
            retry_backoff_cap: 3,
            ..FaultPlan::none()
        };
        assert_eq!(p.retry_delay(0), 10);
        assert_eq!(p.retry_delay(1), 20);
        assert_eq!(p.retry_delay(2), 40);
        assert_eq!(p.retry_delay(3), 80);
        assert_eq!(p.retry_delay(4), 80, "capped");
        assert_eq!(p.retry_delay(99), 80, "still capped");
    }

    #[test]
    fn churn_lowers_to_trailing_non_reps() {
        let plan = tiny_plan();
        let lowered = FaultSpec::new(7).churn(0, 2, 100, 200).lower(&plan);
        let names: Vec<&str> = lowered
            .churn
            .iter()
            .map(|&(m, _, _)| plan.machine_name(m))
            .collect();
        // Last two non-reps of cluster 0, reverse order.
        assert_eq!(names, vec!["a3", "a2"]);
        assert!(lowered.churn.iter().all(|&(_, l, r)| l == 100 && r == 200));
    }

    #[test]
    fn crash_rep_lowers_to_first_rep_with_open_window() {
        let plan = tiny_plan();
        let lowered = FaultSpec::new(7).crash_rep(1, 42).lower(&plan);
        assert_eq!(lowered.churn.len(), 1);
        let (m, leave, rejoin) = lowered.churn[0];
        assert_eq!(plan.machine_name(m), "b0");
        assert_eq!(leave, 42);
        assert_eq!(rejoin, SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "missing cluster")]
    fn churn_on_missing_cluster_panics() {
        let _ = FaultSpec::new(1).churn(9, 1, 0, 1).lower(&tiny_plan());
    }

    #[test]
    fn rng_is_deterministic_and_roughly_uniform() {
        let mut a = FaultRng::new(0xDEAD);
        let mut b = FaultRng::new(0xDEAD);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut hits = 0usize;
        let mut rng = FaultRng::new(3);
        for _ in 0..10_000 {
            if rng.chance(0.3) {
                hits += 1;
            }
        }
        // Loose two-sided bound: 30% ± 5%.
        assert!((2_500..=3_500).contains(&hits), "hits = {hits}");
        assert!(!FaultRng::new(1).chance(0.0), "p=0 never fires");
        assert_eq!(FaultRng::new(1).below_inclusive(0), 0);
        for _ in 0..50 {
            assert!(FaultRng::new(9).below_inclusive(4) <= 4);
        }
    }

    #[test]
    fn forked_lanes_are_deterministic_and_distinct() {
        let mut a = FaultRng::fork(0xFA17, 3);
        let mut b = FaultRng::fork(0xFA17, 3);
        let mut c = FaultRng::fork(0xFA17, 4);
        let mut base = FaultRng::new(0xFA17);
        let (x, y, z, w) = (a.next_u64(), b.next_u64(), c.next_u64(), base.next_u64());
        assert_eq!(x, y, "same (seed, lane) replays");
        assert_ne!(x, z, "lanes diverge");
        assert_ne!(x, w, "lanes diverge from the base stream");
    }

    #[test]
    fn lanes_are_order_independent() {
        // Drawing lanes in different orders must not change any lane's
        // stream — the property the parallel driver relies on.
        let mut fwd = RngLanes::new(42, 8);
        let mut rev = RngLanes::new(42, 8);
        let a: Vec<u64> = (0..8).map(|i| fwd.lane(i).next_u64()).collect();
        let b: Vec<u64> = (0..8).rev().map(|i| rev.lane(i).next_u64()).collect();
        for i in 0..8 {
            assert_eq!(a[i], b[7 - i], "lane {i}");
        }
    }

    #[test]
    fn strided_lanes_match_global_lane_ids() {
        // A 3-shard split: shard s stores machines {s, s+3, s+6, ...}
        // at local index m/3 and must draw machine m's global stream.
        let n = 12usize;
        let mut global = RngLanes::new(7, n);
        let mut shards: Vec<RngLanes> = (0..3)
            .map(|s| RngLanes::strided(7, n.div_ceil(3), 3, s as u64))
            .collect();
        for m in 0..n {
            let expect = global.lane(m).next_u64();
            let got = shards[m % 3].lane(m / 3).next_u64();
            assert_eq!(expect, got, "machine {m}");
        }
    }

    #[test]
    fn lane_reset_rekeys_and_replays() {
        let mut lanes = RngLanes::new(1, 4);
        let first = lanes.lane(2).next_u64();
        let _ = lanes.lane(2).next_u64(); // advance past the first draw
        lanes.reset(1, 4, 1, 0);
        assert_eq!(lanes.lane(2).next_u64(), first, "reset replays the stream");
        lanes.reset(2, 4, 1, 0);
        assert_ne!(lanes.lane(2).next_u64(), first, "new seed, new stream");
    }
}
