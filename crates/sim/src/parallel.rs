//! Sharded time-bucket parallel simulation driver.
//!
//! The sequential [`Simulation`] processes one event at a time off a
//! single calendar queue. This driver shards the [`MachineId`] space
//! across `workers` shards (`machine.index() % workers`) and splits
//! every time bucket into two phases:
//!
//! - **Phase A (shard-local, parallelizable):** each shard drains its
//!   own calendar queue's bucket of `TestDone` records and computes the
//!   *pure* part of each: pass/escape outcome (reads only the
//!   append-only `fixed_by_release` history, which same-time events
//!   cannot change for already-scheduled releases) and, under a fault
//!   plan, the machine's up-link fault draws from its own strided RNG
//!   lane (per-machine streams, so draw order depends only on that
//!   machine's event order — never on cross-shard interleaving). When
//!   the process has more than one core and the bucket is large, shards
//!   run under [`std::thread::scope`]; otherwise inline. Either way the
//!   records produced are identical.
//! - **Phase B (coordinator, sequential):** shard records and
//!   coordinator events (fixes, report deliveries, retries, ticks) are
//!   merged by the *global schedule sequence number* every event was
//!   stamped with, and their vendor-side effects (protocol callbacks,
//!   discovery, metrics, telemetry, URR deposits) are replayed in
//!   exactly the order the sequential driver would have produced.
//!   Within a merged bucket, maximal runs of passing reliable-channel
//!   records collapse through [`Protocol::absorb_passes`], and a bucket
//!   that is *all* passes with no observers attached (no flight events,
//!   no journal, no URR, no faults) skips the merge entirely via the
//!   order-free [`Protocol::absorb_pass_batch`].
//!
//! Because sequence numbers are assigned at scheduling time by a single
//! monotone counter and the sequential queue is FIFO within a
//! timestamp, "merge by sequence number" reproduces the sequential
//! processing order exactly — the two drivers are bit-identical in
//! [`SimMetrics`], journal contents, flight events, and counter/gauge
//! totals at any worker count (counter *increments* may batch on the
//! fast path; their sums are identical).
//!
//! [`SimArena`] owns every queue and scratch buffer so sweep drivers
//! re-running many configurations reuse allocations across runs.

use std::collections::VecDeque;
use std::sync::Arc;

use mirage_deploy::{
    Command, MachineId, MachineSet, ProblemId, ProblemSet, Protocol, Release, TestOutcome,
    TestReport,
};
use mirage_telemetry::journal::{FaultKind, JournalEvent, NO_PROBLEM};
use mirage_telemetry::{FlightEvent, Telemetry};

use crate::engine::{Event, EventQueue, SimTime};
use crate::faults::{FaultPlan, FaultRng, RngLanes};
use crate::metrics::SimMetrics;
use crate::runner::{Simulation, JOURNAL_FLUSH_LEN, RETRY_SAFETY_CAP};
use crate::scenario::Scenario;
use crate::urr_sink::UrrSink;

/// Hard ceiling on the shard count. Shards beyond the fleet size add
/// pure overhead, and determinism does not require more.
pub const MAX_WORKERS: usize = 64;

/// Minimum bucket size (records) before Phase A fans out onto OS
/// threads; smaller buckets compute inline — thread launch would cost
/// more than the work.
const PAR_COMPUTE_MIN: usize = 4_096;

/// A `TestDone` event in a shard's calendar queue, stamped with the
/// global schedule sequence number that fixes its replay position.
#[derive(Debug, Clone, Copy)]
struct ShardTest {
    seq: u64,
    machine: MachineId,
    release: u32,
}

/// A shard-computed test record: the outcome plus (under faults) the
/// machine's precomputed up-link fault draws, ready for ordered replay.
#[derive(Debug, Clone, Copy)]
struct TestRec {
    seq: u64,
    machine: MachineId,
    release: u32,
    passed: bool,
    escaped: bool,
    lost: bool,
    duplicated: bool,
    deliveries: u8,
    delays: [SimTime; 2],
}

/// One machine shard: its calendar queue, drain scratch, and (under
/// faults) the strided per-machine RNG lanes it owns.
#[derive(Debug)]
struct Shard {
    queue: EventQueue<ShardTest>,
    raw: Vec<ShardTest>,
    lanes: RngLanes,
}

/// Reusable state for [`run_parallel_in`]: every queue and scratch
/// buffer the parallel driver needs, kept allocated across runs so
/// sweep grids pay allocation cost once.
#[derive(Debug, Default)]
pub struct SimArena {
    shards: Vec<Shard>,
    rec_bufs: Vec<Vec<TestRec>>,
    coord: EventQueue<(u64, Event)>,
    coord_buf: Vec<(u64, Event)>,
    /// Master time index: one notification per scheduled event, tagged
    /// with the owning shard (or the coordinator sentinel `workers`).
    /// Because it sees *every* schedule, its cursor is exactly the
    /// global simulation time — shard queues are then only drained when
    /// this queue proves they hold events at the current bucket, which
    /// keeps every shard cursor at (not beyond) global time and makes
    /// replay-time scheduling always legal.
    due: EventQueue<u8>,
    due_buf: Vec<u8>,
    due_flags: Vec<bool>,
    /// Last future time each queue was notified for: consecutive
    /// schedules onto the same queue at the same (still-pending) time
    /// need only one master-index entry.
    due_mark: Vec<SimTime>,
    escape_buf: Vec<u64>,
    fail_buf: Vec<ShardTest>,
    pairs: Vec<(MachineId, Release)>,
    run_buf: Vec<TestRec>,
    heads: Vec<usize>,
    journal_buf: Vec<(SimTime, JournalEvent)>,
    awaiting: Vec<Option<(u32, u32)>>,
    churn: Vec<Option<(SimTime, SimTime)>>,
}

impl SimArena {
    /// Creates an empty arena. Buffers grow on first use and are
    /// retained across runs.
    pub fn new() -> Self {
        SimArena::default()
    }

    /// Resets the arena for a fresh run over `scenario` at `workers`
    /// shards, reusing every allocation whose shape still fits.
    fn prepare(&mut self, scenario: &Scenario, workers: usize) {
        let n = scenario.machine_count();
        let faults_active = !scenario.faults.is_none();
        // Lanes are strided so shard `s` owns exactly the machines with
        // `index % workers == s`, and local lane `i` maps back to the
        // same global lane id (`i * workers + s == machine index`) the
        // sequential driver uses — per-machine streams are identical.
        let lanes_per_shard = if faults_active {
            n.div_ceil(workers)
        } else {
            0
        };
        if self.shards.len() != workers {
            self.shards.clear();
            self.rec_bufs.clear();
            for s in 0..workers {
                self.shards.push(Shard {
                    queue: EventQueue::new(),
                    raw: Vec::new(),
                    lanes: RngLanes::strided(
                        scenario.faults.seed,
                        lanes_per_shard,
                        workers as u64,
                        s as u64,
                    ),
                });
                self.rec_bufs.push(Vec::new());
            }
        } else {
            for (s, shard) in self.shards.iter_mut().enumerate() {
                shard.queue.reset();
                shard.raw.clear();
                shard.lanes.reset(
                    scenario.faults.seed,
                    lanes_per_shard,
                    workers as u64,
                    s as u64,
                );
            }
            for buf in &mut self.rec_bufs {
                buf.clear();
            }
        }
        self.coord.reset();
        self.coord_buf.clear();
        self.due.reset();
        self.due_buf.clear();
        self.due_flags.clear();
        self.due_flags.resize(workers + 1, false);
        self.due_mark.clear();
        self.due_mark.resize(workers + 1, SimTime::MAX);
        self.escape_buf.clear();
        self.fail_buf.clear();
        self.pairs.clear();
        self.run_buf.clear();
        self.heads.clear();
        self.heads.resize(workers, 0);
        self.journal_buf.clear();
        self.awaiting.clear();
        self.churn.clear();
        if faults_active {
            self.awaiting.resize(n, None);
            self.churn.resize(n, None);
            for &(m, leave, rejoin) in &scenario.faults.churn {
                self.churn[m.index()] = Some((leave, rejoin));
            }
        }
    }
}

/// Phase A: computes outcome (and fault draws) for every drained record
/// of one shard. Pure with respect to coordinator state: reads only the
/// scenario's static maps and the append-only release history.
#[allow(clippy::too_many_arguments)]
fn compute_shard(
    shard: &mut Shard,
    out: &mut Vec<TestRec>,
    machine_problem: &[Option<ProblemId>],
    missed: &MachineSet,
    fixed: &[ProblemSet],
    faults: &FaultPlan,
    faults_active: bool,
    workers: usize,
) {
    for &ShardTest {
        seq,
        machine,
        release,
    } in &shard.raw
    {
        let mut passed = match machine_problem[machine.index()] {
            None => true,
            Some(problem) => fixed[release as usize].contains(problem),
        };
        let mut escaped = false;
        if !passed && missed.contains(machine) {
            passed = true;
            escaped = true;
        }
        let mut rec = TestRec {
            seq,
            machine,
            release,
            passed,
            escaped,
            lost: false,
            duplicated: false,
            deliveries: 0,
            delays: [0; 2],
        };
        if faults_active {
            // The machine's own up-link lane, drawn in the sequential
            // driver's fixed per-report order (loss, duplication, then
            // one delay per delivery).
            let lane = shard.lanes.lane(machine.index() / workers);
            rec.lost = lane.chance(faults.loss);
            if !rec.lost {
                rec.deliveries = 1;
                if lane.chance(faults.duplication) {
                    rec.duplicated = true;
                    rec.deliveries = 2;
                }
                for slot in 0..rec.deliveries as usize {
                    rec.delays[slot] = lane.below_inclusive(faults.max_delay);
                }
            }
        }
        out.push(rec);
    }
}

/// Where the next in-order item of a merged bucket comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Shard(usize),
    Coord,
    Done,
}

/// The `(workers + 1)`-way merge cursor: picks the pending record or
/// coordinator event with the smallest sequence number.
fn next_source(
    rec_bufs: &[Vec<TestRec>],
    heads: &[usize],
    coord_buf: &[(u64, Event)],
    chead: usize,
) -> Source {
    let mut best = Source::Done;
    let mut best_seq = u64::MAX;
    for (s, out) in rec_bufs.iter().enumerate() {
        if let Some(rec) = out.get(heads[s]) {
            if rec.seq < best_seq {
                best_seq = rec.seq;
                best = Source::Shard(s);
            }
        }
    }
    if let Some(&(seq, _)) = coord_buf.get(chead) {
        if seq < best_seq {
            best = Source::Coord;
        }
    }
    best
}

/// The parallel driver's coordinator: owns all cross-shard state and
/// replays merged buckets in sequential order.
struct ParSim<'s, 'a> {
    scenario: &'s Scenario,
    arena: &'a mut SimArena,
    workers: usize,
    /// OS-level parallelism available for Phase A (1 on a single-core
    /// host: sharding still pays via batch absorption, honestly inline).
    threads: usize,
    now: SimTime,
    /// Global schedule sequence counter: every scheduled event (shard or
    /// coordinator) takes the next value, reproducing the sequential
    /// queue's FIFO-within-timestamp order under merge.
    seq: u64,
    /// Total pending events across all queues — the sequential driver's
    /// `queue.len()`, maintained incrementally so the queue-depth gauge
    /// trajectory matches exactly.
    virtual_len: usize,
    queue_high_water: usize,
    fixed_by_release: Vec<ProblemSet>,
    fix_queue: VecDeque<ProblemId>,
    fixing: Option<ProblemId>,
    known_problems: ProblemSet,
    metrics: SimMetrics,
    telemetry: Telemetry,
    journaling: bool,
    /// No observers that are sensitive to per-event order (flight
    /// events, journal, URR) and no faults: all-pass buckets may take
    /// the order-free batch path.
    plain: bool,
    faults_active: bool,
    rng_down: FaultRng,
    ticks_issued: u64,
    urr_sink: Option<UrrSink>,
}

impl<'s, 'a> ParSim<'s, 'a> {
    fn new(
        arena: &'a mut SimArena,
        scenario: &'s Scenario,
        telemetry: Telemetry,
        workers: usize,
    ) -> Self {
        arena.prepare(scenario, workers);
        let faults_active = !scenario.faults.is_none();
        let n = scenario.machine_count();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(workers);
        let plain = !faults_active
            && scenario.urr.is_none()
            && !telemetry.enabled()
            && !telemetry.journals();
        ParSim {
            scenario,
            arena,
            workers,
            threads,
            now: 0,
            seq: 0,
            virtual_len: 0,
            queue_high_water: 0,
            fixed_by_release: vec![ProblemSet::new()],
            fix_queue: VecDeque::new(),
            fixing: None,
            known_problems: ProblemSet::new(),
            metrics: SimMetrics {
                machine_pass_time: vec![None; n],
                ..SimMetrics::default()
            },
            telemetry,
            journaling: false,
            plain,
            faults_active,
            rng_down: FaultRng::new(scenario.faults.seed),
            ticks_issued: 0,
            urr_sink: scenario
                .urr
                .as_ref()
                .map(|urr| UrrSink::new(scenario, Arc::clone(urr))),
        }
    }

    #[inline]
    fn jot(&mut self, event: JournalEvent) {
        if self.journaling {
            self.arena.journal_buf.push((self.now, event));
            if self.arena.journal_buf.len() >= JOURNAL_FLUSH_LEN {
                self.flush_journal();
            }
        }
    }

    fn flush_journal(&mut self) {
        if !self.arena.journal_buf.is_empty() {
            self.telemetry.journal_timed(&self.arena.journal_buf);
            self.arena.journal_buf.clear();
        }
    }

    fn bump_queue_depth(&mut self) {
        if self.virtual_len > self.queue_high_water {
            self.queue_high_water = self.virtual_len;
            self.telemetry
                .gauge("sim.queue_depth", self.virtual_len as i64);
        }
    }

    fn latest_release(&self) -> Release {
        Release((self.fixed_by_release.len() - 1) as u32)
    }

    #[inline]
    fn schedule_test(&mut self, time: SimTime, machine: MachineId, release: u32) {
        let seq = self.seq;
        self.seq += 1;
        let shard = machine.index() % self.workers;
        self.arena.shards[shard].queue.schedule(
            time,
            ShardTest {
                seq,
                machine,
                release,
            },
        );
        // One master-index entry per (queue, future time) suffices; a
        // mark at a strictly future time is guaranteed still pending.
        if time <= self.now || self.arena.due_mark[shard] != time {
            self.arena.due.schedule(time, shard as u8);
            self.arena.due_mark[shard] = time;
        }
        self.virtual_len += 1;
    }

    #[inline]
    fn schedule_coord(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.arena.coord.schedule(time, (seq, event));
        if time <= self.now || self.arena.due_mark[self.workers] != time {
            self.arena.due.schedule(time, self.workers as u8);
            self.arena.due_mark[self.workers] = time;
        }
        self.virtual_len += 1;
    }

    fn exec(&mut self, commands: Vec<Command>) {
        for cmd in commands {
            match cmd {
                Command::Notify { machines, release } => {
                    self.telemetry
                        .counter("sim.machines_notified", machines.len() as u64);
                    if self.faults_active {
                        for m in machines {
                            self.fault_notify(m, release.0);
                        }
                        continue;
                    }
                    self.metrics.total_tests += machines.len();
                    let cycle = self.scenario.timings.machine_cycle();
                    if !self.telemetry.enabled() && !self.journaling {
                        for m in machines {
                            let start = self.scenario.offline_until[m.index()].max(self.now);
                            self.schedule_test(start + cycle, m, release.0);
                        }
                        continue;
                    }
                    for m in machines {
                        self.telemetry
                            .event_with(|| FlightEvent::MachineNotifiedId {
                                machine: m.index() as u32,
                                release: release.0,
                            });
                        self.jot(JournalEvent::Notify {
                            machine: m.index() as u32,
                            release: release.0,
                        });
                        let start = self.scenario.offline_until[m.index()].max(self.now);
                        self.schedule_test(start + cycle, m, release.0);
                    }
                }
                Command::Complete => {
                    if self.metrics.completion_time.is_none() {
                        self.metrics.completion_time = Some(self.now);
                    }
                }
            }
        }
    }

    fn available_from(&self, machine: MachineId, t: SimTime) -> Option<SimTime> {
        let start = t.max(self.scenario.offline_until[machine.index()]);
        match self.arena.churn[machine.index()] {
            Some((leave, rejoin)) if start >= leave && start < rejoin => {
                if rejoin == SimTime::MAX {
                    None
                } else {
                    Some(rejoin)
                }
            }
            _ => Some(start),
        }
    }

    fn fault_notify(&mut self, machine: MachineId, release: u32) {
        self.telemetry
            .event_with(|| FlightEvent::MachineNotifiedId {
                machine: machine.index() as u32,
                release,
            });
        self.jot(JournalEvent::Notify {
            machine: machine.index() as u32,
            release,
        });
        self.arena.awaiting[machine.index()] = Some((release, 0));
        self.send_notification(machine, release);
        let delay = self.scenario.faults.retry_delay(0);
        self.schedule_coord(
            self.now + delay,
            Event::RetryCheck {
                machine,
                release,
                attempt: 0,
            },
        );
    }

    fn send_notification(&mut self, machine: MachineId, release: u32) {
        let loss = self.scenario.faults.loss;
        let dup = self.scenario.faults.duplication;
        let max_delay = self.scenario.faults.max_delay;
        let mut deliveries = 0u32;
        if self.rng_down.chance(loss) {
            self.metrics.msgs_dropped += 1;
            self.telemetry.counter("sim.msgs_dropped", 1);
            self.jot(JournalEvent::Fault {
                fault: FaultKind::Loss,
                machine: machine.index() as u32,
            });
        } else {
            deliveries += 1;
            if self.rng_down.chance(dup) {
                self.metrics.msgs_duplicated += 1;
                self.telemetry.counter("sim.msgs_duplicated", 1);
                self.jot(JournalEvent::Fault {
                    fault: FaultKind::Duplication,
                    machine: machine.index() as u32,
                });
                deliveries += 1;
            }
        }
        for _ in 0..deliveries {
            let delay = self.rng_down.below_inclusive(max_delay);
            if let Some(start) = self.available_from(machine, self.now + delay) {
                self.metrics.total_tests += 1;
                self.schedule_test(
                    start + self.scenario.timings.machine_cycle(),
                    machine,
                    release,
                );
            }
        }
    }

    #[inline]
    fn sink_report(&mut self, machine: MachineId, release: u32, outcome: TestOutcome) {
        if self.urr_sink.is_none() {
            return;
        }
        let problem = match outcome {
            TestOutcome::Pass => None,
            TestOutcome::Fail { problem } => Some(problem),
        };
        self.jot(JournalEvent::UrrDeposit {
            machine: machine.index() as u32,
            release,
            problem: problem.map_or(NO_PROBLEM, |p| p.index() as u16),
        });
        if let Some(sink) = &mut self.urr_sink {
            sink.record(machine, release, problem);
        }
    }

    fn start_next_fix(&mut self) {
        if self.fixing.is_none() {
            if let Some(problem) = self.fix_queue.pop_front() {
                self.schedule_coord(
                    self.now + self.scenario.timings.fix,
                    Event::FixDone { problem },
                );
                self.fixing = Some(problem);
            }
        }
    }

    /// Replays one shard record under a fault plan: the mirror of
    /// `fault_test_done` + `send_report`, with the up-link draws taken
    /// from the record instead of the RNG.
    fn replay_fault_test(&mut self, rec: TestRec) {
        let TestRec {
            machine, release, ..
        } = rec;
        if rec.escaped {
            self.metrics.escaped_problems += 1;
            self.telemetry.counter("sim.escaped_problems", 1);
        }
        let outcome = if rec.passed {
            if self.metrics.machine_pass_time[machine.index()].is_none() {
                self.metrics.machine_pass_time[machine.index()] = Some(self.now);
            }
            self.telemetry.counter("sim.tests_passed", 1);
            self.telemetry.event_with(|| FlightEvent::TestPassedId {
                machine: machine.index() as u32,
                release,
            });
            self.jot(JournalEvent::Test {
                machine: machine.index() as u32,
                release,
                problem: NO_PROBLEM,
            });
            TestOutcome::Pass
        } else {
            self.metrics.failed_tests += 1;
            self.telemetry.counter("sim.tests_failed", 1);
            let problem = self
                .scenario
                .problem_of(machine)
                .expect("failed machine must carry a problem");
            self.telemetry.event_with(|| FlightEvent::TestFailedId {
                machine: machine.index() as u32,
                release,
                problem: problem.index() as u16,
            });
            self.jot(JournalEvent::Test {
                machine: machine.index() as u32,
                release,
                problem: problem.index() as u16,
            });
            TestOutcome::Fail { problem }
        };
        if rec.lost {
            self.metrics.msgs_dropped += 1;
            self.telemetry.counter("sim.msgs_dropped", 1);
            self.jot(JournalEvent::Fault {
                fault: FaultKind::Loss,
                machine: machine.index() as u32,
            });
        } else if rec.duplicated {
            self.metrics.msgs_duplicated += 1;
            self.telemetry.counter("sim.msgs_duplicated", 1);
            self.jot(JournalEvent::Fault {
                fault: FaultKind::Duplication,
                machine: machine.index() as u32,
            });
        }
        for slot in 0..rec.deliveries as usize {
            self.schedule_coord(
                self.now + rec.delays[slot],
                Event::ReportDelivery {
                    machine,
                    release,
                    outcome,
                },
            );
        }
    }

    /// Replays one reliable-channel shard record through the full
    /// protocol path: the mirror of `handle_test_done`.
    fn replay_reliable_test(&mut self, protocol: &mut dyn Protocol, rec: TestRec) {
        let TestRec {
            machine, release, ..
        } = rec;
        if rec.escaped {
            self.metrics.escaped_problems += 1;
            self.telemetry.counter("sim.escaped_problems", 1);
        }
        let outcome = if rec.passed {
            if self.metrics.machine_pass_time[machine.index()].is_none() {
                self.metrics.machine_pass_time[machine.index()] = Some(self.now);
            }
            self.telemetry.counter("sim.tests_passed", 1);
            self.telemetry.event_with(|| FlightEvent::TestPassedId {
                machine: machine.index() as u32,
                release,
            });
            TestOutcome::Pass
        } else {
            self.metrics.failed_tests += 1;
            self.telemetry.counter("sim.tests_failed", 1);
            let problem = self
                .scenario
                .problem_of(machine)
                .expect("failed machine must carry a problem");
            self.telemetry.event_with(|| FlightEvent::TestFailedId {
                machine: machine.index() as u32,
                release,
                problem: problem.index() as u16,
            });
            if self.known_problems.insert(problem) {
                self.metrics.problems_discovered.push(problem);
                self.telemetry.counter("sim.problems_discovered", 1);
                self.telemetry
                    .event_with(|| FlightEvent::ProblemDiscoveredId {
                        problem: problem.index() as u16,
                    });
                self.fix_queue.push_back(problem);
                self.start_next_fix();
            }
            TestOutcome::Fail { problem }
        };
        self.jot(JournalEvent::Test {
            machine: machine.index() as u32,
            release,
            problem: match outcome {
                TestOutcome::Pass => NO_PROBLEM,
                TestOutcome::Fail { problem } => problem.index() as u16,
            },
        });
        self.jot(JournalEvent::Report {
            machine: machine.index() as u32,
            release,
            passed: matches!(outcome, TestOutcome::Pass),
        });
        self.sink_report(machine, release, outcome);
        let report = TestReport {
            machine,
            release: Release(release),
            outcome,
        };
        let commands = protocol.on_report(&report);
        self.exec(commands);
        if let TestOutcome::Fail { problem } = report.outcome {
            let latest = self.latest_release();
            if latest.0 > release && self.fixed_by_release[latest.0 as usize].contains(problem) {
                let commands =
                    protocol.on_release(latest, &self.fixed_by_release[latest.0 as usize]);
                self.exec(commands);
            }
        }
    }

    fn replay_test_rec(&mut self, protocol: &mut dyn Protocol, rec: TestRec) {
        if self.faults_active {
            self.replay_fault_test(rec);
        } else {
            self.replay_reliable_test(protocol, rec);
        }
    }

    /// Emits the driver-side effects of passes absorbed silently by the
    /// protocol (the pass branch of `handle_test_done`, minus the
    /// `on_report` the protocol already accounted for). Counter
    /// increments batch across the chunk — their *sums* match the
    /// sequential per-event emissions.
    fn absorbed_pass_effects(&mut self, chunk: &[TestRec]) {
        let now = self.now;
        let mut escaped = 0u64;
        for rec in chunk {
            if rec.escaped {
                escaped += 1;
                self.metrics.escaped_problems += 1;
            }
            let slot = &mut self.metrics.machine_pass_time[rec.machine.index()];
            if slot.is_none() {
                *slot = Some(now);
            }
        }
        if !self.plain {
            for rec in chunk {
                self.telemetry.event_with(|| FlightEvent::TestPassedId {
                    machine: rec.machine.index() as u32,
                    release: rec.release,
                });
                self.jot(JournalEvent::Test {
                    machine: rec.machine.index() as u32,
                    release: rec.release,
                    problem: NO_PROBLEM,
                });
                self.jot(JournalEvent::Report {
                    machine: rec.machine.index() as u32,
                    release: rec.release,
                    passed: true,
                });
                self.sink_report(rec.machine, rec.release, TestOutcome::Pass);
            }
        }
        self.telemetry
            .counter("sim.events_processed", chunk.len() as u64);
        self.telemetry
            .counter("sim.tests_passed", chunk.len() as u64);
        if escaped > 0 {
            self.telemetry.counter("sim.escaped_problems", escaped);
        }
        self.virtual_len -= chunk.len();
        // The queue only shrank: no high-water check needed.
    }

    /// Replays a maximal seq-contiguous run of passing reliable-channel
    /// records: absorb what the protocol can take silently, route the
    /// first transition-triggering record through `on_report`, repeat.
    fn replay_pass_run(
        &mut self,
        protocol: &mut dyn Protocol,
        pairs: &mut Vec<(MachineId, Release)>,
        run: &[TestRec],
    ) {
        let mut off = 0;
        while off < run.len() {
            pairs.clear();
            pairs.extend(run[off..].iter().map(|r| (r.machine, Release(r.release))));
            let absorbed = protocol.absorb_passes(pairs);
            self.absorbed_pass_effects(&run[off..off + absorbed]);
            off += absorbed;
            if off < run.len() {
                let rec = run[off];
                off += 1;
                self.virtual_len -= 1;
                self.telemetry.counter("sim.events_processed", 1);
                self.replay_test_rec(protocol, rec);
                self.bump_queue_depth();
            }
        }
    }

    /// Ordered replay of an all-pass plain bucket whose `pairs` are
    /// already in global sequence order, without materialized records:
    /// absorb maximal prefixes, fully replay each stage-completing
    /// pass, repeat. `escapes` holds the (sorted) bucket-relative
    /// positions of passes that escaped detection.
    fn replay_ordered_passes(
        &mut self,
        protocol: &mut dyn Protocol,
        pairs: &[(MachineId, Release)],
        escapes: &[u64],
        base: u64,
    ) {
        // Pass times are pre-stamped by the caller while it gathers
        // `pairs` — every pass in the current bucket gets time `now`
        // regardless of which sub-path replays it. Escape positions in
        // `escapes` are bucket-absolute; `base` is the bucket position
        // of `pairs[0]`.
        let mut off = 0usize;
        let mut esc_i = 0usize;
        while off < pairs.len() {
            let absorbed = protocol.absorb_passes(&pairs[off..]);
            if absorbed > 0 {
                let mut escaped = 0u64;
                while esc_i < escapes.len()
                    && (escapes[esc_i] as usize) < base as usize + off + absorbed
                {
                    esc_i += 1;
                    escaped += 1;
                }
                if escaped > 0 {
                    self.metrics.escaped_problems += escaped as usize;
                    self.telemetry.counter("sim.escaped_problems", escaped);
                }
                self.telemetry
                    .counter("sim.events_processed", absorbed as u64);
                self.telemetry.counter("sim.tests_passed", absorbed as u64);
                self.virtual_len -= absorbed;
                off += absorbed;
            }
            if off < pairs.len() {
                let (machine, release) = pairs[off];
                let escaped =
                    esc_i < escapes.len() && escapes[esc_i] as usize == base as usize + off;
                if escaped {
                    esc_i += 1;
                }
                off += 1;
                self.virtual_len -= 1;
                self.telemetry.counter("sim.events_processed", 1);
                self.replay_reliable_test(
                    protocol,
                    TestRec {
                        seq: 0,
                        machine,
                        release: release.0,
                        passed: true,
                        escaped,
                        lost: false,
                        duplicated: false,
                        deliveries: 0,
                        delays: [0; 2],
                    },
                );
                self.bump_queue_depth();
            }
        }
    }

    fn replay_report_delivery(
        &mut self,
        protocol: &mut dyn Protocol,
        machine: MachineId,
        release: u32,
        outcome: TestOutcome,
    ) {
        if let Some((awaited, _)) = self.arena.awaiting[machine.index()] {
            if release >= awaited {
                self.arena.awaiting[machine.index()] = None;
            }
        }
        self.jot(JournalEvent::Report {
            machine: machine.index() as u32,
            release,
            passed: matches!(outcome, TestOutcome::Pass),
        });
        self.sink_report(machine, release, outcome);
        if let TestOutcome::Fail { problem } = outcome {
            if self.known_problems.insert(problem) {
                self.metrics.problems_discovered.push(problem);
                self.telemetry.counter("sim.problems_discovered", 1);
                self.telemetry
                    .event_with(|| FlightEvent::ProblemDiscoveredId {
                        problem: problem.index() as u16,
                    });
                self.fix_queue.push_back(problem);
                self.start_next_fix();
            }
        }
        let report = TestReport {
            machine,
            release: Release(release),
            outcome,
        };
        let commands = protocol.on_report(&report);
        self.exec(commands);
        if let TestOutcome::Fail { problem } = outcome {
            let latest = self.latest_release();
            if latest.0 > release && self.fixed_by_release[latest.0 as usize].contains(problem) {
                let commands =
                    protocol.on_release(latest, &self.fixed_by_release[latest.0 as usize]);
                self.exec(commands);
            }
        }
    }

    fn replay_retry_check(&mut self, machine: MachineId, release: u32, attempt: u32) {
        if self.arena.awaiting[machine.index()] != Some((release, attempt)) {
            return;
        }
        let cap = self
            .scenario
            .faults
            .max_retries
            .unwrap_or(RETRY_SAFETY_CAP)
            .min(RETRY_SAFETY_CAP);
        if attempt >= cap {
            self.arena.awaiting[machine.index()] = None;
            return;
        }
        if self.available_from(machine, self.now).is_none() {
            self.arena.awaiting[machine.index()] = None;
            return;
        }
        self.metrics.retries_sent += 1;
        self.telemetry.counter("deploy.retries_sent", 1);
        self.jot(JournalEvent::Retry {
            machine: machine.index() as u32,
            release,
            attempt,
        });
        self.send_notification(machine, release);
        let next = attempt + 1;
        self.arena.awaiting[machine.index()] = Some((release, next));
        self.schedule_coord(
            self.now + self.scenario.faults.retry_delay(next),
            Event::RetryCheck {
                machine,
                release,
                attempt: next,
            },
        );
    }

    fn replay_fix_done(&mut self, protocol: &mut dyn Protocol, problem: ProblemId) {
        debug_assert_eq!(self.fixing, Some(problem));
        self.fixing = None;
        let mut fixed = self.fixed_by_release.last().cloned().unwrap_or_default();
        fixed.insert(problem);
        self.fixed_by_release.push(fixed);
        self.metrics.releases_shipped += 1;
        self.telemetry.counter("sim.releases_shipped", 1);
        self.start_next_fix();
        let release = self.latest_release();
        self.telemetry
            .event(FlightEvent::ReleaseShipped { release: release.0 });
        let commands = protocol.on_release(release, &self.fixed_by_release[release.0 as usize]);
        self.exec(commands);
    }

    fn replay_coord(&mut self, protocol: &mut dyn Protocol, event: Event) {
        match event {
            Event::TestDone { .. } => {
                unreachable!("TestDone events live in shard queues, never the coordinator's")
            }
            Event::FixDone { problem } => self.replay_fix_done(protocol, problem),
            Event::ReportDelivery {
                machine,
                release,
                outcome,
            } => self.replay_report_delivery(protocol, machine, release, outcome),
            Event::RetryCheck {
                machine,
                release,
                attempt,
            } => self.replay_retry_check(machine, release, attempt),
            Event::Tick => {
                let commands = protocol.on_tick(self.now);
                self.exec(commands);
                if !protocol.done() && self.ticks_issued < self.scenario.faults.max_ticks {
                    self.schedule_coord(self.now + self.scenario.faults.tick_interval, Event::Tick);
                    self.ticks_issued += 1;
                }
            }
        }
    }

    fn run(mut self, protocol: &mut dyn Protocol) -> SimMetrics {
        let _span = self.telemetry.span("sim.run");
        self.journaling = self.telemetry.journals();
        let commands = protocol.start();
        self.exec(commands);
        if self.faults_active && self.scenario.faults.rep_timeout.is_some() {
            self.schedule_coord(self.scenario.faults.tick_interval, Event::Tick);
            self.ticks_issued = 1;
        }
        self.bump_queue_depth();

        // Scratch buffers move out of the arena for the run (the borrow
        // checker cannot see through `&mut self` into disjoint arena
        // fields from helper calls) and move back at the end.
        let mut rec_bufs = std::mem::take(&mut self.arena.rec_bufs);
        let mut coord_buf = std::mem::take(&mut self.arena.coord_buf);
        let mut pairs = std::mem::take(&mut self.arena.pairs);
        let mut run_buf = std::mem::take(&mut self.arena.run_buf);
        let mut heads = std::mem::take(&mut self.arena.heads);
        let mut due_buf = std::mem::take(&mut self.arena.due_buf);
        let mut due_flags = std::mem::take(&mut self.arena.due_flags);
        let mut escape_buf = std::mem::take(&mut self.arena.escape_buf);
        let mut fail_buf = std::mem::take(&mut self.arena.fail_buf);

        loop {
            // The next time bucket comes from the master index, which
            // also tells us *which* queues hold events there. Never
            // probing the other queues keeps their cursors at global
            // time, so replay-time schedules are always in the future.
            due_buf.clear();
            let Some(t) = self.arena.due.pop_bucket(&mut due_buf) else {
                break;
            };
            due_flags.fill(false);
            for &s in &due_buf {
                due_flags[s as usize] = true;
            }
            if t != self.now {
                self.now = t;
                self.telemetry.journal_time(t);
            }

            // Phase A, step 1: drain each shard's bucket. Record
            // computation is deferred until the bucket's replay path is
            // known — all-pass plain buckets never materialize records.
            let mut total = 0usize;
            let mut min_seq = u64::MAX;
            let mut max_seq = 0u64;
            for (s, shard) in self.arena.shards.iter_mut().enumerate() {
                shard.raw.clear();
                if due_flags[s] {
                    let drained = shard.queue.pop_bucket(&mut shard.raw);
                    debug_assert_eq!(drained, Some(t), "shard bucket off the master index");
                }
                if let (Some(first), Some(last)) = (shard.raw.first(), shard.raw.last()) {
                    min_seq = min_seq.min(first.seq);
                    max_seq = max_seq.max(last.seq);
                }
                total += shard.raw.len();
            }
            // Scheduling is FIFO within a timestamp, so each shard's
            // drained bucket is already seq-sorted; when the bucket's
            // seqs form one contiguous range (the common case: one wave
            // scheduled by a single Notify) the global order falls out
            // by direct placement, with no comparison merge at all.
            let contiguous = total > 0 && max_seq - min_seq + 1 == total as u64;

            // Drain the coordinator's bucket at this time, if any.
            coord_buf.clear();
            if due_flags[self.workers] {
                let drained = self.arena.coord.pop_bucket(&mut coord_buf);
                debug_assert_eq!(drained, Some(t), "coordinator bucket off the master index");
            }

            // Plain contiguous buckets (no faults, journal, URR, or
            // flight events — the overwhelmingly common case) replay
            // straight off the 16-byte raw records. No TestRec is ever
            // materialized.
            if self.plain && contiguous && coord_buf.is_empty() {
                // One placement pass per shard computes each record's
                // outcome, stamps pass times, places passes into
                // `pairs` by global sequence, and sets failing records
                // aside (with their global position stashed in `seq`).
                // Stamping before replay is equivalent: every pass in
                // this bucket receives time `t` on whichever sub-path
                // replays it.
                escape_buf.clear();
                pairs.clear();
                pairs.resize(total, (MachineId(0), Release(0)));
                fail_buf.clear();
                {
                    let machine_problem = &self.scenario.machine_problem[..];
                    let missed = &self.scenario.missed_detection;
                    let fixed = &self.fixed_by_release[..];
                    let pass_time = &mut self.metrics.machine_pass_time[..];
                    for shard in &self.arena.shards {
                        for st in &shard.raw {
                            let pos = st.seq - min_seq;
                            if let Some(problem) = machine_problem[st.machine.index()] {
                                if !fixed[st.release as usize].contains(problem) {
                                    if !missed.contains(st.machine) {
                                        fail_buf.push(ShardTest { seq: pos, ..*st });
                                        continue;
                                    }
                                    escape_buf.push(pos);
                                }
                            }
                            pairs[pos as usize] = (st.machine, Release(st.release));
                            let slot = &mut pass_time[st.machine.index()];
                            if slot.is_none() {
                                *slot = Some(t);
                            }
                        }
                    }
                }
                // Shards interleave in the placement, so positions
                // collected per shard need one merge-sort each (both
                // are concatenations of sorted runs — cheap).
                escape_buf.sort_unstable();
                fail_buf.sort_unstable_by_key(|st| st.seq);

                // Walk the bucket as pass segments separated by
                // failures: each segment absorbs via ordered
                // maximal-prefix absorption (a transition-free segment
                // is a single `absorb_passes` call — the ordered twin
                // of the order-free batch, which still serves the
                // non-contiguous path below); each failure replays
                // through the full protocol path in order.
                let mut start = 0usize;
                let mut esc_lo = 0usize;
                for f in &fail_buf {
                    let pos = f.seq as usize;
                    if pos > start {
                        let hi =
                            esc_lo + escape_buf[esc_lo..].partition_point(|&e| (e as usize) < pos);
                        self.replay_ordered_passes(
                            protocol,
                            &pairs[start..pos],
                            &escape_buf[esc_lo..hi],
                            start as u64,
                        );
                        esc_lo = hi;
                    }
                    self.virtual_len -= 1;
                    self.telemetry.counter("sim.events_processed", 1);
                    self.replay_reliable_test(
                        protocol,
                        TestRec {
                            seq: 0,
                            machine: f.machine,
                            release: f.release,
                            passed: false,
                            escaped: false,
                            lost: false,
                            duplicated: false,
                            deliveries: 0,
                            delays: [0; 2],
                        },
                    );
                    self.bump_queue_depth();
                    start = pos + 1;
                }
                if start < total {
                    self.replay_ordered_passes(
                        protocol,
                        &pairs[start..],
                        &escape_buf[esc_lo..],
                        start as u64,
                    );
                }
                continue;
            }

            // A plain bucket whose seqs are *not* contiguous (offline
            // stragglers colliding with a later wave) cannot placement-
            // merge, but if it is all passes the order-free batch
            // absorb applies — shard order is as good as any.
            if self.plain && total > 0 && !contiguous && coord_buf.is_empty() {
                let mut all_pass = true;
                let mut escaped = 0usize;
                {
                    let machine_problem = &self.scenario.machine_problem[..];
                    let missed = &self.scenario.missed_detection;
                    let fixed = &self.fixed_by_release[..];
                    'scan: for shard in &self.arena.shards {
                        for st in &shard.raw {
                            if let Some(problem) = machine_problem[st.machine.index()] {
                                if !fixed[st.release as usize].contains(problem) {
                                    if !missed.contains(st.machine) {
                                        all_pass = false;
                                        break 'scan;
                                    }
                                    escaped += 1;
                                }
                            }
                        }
                    }
                }
                if all_pass {
                    pairs.clear();
                    for shard in &self.arena.shards {
                        pairs.extend(shard.raw.iter().map(|r| (r.machine, Release(r.release))));
                    }
                    if protocol.absorb_pass_batch(&pairs) {
                        for &(m, _) in pairs.iter() {
                            let slot = &mut self.metrics.machine_pass_time[m.index()];
                            if slot.is_none() {
                                *slot = Some(t);
                            }
                        }
                        // Counter *sums* match the per-event sequential
                        // emissions (order-insensitive by definition).
                        self.metrics.escaped_problems += escaped;
                        self.telemetry.counter("sim.events_processed", total as u64);
                        self.telemetry.counter("sim.tests_passed", total as u64);
                        if escaped > 0 {
                            self.telemetry
                                .counter("sim.escaped_problems", escaped as u64);
                        }
                        self.virtual_len -= total;
                        continue;
                    }
                }
            }

            // Phase A, step 2: compute records for every drained shard.
            {
                let shards = &mut self.arena.shards;
                for out in rec_bufs.iter_mut() {
                    out.clear();
                }
                let machine_problem = &self.scenario.machine_problem[..];
                let missed = &self.scenario.missed_detection;
                let fixed = &self.fixed_by_release[..];
                let faults = &self.scenario.faults;
                let faults_active = self.faults_active;
                let workers = self.workers;
                if self.threads > 1 && total >= PAR_COMPUTE_MIN {
                    std::thread::scope(|scope| {
                        for (shard, out) in shards.iter_mut().zip(rec_bufs.iter_mut()) {
                            if shard.raw.is_empty() {
                                continue;
                            }
                            scope.spawn(move || {
                                compute_shard(
                                    shard,
                                    out,
                                    machine_problem,
                                    missed,
                                    fixed,
                                    faults,
                                    faults_active,
                                    workers,
                                );
                            });
                        }
                    });
                } else {
                    for (shard, out) in shards.iter_mut().zip(rec_bufs.iter_mut()) {
                        if shard.raw.is_empty() {
                            continue;
                        }
                        compute_shard(
                            shard,
                            out,
                            machine_problem,
                            missed,
                            fixed,
                            faults,
                            faults_active,
                            workers,
                        );
                    }
                }
            }

            // Phase B: merge by global sequence number and replay in
            // exact sequential order.
            heads.fill(0);
            let mut chead = 0usize;
            loop {
                match next_source(&rec_bufs, &heads, &coord_buf, chead) {
                    Source::Done => break,
                    Source::Coord => {
                        let (_, event) = coord_buf[chead];
                        chead += 1;
                        self.virtual_len -= 1;
                        self.telemetry.counter("sim.events_processed", 1);
                        self.replay_coord(protocol, event);
                        self.bump_queue_depth();
                    }
                    Source::Shard(s) => {
                        let rec = rec_bufs[s][heads[s]];
                        if !self.faults_active && rec.passed {
                            // Gather the maximal run of consecutive
                            // passing records (across shards, in seq
                            // order) and absorb it batched.
                            run_buf.clear();
                            run_buf.push(rec);
                            heads[s] += 1;
                            while let Source::Shard(s2) =
                                next_source(&rec_bufs, &heads, &coord_buf, chead)
                            {
                                let next = rec_bufs[s2][heads[s2]];
                                if !next.passed {
                                    break;
                                }
                                run_buf.push(next);
                                heads[s2] += 1;
                            }
                            let run = std::mem::take(&mut run_buf);
                            self.replay_pass_run(protocol, &mut pairs, &run);
                            run_buf = run;
                        } else {
                            heads[s] += 1;
                            self.virtual_len -= 1;
                            self.telemetry.counter("sim.events_processed", 1);
                            self.replay_test_rec(protocol, rec);
                            self.bump_queue_depth();
                        }
                    }
                }
            }
        }

        self.arena.rec_bufs = rec_bufs;
        self.arena.coord_buf = coord_buf;
        self.arena.pairs = pairs;
        self.arena.run_buf = run_buf;
        self.arena.heads = heads;
        self.arena.due_buf = due_buf;
        self.arena.due_flags = due_flags;
        self.arena.escape_buf = escape_buf;
        self.arena.fail_buf = fail_buf;

        debug_assert_eq!(self.virtual_len, 0, "all queues drained at run end");
        if let Some(sink) = &mut self.urr_sink {
            sink.flush();
        }
        self.flush_journal();
        self.telemetry
            .gauge("sim.queue_depth", self.virtual_len as i64);
        self.metrics.rep_timeouts = protocol.rep_timeouts();
        self.metrics
    }
}

/// Clamps a requested worker count to `[1, MAX_WORKERS]` and the fleet
/// size (more shards than machines is pure overhead).
fn clamp_workers(requested: usize, machine_count: usize) -> usize {
    requested.clamp(1, MAX_WORKERS).min(machine_count.max(1))
}

/// Resolves the effective worker count for `scenario`: an explicit
/// [`crate::ScenarioBuilder::with_workers`] setting wins, then the
/// `MIRAGE_SIM_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]; the result is clamped to the
/// fleet size and [`MAX_WORKERS`].
pub fn resolve_workers(scenario: &Scenario) -> usize {
    let configured = scenario.workers.or_else(|| {
        std::env::var("MIRAGE_SIM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
    });
    let requested = configured.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    clamp_workers(requested, scenario.machine_count())
}

/// Runs `protocol` against `scenario` on the sharded parallel driver
/// with an explicit worker count, reusing `arena`'s allocations.
///
/// Bit-identical to the sequential [`Simulation`] at every worker
/// count; `workers <= 1` delegates to it outright (the oracle is the
/// one-worker configuration). Publishes the effective worker count on
/// the `sim.workers` gauge.
pub fn run_parallel_in(
    arena: &mut SimArena,
    scenario: &Scenario,
    protocol: &mut dyn Protocol,
    telemetry: Telemetry,
    workers: usize,
) -> SimMetrics {
    let workers = clamp_workers(workers, scenario.machine_count());
    telemetry.gauge("sim.workers", workers as i64);
    // Tick-driven protocols (rollout controllers with a decision clock)
    // run on the sequential driver, which owns the tick schedule.
    if workers <= 1 || protocol.wants_ticks() {
        return Simulation::new(scenario)
            .with_telemetry(telemetry)
            .run(protocol);
    }
    ParSim::new(arena, scenario, telemetry, workers).run(protocol)
}

/// Runs `protocol` against `scenario` on the parallel driver with a
/// fresh arena and telemetry attached. See [`run_parallel_in`].
pub fn run_parallel_with_telemetry(
    scenario: &Scenario,
    protocol: &mut dyn Protocol,
    telemetry: Telemetry,
    workers: usize,
) -> SimMetrics {
    let mut arena = SimArena::new();
    run_parallel_in(&mut arena, scenario, protocol, telemetry, workers)
}

/// Runs `protocol` against `scenario` on the parallel driver with a
/// fresh arena and no telemetry. See [`run_parallel_in`].
pub fn run_parallel(
    scenario: &Scenario,
    protocol: &mut dyn Protocol,
    workers: usize,
) -> SimMetrics {
    run_parallel_with_telemetry(scenario, protocol, Telemetry::noop(), workers)
}

/// Runs `protocol` against `scenario` at the worker count
/// [`resolve_workers`] picks (builder setting, then `MIRAGE_SIM_THREADS`,
/// then available parallelism).
pub fn run_parallel_auto(scenario: &Scenario, protocol: &mut dyn Protocol) -> SimMetrics {
    run_parallel(scenario, protocol, resolve_workers(scenario))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSpec;
    use crate::runner;
    use crate::scenario::ScenarioBuilder;
    use mirage_deploy::ProtocolChoice;
    use mirage_telemetry::health::{health_report_json, rollup};
    use mirage_telemetry::trace_export::chrome_trace;
    use mirage_telemetry::{Journal, Registry, TraceConfig, WatchdogConfig};

    const WORKER_COUNTS: [usize; 5] = [1, 2, 3, 4, 8];

    fn choices() -> [ProtocolChoice; 4] {
        [
            ProtocolChoice::NoStaging,
            ProtocolChoice::Balanced,
            ProtocolChoice::FrontLoading,
            ProtocolChoice::RandomStaging { seed: 11 },
        ]
    }

    fn scenarios() -> Vec<(&'static str, Scenario)> {
        vec![
            (
                "small",
                ScenarioBuilder::new()
                    .clusters(4, 3, 1)
                    .problem_in_clusters("p", &[2])
                    .build(),
            ),
            ("healthy", ScenarioBuilder::new().clusters(3, 5, 2).build()),
            (
                "misplaced",
                ScenarioBuilder::new()
                    .clusters(4, 4, 1)
                    .problem_in_clusters("p", &[1])
                    .misplaced_machine(3, "q")
                    .build(),
            ),
            (
                "threshold+offline",
                ScenarioBuilder::new()
                    .clusters(3, 6, 1)
                    .problem_in_clusters("p", &[0])
                    .offline_machines(1, 2, 200)
                    .threshold(0.5)
                    .build(),
            ),
            (
                "missed-detection",
                ScenarioBuilder::new()
                    .clusters(3, 4, 1)
                    .problem_in_clusters("p", &[1])
                    .missed_detections(1, 2)
                    .build(),
            ),
            (
                "multi-problem",
                ScenarioBuilder::new()
                    .clusters(5, 4, 1)
                    .problem_in_clusters("p", &[1, 2])
                    .problem_in_clusters("q", &[3])
                    .build(),
            ),
        ]
    }

    /// The parallel driver is bit-identical to the sequential oracle on
    /// reliable channels, for every protocol, scenario shape, and
    /// worker count (1 delegates to the oracle itself).
    #[test]
    fn parallel_matches_sequential() {
        for (name, s) in scenarios() {
            for choice in choices() {
                let mut oracle = choice.build(s.plan.clone(), s.threshold);
                let expect = runner::run(&s, &mut oracle);
                for workers in WORKER_COUNTS {
                    let mut p = choice.build(s.plan.clone(), s.threshold);
                    let got = run_parallel(&s, &mut p, workers);
                    assert_eq!(
                        expect,
                        got,
                        "{name}/{} diverged at {workers} workers",
                        choice.name()
                    );
                }
            }
        }
    }

    /// Same bit-identity under a fault plan exercising loss,
    /// duplication, delay, retries, rep timeouts, and churn — the RNG
    /// forking must reproduce the exact sequential fault schedule at
    /// every worker count.
    #[test]
    fn parallel_matches_sequential_under_faults() {
        let s = ScenarioBuilder::new()
            .clusters(4, 6, 1)
            .problem_in_clusters("p", &[2])
            .faults(
                FaultSpec::new(0xFA11)
                    .loss(0.30)
                    .duplication(0.15)
                    .delay(6)
                    .retry(20, 4)
                    .rep_timeout(600)
                    .churn(1, 2, 40, 400)
                    .churn(3, 1, 10, SimTime::MAX),
            )
            .build();
        for choice in choices() {
            let mut oracle = choice.build(s.plan.clone(), s.threshold);
            let expect = runner::run(&s, &mut oracle);
            for workers in WORKER_COUNTS {
                let mut p = choice.build(s.plan.clone(), s.threshold);
                let got = run_parallel(&s, &mut p, workers);
                assert_eq!(
                    expect,
                    got,
                    "faulted {} diverged at {workers} workers",
                    choice.name()
                );
            }
        }
    }

    fn journaled_registry() -> Arc<Registry> {
        Arc::new(Registry::with_journal(
            1 << 14,
            Journal::with_spill(1 << 12),
        ))
    }

    fn run_instrumented(
        s: &Scenario,
        choice: ProtocolChoice,
        workers: Option<usize>,
    ) -> (SimMetrics, Arc<Registry>) {
        let registry = journaled_registry();
        let telemetry = Telemetry::from_registry(Arc::clone(&registry));
        let mut protocol = choice
            .build(s.plan.clone(), s.threshold)
            .with_telemetry(telemetry.clone());
        let metrics = match workers {
            None => runner::run_with_telemetry(s, &mut protocol, telemetry),
            Some(w) => run_parallel_with_telemetry(s, &mut protocol, telemetry, w),
        };
        (metrics, registry)
    }

    /// Journaled instrumented runs are byte-identical between the
    /// drivers: the journal entry stream (time, seq, payload), counter
    /// sums, the queue-depth gauge trajectory, and the derived health
    /// rollup and Perfetto export all match at every worker count.
    #[test]
    fn instrumented_parallel_run_is_bit_identical() {
        let reliable = ScenarioBuilder::new()
            .clusters(4, 5, 1)
            .problem_in_clusters("p", &[2])
            .build();
        let faulted = ScenarioBuilder::new()
            .clusters(3, 5, 1)
            .problem_in_clusters("p", &[1])
            .faults(
                FaultSpec::new(0x0B5E)
                    .loss(0.25)
                    .duplication(0.10)
                    .delay(5)
                    .retry(20, 4)
                    .rep_timeout(600),
            )
            .build();
        for (name, s) in [("reliable", &reliable), ("faulted", &faulted)] {
            let (seq_metrics, seq_reg) = run_instrumented(s, ProtocolChoice::Balanced, None);
            let seq_entries = seq_reg.journal().entries();
            assert!(
                !seq_entries.is_empty(),
                "{name}: sequential journal must record"
            );
            let mut machine_cluster = vec![0u32; s.machine_count()];
            for cluster in &s.plan.clusters {
                for m in &cluster.members {
                    machine_cluster[m.index()] = cluster.id as u32;
                }
            }
            let run_end = seq_metrics.completion_time.unwrap_or(0);
            for workers in [2, 3, 8] {
                let (par_metrics, par_reg) =
                    run_instrumented(s, ProtocolChoice::Balanced, Some(workers));
                assert_eq!(seq_metrics, par_metrics, "{name} w={workers}: metrics");
                let par_entries = par_reg.journal().entries();
                assert_eq!(
                    seq_entries, par_entries,
                    "{name} w={workers}: journal streams differ"
                );
                let seq_snap = seq_reg.snapshot();
                let par_snap = par_reg.snapshot();
                assert_eq!(
                    seq_snap.counters, par_snap.counters,
                    "{name} w={workers}: counter sums differ"
                );
                assert_eq!(
                    seq_snap.gauges.get("sim.queue_depth"),
                    par_snap.gauges.get("sim.queue_depth"),
                    "{name} w={workers}: queue depth gauge differs"
                );
                assert_eq!(
                    par_snap.gauges.get("sim.workers").map(|g| g.value),
                    Some(workers as i64),
                    "{name} w={workers}: workers gauge"
                );
                // Derived artifacts are byte-identical after the
                // exporters' canonical (time, seq) sort.
                let config = WatchdogConfig::default();
                assert_eq!(
                    health_report_json(&rollup(&seq_entries, &machine_cluster, run_end, &config)),
                    health_report_json(&rollup(&par_entries, &machine_cluster, run_end, &config)),
                    "{name} w={workers}: health rollup differs"
                );
                let trace = |entries: &[mirage_telemetry::JournalEntry]| {
                    chrome_trace(
                        entries,
                        run_end,
                        &|m| s.plan.machine_name(MachineId(m)).to_string(),
                        &|p| s.problems.name(ProblemId(p)).to_string(),
                        &TraceConfig::default(),
                    )
                };
                assert_eq!(
                    trace(&seq_entries),
                    trace(&par_entries),
                    "{name} w={workers}: Perfetto export differs"
                );
            }
        }
    }

    /// The journal keeps its `(time, seq)` ordering property under
    /// multi-shard flushes: the raw stream (buffered driver jots
    /// interleaved with write-through protocol jots) is identical to the
    /// sequential one, and the exporters' canonical `(time, seq)` sort
    /// yields a time-monotone stream with unique sequence numbers.
    #[test]
    fn journal_orders_by_time_seq_under_multi_shard_flushes() {
        let s = ScenarioBuilder::new()
            .clusters(5, 7, 1)
            .problem_in_clusters("p", &[1, 3])
            .build();
        let (_, seq_reg) = run_instrumented(&s, ProtocolChoice::FrontLoading, None);
        let seq_entries = seq_reg.journal().entries();
        for workers in [2, 4, 8] {
            let (_, reg) = run_instrumented(&s, ProtocolChoice::FrontLoading, Some(workers));
            let entries = reg.journal().entries();
            assert!(!entries.is_empty());
            assert_eq!(
                seq_entries, entries,
                "raw stream diverged at {workers} workers"
            );
            let mut sorted = entries.clone();
            sorted.sort_by_key(|e| (e.time, e.seq));
            for pair in sorted.windows(2) {
                assert!(
                    pair[0].time <= pair[1].time && pair[0].seq != pair[1].seq,
                    "canonical sort violated: {:?} then {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    /// Cross-shard scheduling reproduces the sequential queue-depth
    /// high-water mark exactly (the parallel driver tracks a virtual
    /// global depth, not per-shard depths).
    #[test]
    fn cross_shard_queue_depth_high_water_matches() {
        let s = ScenarioBuilder::new()
            .clusters(6, 8, 2)
            .problem_in_clusters("p", &[2])
            .build();
        let (_, seq_reg) = run_instrumented(&s, ProtocolChoice::NoStaging, None);
        let seq_gauge = seq_reg.snapshot().gauges["sim.queue_depth"];
        assert!(seq_gauge.high_water >= s.machine_count() as i64);
        for workers in [2, 5, 8] {
            let (_, par_reg) = run_instrumented(&s, ProtocolChoice::NoStaging, Some(workers));
            let par_gauge = par_reg.snapshot().gauges["sim.queue_depth"];
            assert_eq!(
                seq_gauge, par_gauge,
                "queue depth high-water diverged at {workers} workers"
            );
        }
    }

    /// One arena serves many runs (different scenarios, protocols,
    /// worker counts) without contaminating results.
    #[test]
    fn arena_reuse_is_deterministic() {
        let mut arena = SimArena::new();
        for _ in 0..2 {
            for (name, s) in scenarios() {
                for choice in [ProtocolChoice::Balanced, ProtocolChoice::NoStaging] {
                    let mut oracle = choice.build(s.plan.clone(), s.threshold);
                    let expect = runner::run(&s, &mut oracle);
                    for workers in [2, 4] {
                        let mut p = choice.build(s.plan.clone(), s.threshold);
                        let got =
                            run_parallel_in(&mut arena, &s, &mut p, Telemetry::noop(), workers);
                        assert_eq!(expect, got, "{name}/{} reused arena", choice.name());
                    }
                }
            }
        }
    }

    /// Worker resolution: builder setting wins, then the environment
    /// variable, then available parallelism; everything is clamped to
    /// the fleet size and `MAX_WORKERS`.
    #[test]
    fn worker_resolution_and_clamping() {
        let tiny = ScenarioBuilder::new().clusters(1, 2, 1).build();
        let pinned = ScenarioBuilder::new()
            .clusters(4, 100, 1)
            .with_workers(6)
            .build();
        assert_eq!(resolve_workers(&pinned), 6);
        // Clamped to the fleet: 2 machines cannot use 6 shards.
        let tiny_pinned = ScenarioBuilder::new()
            .clusters(1, 2, 1)
            .with_workers(6)
            .build();
        assert_eq!(resolve_workers(&tiny_pinned), 2);
        let huge = ScenarioBuilder::new()
            .clusters(2, 100, 1)
            .with_workers(10_000)
            .build();
        assert_eq!(resolve_workers(&huge), MAX_WORKERS);
        // The env var fills in when the builder does not pin a count.
        std::env::set_var("MIRAGE_SIM_THREADS", "3");
        let from_env = ScenarioBuilder::new().clusters(4, 100, 1).build();
        assert_eq!(resolve_workers(&from_env), 3);
        std::env::set_var("MIRAGE_SIM_THREADS", "not-a-number");
        assert!(resolve_workers(&from_env) >= 1);
        std::env::remove_var("MIRAGE_SIM_THREADS");
        assert!(resolve_workers(&tiny) <= 2);
        // run_parallel_auto respects the builder pin end to end.
        let mut p = ProtocolChoice::Balanced.build(pinned.plan.clone(), pinned.threshold);
        let auto = run_parallel_auto(&pinned, &mut p);
        let mut oracle = ProtocolChoice::Balanced.build(pinned.plan.clone(), pinned.threshold);
        assert_eq!(auto, runner::run(&pinned, &mut oracle));
    }
}
