//! Strategy-driven rollout runs: the simulator driving a
//! [`RolloutController`].
//!
//! [`run_rollout`] is the simulation-side entry point for the new
//! rollout plane: it partitions the scenario's fleet into cohorts
//! according to the scenario's [`RolloutStrategy`], wires the optional
//! URR guard into the controller (closing the loop between the report
//! repository the run deposits into and the widening decisions the
//! controller takes), and runs the whole thing on the ordinary
//! sequential driver — the controller is just another
//! [`mirage_deploy::Protocol`].
//!
//! An *unguarded* `Staged` strategy is a transparent delegation to the
//! classic staging protocol: the property test in this module proves
//! the run is bit-identical (metrics, journal, counters) to driving
//! the staging protocol directly, which is what makes the
//! plan/drive split of `Campaign::deploy` safe.

use std::sync::Arc;

use mirage_deploy::ProtocolChoice;
use mirage_rollout::{RolloutController, RolloutOutcome, RolloutPlan, RolloutStrategy, UrrGuard};
use mirage_telemetry::Telemetry;

use crate::metrics::SimMetrics;
use crate::runner::Simulation;
use crate::scenario::Scenario;

/// Runs `scenario` under its rollout strategy (default: single-wave
/// `Staged`) and returns the simulation metrics together with the
/// rollout outcome (status, exposure, rollback record).
///
/// `choice` selects the staging protocol a `Staged` strategy delegates
/// to; cohort strategies (`Canary`/`Rolling`/`BlueGreen`) ignore it.
/// When the scenario carries both a repository
/// ([`crate::ScenarioBuilder::with_urr`]) and guard thresholds
/// ([`crate::ScenarioBuilder::with_guard`]), the controller assesses
/// live repository health on every decision tick and rolls the fleet
/// back to the prior release when the guard trips.
pub fn run_rollout(scenario: &Scenario, choice: ProtocolChoice) -> (SimMetrics, RolloutOutcome) {
    run_rollout_with_telemetry(scenario, choice, Telemetry::noop())
}

/// [`run_rollout`] with a telemetry handle attached to both the driver
/// and the controller (rollout decision counters, journal events, and
/// the `rollout.state` gauge land in the same registry as the
/// simulator's own instrumentation).
pub fn run_rollout_with_telemetry(
    scenario: &Scenario,
    choice: ProtocolChoice,
    telemetry: Telemetry,
) -> (SimMetrics, RolloutOutcome) {
    let strategy = scenario
        .strategy
        .unwrap_or(RolloutStrategy::Staged { waves: 1 });
    let plan = RolloutPlan::new(scenario.plan.clone(), strategy);
    let mut controller =
        RolloutController::new(plan, choice, scenario.threshold).with_telemetry(telemetry.clone());
    if let (Some(settings), Some(urr)) = (scenario.guard, &scenario.urr) {
        controller = controller.with_guard(UrrGuard::new(Arc::clone(urr), settings));
    }
    let metrics = Simulation::new(scenario)
        .with_telemetry(telemetry)
        .run(&mut controller);
    (metrics, controller.outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSpec;
    use crate::runner::run_with_telemetry;
    use crate::scenario::ScenarioBuilder;
    use mirage_report::Urr;
    use mirage_rollout::{GuardSettings, RolloutStatus, RolloutStatusReason};
    use mirage_telemetry::{Journal, Registry};

    fn journaled_registry() -> Arc<Registry> {
        Arc::new(Registry::with_journal(
            1 << 14,
            Journal::with_spill(1 << 12),
        ))
    }

    /// The split-safety property: an **unguarded** `Staged` rollout is
    /// a transparent pass-through — bit-identical simulation metrics,
    /// journal stream, and counters to driving the staging protocol
    /// directly. 24 cases: 3 scenario shapes × 4 protocol choices × 2
    /// channel regimes (reliable, seeded lossy).
    #[test]
    fn staged_rollout_is_bit_identical_to_direct_protocol() {
        let shapes: Vec<(&str, ScenarioBuilder)> = vec![
            ("healthy", ScenarioBuilder::new().clusters(3, 4, 1)),
            (
                "problem-cluster",
                ScenarioBuilder::new()
                    .clusters(4, 3, 1)
                    .problem_in_clusters("p", &[2]),
            ),
            (
                "misplaced-thresholded",
                ScenarioBuilder::new()
                    .clusters(2, 4, 1)
                    .misplaced_machine(0, "odd")
                    .threshold(0.75),
            ),
        ];
        let choices = [
            ProtocolChoice::NoStaging,
            ProtocolChoice::Balanced,
            ProtocolChoice::FrontLoading,
            ProtocolChoice::RandomStaging { seed: 7 },
        ];
        let mut cases = 0;
        for (shape, base) in &shapes {
            for faulted in [false, true] {
                let mut builder = base
                    .clone()
                    .with_strategy(RolloutStrategy::Staged { waves: 2 });
                if faulted {
                    builder = builder.faults(
                        FaultSpec::new(0xFA17_5EED)
                            .loss(0.2)
                            .duplication(0.1)
                            .retry(20, 4)
                            .rep_timeout(600),
                    );
                }
                let s = builder.build();
                for choice in choices {
                    let direct_reg = journaled_registry();
                    let mut direct = choice
                        .build(s.plan.clone(), s.threshold)
                        .with_telemetry(Telemetry::from_registry(Arc::clone(&direct_reg)));
                    let direct_metrics = run_with_telemetry(
                        &s,
                        &mut direct,
                        Telemetry::from_registry(Arc::clone(&direct_reg)),
                    );

                    let rollout_reg = journaled_registry();
                    let (rollout_metrics, outcome) = run_rollout_with_telemetry(
                        &s,
                        choice,
                        Telemetry::from_registry(Arc::clone(&rollout_reg)),
                    );

                    let label = format!("{shape}/{}/faulted={faulted}", choice.name());
                    assert_eq!(direct_metrics, rollout_metrics, "{label}: metrics");
                    assert_eq!(
                        direct_reg.journal().entries(),
                        rollout_reg.journal().entries(),
                        "{label}: journal"
                    );
                    assert_eq!(
                        direct_reg.snapshot().counters,
                        rollout_reg.snapshot().counters,
                        "{label}: counters"
                    );
                    assert_eq!(outcome.status, RolloutStatus::Clean, "{label}");
                    assert!(outcome.rollback.is_none(), "{label}");
                    cases += 1;
                }
            }
        }
        assert_eq!(cases, 24);
    }

    /// A fleet-wide bad release under a guarded canary: the abort fires
    /// after the hysteresis streak and exposure stays within the canary
    /// cohort. (CI runs this by name as the canary-abort smoke.)
    #[test]
    fn canary_abort_contains_bad_release() {
        let urr = Arc::new(Urr::new());
        let s = ScenarioBuilder::new()
            .clusters(4, 5, 1)
            .problem_in_clusters("regression", &[0, 1, 2, 3])
            .with_urr(Arc::clone(&urr))
            .with_strategy(RolloutStrategy::Canary {
                percentage: 10.0,
                bake_time: 50,
            })
            .with_guard(GuardSettings {
                max_cluster_failure_rate: 0.3,
                min_reports: 2,
                unhealthy_ticks: 2,
                healthy_ticks: 1,
                ..GuardSettings::default()
            })
            .build();
        let exposure_limit =
            RolloutPlan::new(s.plan.clone(), s.strategy.expect("strategy set")).exposure_limit();
        assert_eq!(exposure_limit, 2, "ceil(10% of 20)");

        let (metrics, outcome) = run_rollout(&s, ProtocolChoice::Balanced);
        let info = outcome.rollback.expect("guard must abort a bad release");
        assert!(
            info.exposed_machines <= exposure_limit,
            "bad release contained to the canary cohort: {} > {exposure_limit}",
            info.exposed_machines
        );
        assert_eq!(info.reason, RolloutStatusReason::FailureRateExceeded);
        assert_eq!(outcome.status, RolloutStatus::Failed);
        assert_eq!(outcome.reverted, outcome.enrolled, "revert wave drained");
        assert_eq!(metrics.reverted_count(), outcome.enrolled);
        assert!(
            !metrics.converged(s.machine_count()),
            "the bad release never reached the rest of the fleet"
        );
        // Revert notified at the abort tick; confirmed one
        // download+test cycle later on the reliable channel.
        assert_eq!(
            metrics.completion_time,
            Some(info.at_time + s.timings.machine_cycle())
        );
    }

    /// A regression confined to the *final* wave still reverts the
    /// whole enrolled fleet — including every machine that already
    /// passed the release in earlier waves.
    #[test]
    fn final_wave_regression_reverts_everyone_enrolled() {
        let urr = Arc::new(Urr::new());
        let s = ScenarioBuilder::new()
            .clusters(3, 2, 1)
            .problem_in_clusters("late", &[2])
            .with_urr(Arc::clone(&urr))
            .with_strategy(RolloutStrategy::Rolling { batch_size: 2 })
            .with_guard(GuardSettings {
                max_cluster_failure_rate: 0.3,
                min_reports: 2,
                unhealthy_ticks: 2,
                healthy_ticks: 1,
                ..GuardSettings::default()
            })
            .build();
        let (metrics, outcome) = run_rollout(&s, ProtocolChoice::Balanced);
        let info = outcome.rollback.expect("final-wave regression aborts");
        assert_eq!(info.at_cohort, 2, "guard tripped on the last cohort");
        assert_eq!(info.exposed_machines, 6, "all three waves were enrolled");
        assert_eq!(outcome.reverted, 6);
        assert_eq!(metrics.reverted_count(), 6);
        // The early waves had integrated the release before the revert.
        assert_eq!(metrics.passed_count(), 4);
        assert_eq!(outcome.cohorts_widened, 2);
    }

    /// A machine churned offline when the rollback fires still receives
    /// the prior release when it rejoins, via the hardened delivery
    /// path — the revert rides the same wire as any notification.
    #[test]
    fn churned_machine_rejoins_into_the_revert() {
        let urr = Arc::new(Urr::new());
        let s = ScenarioBuilder::new()
            .clusters(2, 3, 1)
            .problem_in_clusters("regression", &[0, 1])
            .faults(FaultSpec::new(0xFA17).churn(0, 1, 10, 300).retry(20, 4))
            .with_urr(Arc::clone(&urr))
            .with_strategy(RolloutStrategy::Canary {
                percentage: 100.0,
                bake_time: 0,
            })
            .with_guard(GuardSettings {
                max_cluster_failure_rate: 0.3,
                min_reports: 2,
                unhealthy_ticks: 2,
                healthy_ticks: 1,
                ..GuardSettings::default()
            })
            .build();
        let (churned, leave, rejoin) = s.faults.churn[0];
        assert_eq!((leave, rejoin), (10, 300));

        let (metrics, outcome) = run_rollout(&s, ProtocolChoice::Balanced);
        let info = outcome.rollback.expect("bad release aborts");
        assert!(
            info.at_time < rejoin,
            "abort fired while the machine was away"
        );
        assert_eq!(outcome.reverted, outcome.enrolled, "nobody left behind");
        assert_eq!(metrics.reverted_count(), 6);
        let revert_time = metrics.machine_revert_time[churned.index()]
            .expect("churned machine reverted after rejoining");
        assert!(
            revert_time >= rejoin,
            "revert confirmed only after rejoin: {revert_time} < {rejoin}"
        );
    }

    /// With no guard attached, every cohort strategy converges a
    /// fixable release end-to-end: failures drive the vendor fix and
    /// the cohort engine re-notifies exactly the failed machines.
    #[test]
    fn all_strategies_converge_a_fixable_release() {
        for strategy in [
            RolloutStrategy::Staged { waves: 2 },
            RolloutStrategy::Canary {
                percentage: 20.0,
                bake_time: 50,
            },
            RolloutStrategy::Rolling { batch_size: 4 },
            RolloutStrategy::BlueGreen,
        ] {
            let s = ScenarioBuilder::new()
                .clusters(3, 4, 1)
                .problem_in_clusters("p", &[2])
                .with_strategy(strategy)
                .build();
            let (metrics, outcome) = run_rollout(&s, ProtocolChoice::Balanced);
            assert!(
                metrics.converged(s.machine_count()),
                "{}: {}/{} machines passed",
                strategy.name(),
                metrics.passed_count(),
                s.machine_count()
            );
            assert_eq!(outcome.status, RolloutStatus::Clean, "{}", strategy.name());
            assert!(outcome.rollback.is_none(), "{}", strategy.name());
            assert!(metrics.completion_time.is_some(), "{}", strategy.name());
        }
    }

    /// All four strategies end-to-end at paper scale (100 000
    /// machines). Gated behind `--ignored`; CI exercises it in release
    /// mode alongside the canary-abort smoke.
    #[test]
    #[ignore = "100k-machine run; exercised via cargo test --release -- --ignored"]
    fn paper_scale_strategies_run() {
        for strategy in [
            RolloutStrategy::Staged { waves: 4 },
            RolloutStrategy::Canary {
                percentage: 1.0,
                bake_time: 100,
            },
            RolloutStrategy::Rolling { batch_size: 10_000 },
            RolloutStrategy::BlueGreen,
        ] {
            let urr = Arc::new(Urr::with_shards(8));
            let s = ScenarioBuilder::new()
                .clusters(20, 5_000, 1)
                .with_urr(Arc::clone(&urr))
                .with_strategy(strategy)
                .with_guard(GuardSettings::default())
                .build();
            let (metrics, outcome) = run_rollout(&s, ProtocolChoice::Balanced);
            assert!(
                metrics.converged(100_000),
                "{}: healthy fleet must converge at scale",
                strategy.name()
            );
            assert!(outcome.rollback.is_none(), "{}", strategy.name());
        }
    }
}
