//! The simulation driver.
//!
//! The driver moves `Copy` events and dense ids only: per-machine and
//! per-problem state is flat-indexed, and the telemetry flight events
//! render machine/problem names lazily (zero cost when telemetry is a
//! noop). The original string-keyed driver — binary-heap queue, name
//! maps and all — survives under [`mod@reference`] so equivalence tests
//! can prove this driver produces identical [`SimMetrics`].

pub mod reference;

use std::collections::VecDeque;

use mirage_deploy::MachineId;
use mirage_deploy::{
    Command, ProblemId, ProblemSet, Protocol, Release, TestOutcome, TestReport, PRIOR_RELEASE,
};
use mirage_telemetry::journal::{FaultKind, JournalEvent, NO_PROBLEM};
use mirage_telemetry::{FlightEvent, Telemetry};

use std::sync::Arc;

use crate::engine::{Event, EventQueue, SimTime};
use crate::faults::{FaultRng, RngLanes};
use crate::metrics::SimMetrics;
use crate::scenario::Scenario;
use crate::urr_sink::UrrSink;

/// Safety valve against pathological loss rates (e.g. `loss == 1.0`):
/// after this many re-notification attempts the vendor gives up on a
/// machine even when [`crate::FaultPlan::max_retries`] is unset. At any
/// realistic loss rate the chance of hitting this cap is negligible.
pub(crate) const RETRY_SAFETY_CAP: u32 = 10_000;

/// Journal emissions buffered in the driver before one batched flush.
/// Bounds the buffer at ~128 KiB while amortising the recorder's lock
/// to a few dozen acquisitions per run.
pub(crate) const JOURNAL_FLUSH_LEN: usize = 4_096;

/// A running simulation binding a scenario to a protocol.
#[derive(Debug)]
pub struct Simulation<'a> {
    scenario: &'a Scenario,
    queue: EventQueue,
    now: SimTime,
    /// Cumulative fixed-problem sets, indexed by release number.
    fixed_by_release: Vec<ProblemSet>,
    fix_queue: VecDeque<ProblemId>,
    fixing: Option<ProblemId>,
    known_problems: ProblemSet,
    /// Local high-water mark of the event queue depth; the gauge is
    /// published only when this rises (and once at run end), not per
    /// event — per-event publication was measurable overhead at 10⁶
    /// machines while recording nothing new.
    queue_high_water: usize,
    metrics: SimMetrics,
    telemetry: Telemetry,
    /// Cached `telemetry.journals()` so the per-event journal check is
    /// one local load (set once at the top of [`Simulation::run`]).
    journaling: bool,
    /// Local `(sim time, event)` buffer: every journal emission lands
    /// here first and is flushed thousands at a time through
    /// [`Telemetry::journal_timed`], so journaling costs a `Vec::push`
    /// per event instead of a recorder critical-section.
    journal_buf: Vec<(SimTime, JournalEvent)>,
    /// Whether the scenario carries a non-trivial fault plan. When
    /// `false` every fault-path structure below stays empty and the
    /// driver takes the original synchronous-delivery code paths —
    /// bit-identical to the pre-fault simulator.
    faults_active: bool,
    /// Seeded fault RNG for vendor→machine transmissions (one global
    /// stream — the vendor is a single sequential actor). Only
    /// consulted when `faults_active`.
    rng_down: FaultRng,
    /// Per-machine fault RNG lanes for machine→vendor transmissions,
    /// forked per machine off the plan seed so each machine's report
    /// fault schedule depends only on its own event order — the
    /// property that lets the parallel driver draw them shard-side and
    /// stay bit-identical. Empty unless `faults_active`.
    rng_up: RngLanes,
    /// Per-machine outstanding notification: `(release, attempt)` the
    /// vendor is awaiting a report for. Drives timed re-notification.
    /// Empty unless `faults_active`.
    awaiting: Vec<Option<(u32, u32)>>,
    /// Dense per-machine churn windows `(leave, rejoin)` (rejoin ==
    /// `SimTime::MAX` = crashed). Empty unless `faults_active`.
    churn: Vec<Option<(SimTime, SimTime)>>,
    /// Ticks issued so far (bounded by the plan's `max_ticks`).
    ticks_issued: u64,
    /// Report-repository bridge, present only when the scenario was
    /// built [`crate::ScenarioBuilder::with_urr`]. `None` keeps the
    /// loop bit-identical to the unwired driver.
    urr_sink: Option<UrrSink>,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation over `scenario`.
    pub fn new(scenario: &'a Scenario) -> Self {
        let faults_active = !scenario.faults.is_none();
        let n = scenario.machine_count();
        let (awaiting, churn) = if faults_active {
            let mut churn: Vec<Option<(SimTime, SimTime)>> = vec![None; n];
            for &(m, leave, rejoin) in &scenario.faults.churn {
                churn[m.index()] = Some((leave, rejoin));
            }
            (vec![None; n], churn)
        } else {
            (Vec::new(), Vec::new())
        };
        Simulation {
            scenario,
            queue: EventQueue::new(),
            now: 0,
            fixed_by_release: vec![ProblemSet::new()],
            fix_queue: VecDeque::new(),
            fixing: None,
            known_problems: ProblemSet::new(),
            queue_high_water: 0,
            metrics: SimMetrics {
                machine_pass_time: vec![None; n],
                ..SimMetrics::default()
            },
            telemetry: Telemetry::noop(),
            journaling: false,
            journal_buf: Vec::new(),
            faults_active,
            rng_down: FaultRng::new(scenario.faults.seed),
            rng_up: RngLanes::new(scenario.faults.seed, if faults_active { n } else { 0 }),
            awaiting,
            churn,
            ticks_issued: 0,
            urr_sink: scenario
                .urr
                .as_ref()
                .map(|urr| UrrSink::new(scenario, Arc::clone(urr))),
        }
    }

    /// Attaches a telemetry handle.
    ///
    /// Telemetry is strictly observational: an instrumented run
    /// produces bit-identical [`SimMetrics`] to an uninstrumented one
    /// (wall-clock span timings never feed back into simulated time).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Journals one event stamped with the current sim time, buffered
    /// locally. Flushed in [`JOURNAL_FLUSH_LEN`] chunks and at run end,
    /// so the journal receives events slightly after (but timed exactly
    /// as) they happened — exporters re-sort by `(time, seq)`.
    #[inline]
    fn jot(&mut self, event: JournalEvent) {
        if self.journaling {
            self.journal_buf.push((self.now, event));
            if self.journal_buf.len() >= JOURNAL_FLUSH_LEN {
                self.flush_journal();
            }
        }
    }

    /// Flushes the buffered journal events in one timed batch.
    fn flush_journal(&mut self) {
        if !self.journal_buf.is_empty() {
            self.telemetry.journal_timed(&self.journal_buf);
            self.journal_buf.clear();
        }
    }

    /// Publishes the queue depth gauge only when the depth sets a new
    /// high-water mark. The gauge's recorded high-water is identical to
    /// publishing on every event; only the redundant publications go.
    fn note_queue_depth(&mut self) {
        let depth = self.queue.len();
        if depth > self.queue_high_water {
            self.queue_high_water = depth;
            self.telemetry.gauge("sim.queue_depth", depth as i64);
        }
    }

    fn latest_release(&self) -> Release {
        Release((self.fixed_by_release.len() - 1) as u32)
    }

    /// Records a passing test: upgrade passes feed the pass-time CDF;
    /// confirmations of the rollback sentinel land in the revert-time
    /// vector instead (a reverted machine did not integrate the
    /// upgrade, so it must not count as converged).
    fn note_pass(&mut self, machine: MachineId, release: u32) {
        if release == PRIOR_RELEASE.0 {
            if self.metrics.machine_revert_time.is_empty() {
                self.metrics.machine_revert_time = vec![None; self.metrics.machine_pass_time.len()];
            }
            if self.metrics.machine_revert_time[machine.index()].is_none() {
                self.metrics.machine_revert_time[machine.index()] = Some(self.now);
                self.telemetry.counter("sim.machines_reverted", 1);
            }
        } else {
            if self.metrics.machine_pass_time[machine.index()].is_none() {
                self.metrics.machine_pass_time[machine.index()] = Some(self.now);
            }
            self.telemetry.counter("sim.tests_passed", 1);
        }
    }

    #[inline]
    fn passes(&self, machine: MachineId, release: u32) -> bool {
        // The rollback sentinel: reverting to the prior (pre-upgrade)
        // release always succeeds — the fleet ran it before the
        // campaign started.
        if release == PRIOR_RELEASE.0 {
            return true;
        }
        match self.scenario.problem_of(machine) {
            None => true,
            Some(problem) => self.fixed_by_release[release as usize].contains(problem),
        }
    }

    fn exec(&mut self, commands: Vec<Command>) {
        for cmd in commands {
            match cmd {
                Command::Notify { machines, release } => {
                    self.telemetry
                        .counter("sim.machines_notified", machines.len() as u64);
                    if self.faults_active {
                        for m in machines {
                            self.fault_notify(m, release.0);
                        }
                        continue;
                    }
                    for m in machines {
                        self.metrics.total_tests += 1;
                        self.telemetry
                            .event_with(|| FlightEvent::MachineNotifiedId {
                                machine: m.index() as u32,
                                release: release.0,
                            });
                        self.jot(JournalEvent::Notify {
                            machine: m.index() as u32,
                            release: release.0,
                        });
                        // A machine offline at notification time acts on
                        // it when it comes back (the paper's late
                        // arrivals).
                        let start = self.scenario.offline_until[m.index()].max(self.now);
                        self.queue.schedule(
                            start + self.scenario.timings.machine_cycle(),
                            Event::TestDone {
                                machine: m,
                                release: release.0,
                            },
                        );
                    }
                }
                Command::Complete => {
                    if self.metrics.completion_time.is_none() {
                        self.metrics.completion_time = Some(self.now);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault path (never entered when `scenario.faults.is_none()`)
    // ------------------------------------------------------------------

    /// Earliest time `machine` can act on a delivery arriving at `t`,
    /// accounting for its offline horizon and churn window. `None`
    /// means the machine has crashed and will never act.
    fn available_from(&self, machine: MachineId, t: SimTime) -> Option<SimTime> {
        let start = t.max(self.scenario.offline_until[machine.index()]);
        match self.churn[machine.index()] {
            Some((leave, rejoin)) if start >= leave && start < rejoin => {
                if rejoin == SimTime::MAX {
                    None
                } else {
                    Some(rejoin)
                }
            }
            _ => Some(start),
        }
    }

    /// Notifies one machine through the unreliable channel and arms the
    /// vendor's re-notification timer.
    fn fault_notify(&mut self, machine: MachineId, release: u32) {
        self.telemetry
            .event_with(|| FlightEvent::MachineNotifiedId {
                machine: machine.index() as u32,
                release,
            });
        self.jot(JournalEvent::Notify {
            machine: machine.index() as u32,
            release,
        });
        self.awaiting[machine.index()] = Some((release, 0));
        self.send_notification(machine, release);
        let delay = self.scenario.faults.retry_delay(0);
        self.queue.schedule(
            self.now + delay,
            Event::RetryCheck {
                machine,
                release,
                attempt: 0,
            },
        );
    }

    /// One vendor→machine transmission: may be lost, duplicated, and
    /// delayed. Each delivery that reaches a live machine schedules a
    /// test run.
    fn send_notification(&mut self, machine: MachineId, release: u32) {
        let loss = self.scenario.faults.loss;
        let dup = self.scenario.faults.duplication;
        let max_delay = self.scenario.faults.max_delay;
        let mut deliveries = 0u32;
        if self.rng_down.chance(loss) {
            self.metrics.msgs_dropped += 1;
            self.telemetry.counter("sim.msgs_dropped", 1);
            self.jot(JournalEvent::Fault {
                fault: FaultKind::Loss,
                machine: machine.index() as u32,
            });
        } else {
            deliveries += 1;
            if self.rng_down.chance(dup) {
                self.metrics.msgs_duplicated += 1;
                self.telemetry.counter("sim.msgs_duplicated", 1);
                self.jot(JournalEvent::Fault {
                    fault: FaultKind::Duplication,
                    machine: machine.index() as u32,
                });
                deliveries += 1;
            }
        }
        for _ in 0..deliveries {
            let delay = self.rng_down.below_inclusive(max_delay);
            // A delivery into a crash window is gone for good; churn is
            // not channel loss, so it is not counted as dropped.
            if let Some(start) = self.available_from(machine, self.now + delay) {
                self.metrics.total_tests += 1;
                self.queue.schedule(
                    start + self.scenario.timings.machine_cycle(),
                    Event::TestDone { machine, release },
                );
            }
        }
    }

    /// One machine→vendor transmission of a test report: may be lost,
    /// duplicated, and delayed (the vendor itself is always up).
    fn send_report(&mut self, machine: MachineId, release: u32, outcome: TestOutcome) {
        let loss = self.scenario.faults.loss;
        let dup = self.scenario.faults.duplication;
        let max_delay = self.scenario.faults.max_delay;
        // All draws come from the machine's own up-link lane, in a fixed
        // per-report order (loss, duplication, then one delay per
        // delivery) — the schedule depends only on this machine's report
        // history, never on interleaving with other machines.
        let lane = self.rng_up.lane(machine.index());
        let lost = lane.chance(loss);
        let mut deliveries = 0usize;
        let mut duplicated = false;
        let mut delays = [0u64; 2];
        if !lost {
            deliveries = 1;
            if lane.chance(dup) {
                duplicated = true;
                deliveries = 2;
            }
            for slot in delays.iter_mut().take(deliveries) {
                *slot = lane.below_inclusive(max_delay);
            }
        }
        if lost {
            self.metrics.msgs_dropped += 1;
            self.telemetry.counter("sim.msgs_dropped", 1);
            self.jot(JournalEvent::Fault {
                fault: FaultKind::Loss,
                machine: machine.index() as u32,
            });
        } else if duplicated {
            self.metrics.msgs_duplicated += 1;
            self.telemetry.counter("sim.msgs_duplicated", 1);
            self.jot(JournalEvent::Fault {
                fault: FaultKind::Duplication,
                machine: machine.index() as u32,
            });
        }
        for &delay in delays.iter().take(deliveries) {
            self.queue.schedule(
                self.now + delay,
                Event::ReportDelivery {
                    machine,
                    release,
                    outcome,
                },
            );
        }
    }

    /// Fault-path test completion: the machine-local effects (pass
    /// time, overhead, escapes) happen here, but problem *discovery*
    /// and the protocol callback wait for the report to actually reach
    /// the vendor ([`Event::ReportDelivery`]).
    fn fault_test_done(&mut self, machine: MachineId, release: u32) {
        let mut passed = self.passes(machine, release);
        if !passed && self.scenario.missed_detection.contains(machine) {
            passed = true;
            self.metrics.escaped_problems += 1;
            self.telemetry.counter("sim.escaped_problems", 1);
        }
        let outcome = if passed {
            self.note_pass(machine, release);
            self.telemetry.event_with(|| FlightEvent::TestPassedId {
                machine: machine.index() as u32,
                release,
            });
            self.jot(JournalEvent::Test {
                machine: machine.index() as u32,
                release,
                problem: NO_PROBLEM,
            });
            TestOutcome::Pass
        } else {
            self.metrics.failed_tests += 1;
            self.telemetry.counter("sim.tests_failed", 1);
            let problem = self
                .scenario
                .problem_of(machine)
                .expect("failed machine must carry a problem");
            self.telemetry.event_with(|| FlightEvent::TestFailedId {
                machine: machine.index() as u32,
                release,
                problem: problem.index() as u16,
            });
            self.jot(JournalEvent::Test {
                machine: machine.index() as u32,
                release,
                problem: problem.index() as u16,
            });
            TestOutcome::Fail { problem }
        };
        self.send_report(machine, release, outcome);
    }

    /// A report reaches the vendor. Duplicates and stale releases are
    /// harmless: discovery is idempotent here and the hardened
    /// protocols drop replays in `on_report`.
    fn handle_report_delivery(
        &mut self,
        protocol: &mut dyn Protocol,
        machine: MachineId,
        release: u32,
        outcome: TestOutcome,
    ) {
        if let Some((awaited, _)) = self.awaiting[machine.index()] {
            if release >= awaited {
                self.awaiting[machine.index()] = None;
            }
        }
        self.jot(JournalEvent::Report {
            machine: machine.index() as u32,
            release,
            passed: matches!(outcome, TestOutcome::Pass),
        });
        // The vendor received this report: deposit it (duplicated
        // deliveries deposit again — the repository deduplicates by
        // signature when grouping).
        self.sink_report(machine, release, outcome);
        if let TestOutcome::Fail { problem } = outcome {
            if self.known_problems.insert(problem) {
                self.metrics.problems_discovered.push(problem);
                self.telemetry.counter("sim.problems_discovered", 1);
                self.telemetry
                    .event_with(|| FlightEvent::ProblemDiscoveredId {
                        problem: problem.index() as u16,
                    });
                self.fix_queue.push_back(problem);
                self.start_next_fix();
            }
        }
        let report = TestReport {
            machine,
            release: Release(release),
            outcome,
        };
        let commands = protocol.on_report(&report);
        self.exec(commands);
        // Same stranding guard as the reliable path: a failure against a
        // stale release whose problem is already fixed re-announces the
        // latest release.
        if let TestOutcome::Fail { problem } = outcome {
            let latest = self.latest_release();
            if latest.0 > release && self.fixed_by_release[latest.0 as usize].contains(problem) {
                let commands =
                    protocol.on_release(latest, &self.fixed_by_release[latest.0 as usize]);
                self.exec(commands);
            }
        }
    }

    /// The vendor's re-notification timer fires: if the machine still
    /// has not reported for this (release, attempt), resend through the
    /// lossy channel with exponential backoff.
    fn handle_retry_check(&mut self, machine: MachineId, release: u32, attempt: u32) {
        if self.awaiting[machine.index()] != Some((release, attempt)) {
            return; // Report arrived, or a newer notification superseded this one.
        }
        let cap = self
            .scenario
            .faults
            .max_retries
            .unwrap_or(RETRY_SAFETY_CAP)
            .min(RETRY_SAFETY_CAP);
        if attempt >= cap {
            self.awaiting[machine.index()] = None;
            return;
        }
        if self.available_from(machine, self.now).is_none() {
            // Crashed for good: stop retrying. Timeout-based stage
            // advancement (rep_timeout) is what unblocks the protocol.
            self.awaiting[machine.index()] = None;
            return;
        }
        self.metrics.retries_sent += 1;
        self.telemetry.counter("deploy.retries_sent", 1);
        self.jot(JournalEvent::Retry {
            machine: machine.index() as u32,
            release,
            attempt,
        });
        self.send_notification(machine, release);
        let next = attempt + 1;
        self.awaiting[machine.index()] = Some((release, next));
        self.queue.schedule(
            self.now + self.scenario.faults.retry_delay(next),
            Event::RetryCheck {
                machine,
                release,
                attempt: next,
            },
        );
    }

    /// Deposits one vendor-received outcome into the attached report
    /// repository, if any. Strictly observational: no simulation state
    /// is read back from the repository.
    #[inline]
    fn sink_report(&mut self, machine: MachineId, release: u32, outcome: TestOutcome) {
        if self.urr_sink.is_none() {
            return;
        }
        let problem = match outcome {
            TestOutcome::Pass => None,
            TestOutcome::Fail { problem } => Some(problem),
        };
        self.jot(JournalEvent::UrrDeposit {
            machine: machine.index() as u32,
            release,
            problem: problem.map_or(NO_PROBLEM, |p| p.index() as u16),
        });
        if let Some(sink) = &mut self.urr_sink {
            sink.record(machine, release, problem);
        }
    }

    fn start_next_fix(&mut self) {
        if self.fixing.is_none() {
            if let Some(problem) = self.fix_queue.pop_front() {
                self.queue.schedule(
                    self.now + self.scenario.timings.fix,
                    Event::FixDone { problem },
                );
                self.fixing = Some(problem);
            }
        }
    }

    fn handle_test_done(&mut self, protocol: &mut dyn Protocol, machine: MachineId, release: u32) {
        let mut passed = self.passes(machine, release);
        if !passed && self.scenario.missed_detection.contains(machine) {
            // Imperfect user-machine testing: the problem escapes into
            // production. The machine integrates the faulty release.
            passed = true;
            self.metrics.escaped_problems += 1;
            self.telemetry.counter("sim.escaped_problems", 1);
        }
        let outcome = if passed {
            self.note_pass(machine, release);
            self.telemetry.event_with(|| FlightEvent::TestPassedId {
                machine: machine.index() as u32,
                release,
            });
            TestOutcome::Pass
        } else {
            self.metrics.failed_tests += 1;
            self.telemetry.counter("sim.tests_failed", 1);
            let problem = self
                .scenario
                .problem_of(machine)
                .expect("failed machine must carry a problem");
            self.telemetry.event_with(|| FlightEvent::TestFailedId {
                machine: machine.index() as u32,
                release,
                problem: problem.index() as u16,
            });
            if self.known_problems.insert(problem) {
                self.metrics.problems_discovered.push(problem);
                self.telemetry.counter("sim.problems_discovered", 1);
                self.telemetry
                    .event_with(|| FlightEvent::ProblemDiscoveredId {
                        problem: problem.index() as u16,
                    });
                self.fix_queue.push_back(problem);
                self.start_next_fix();
            }
            TestOutcome::Fail { problem }
        };
        // On the reliable channel the test and its report land at the
        // vendor synchronously: journal both here.
        self.jot(JournalEvent::Test {
            machine: machine.index() as u32,
            release,
            problem: match outcome {
                TestOutcome::Pass => NO_PROBLEM,
                TestOutcome::Fail { problem } => problem.index() as u16,
            },
        });
        self.jot(JournalEvent::Report {
            machine: machine.index() as u32,
            release,
            passed: matches!(outcome, TestOutcome::Pass),
        });
        self.sink_report(machine, release, outcome);
        let report = TestReport {
            machine,
            release: Release(release),
            outcome,
        };
        let commands = protocol.on_report(&report);
        self.exec(commands);
        // Guard against stranding: if the machine failed a stale release
        // whose problem a *newer* release already fixes, re-announce the
        // latest release so the protocol re-notifies its failed machines.
        if let TestOutcome::Fail { problem } = report.outcome {
            let latest = self.latest_release();
            if latest.0 > release && self.fixed_by_release[latest.0 as usize].contains(problem) {
                // Borrow the cumulative set directly — the protocol only
                // reads it, so no defensive clone is needed.
                let commands =
                    protocol.on_release(latest, &self.fixed_by_release[latest.0 as usize]);
                self.exec(commands);
            }
        }
    }

    fn handle_fix_done(&mut self, protocol: &mut dyn Protocol, problem: ProblemId) {
        debug_assert_eq!(self.fixing, Some(problem));
        self.fixing = None;
        let mut fixed = self.fixed_by_release.last().cloned().unwrap_or_default();
        fixed.insert(problem);
        self.fixed_by_release.push(fixed);
        self.metrics.releases_shipped += 1;
        self.telemetry.counter("sim.releases_shipped", 1);
        self.start_next_fix();
        let release = self.latest_release();
        self.telemetry
            .event(FlightEvent::ReleaseShipped { release: release.0 });
        let commands = protocol.on_release(release, &self.fixed_by_release[release.0 as usize]);
        self.exec(commands);
    }

    /// Runs the simulation to completion, consuming it.
    pub fn run(mut self, protocol: &mut dyn Protocol) -> SimMetrics {
        let _span = self.telemetry.span("sim.run");
        self.journaling = self.telemetry.journals();
        let commands = protocol.start();
        self.exec(commands);
        if (self.faults_active && self.scenario.faults.rep_timeout.is_some())
            || protocol.wants_ticks()
        {
            // Arm the protocol's stall-detection / rollout decision
            // clock. `FaultPlan::none()` still carries the default tick
            // interval, so tick-driven rollout controllers get their
            // clock even on the reliable channel.
            self.queue
                .schedule(self.scenario.faults.tick_interval, Event::Tick);
            self.ticks_issued = 1;
        }
        self.note_queue_depth();
        while let Some((time, event)) = self.queue.pop() {
            if time != self.now {
                // Many queue events share one sim timestamp; publish the
                // journal clock only when it actually moves.
                self.now = time;
                self.telemetry.journal_time(time);
            }
            self.telemetry.counter("sim.events_processed", 1);
            match event {
                Event::TestDone { machine, release } => {
                    if self.faults_active {
                        self.fault_test_done(machine, release);
                    } else {
                        self.handle_test_done(protocol, machine, release);
                    }
                }
                Event::FixDone { problem } => self.handle_fix_done(protocol, problem),
                Event::ReportDelivery {
                    machine,
                    release,
                    outcome,
                } => self.handle_report_delivery(protocol, machine, release, outcome),
                Event::RetryCheck {
                    machine,
                    release,
                    attempt,
                } => self.handle_retry_check(machine, release, attempt),
                Event::Tick => {
                    // Tick-driven controllers assess live repository
                    // health: make every report received so far visible
                    // before the decision.
                    if let Some(sink) = &mut self.urr_sink {
                        sink.flush();
                    }
                    let commands = protocol.on_tick(self.now);
                    self.exec(commands);
                    if !protocol.done() && self.ticks_issued < self.scenario.faults.max_ticks {
                        self.queue
                            .schedule(self.now + self.scenario.faults.tick_interval, Event::Tick);
                        self.ticks_issued += 1;
                    }
                }
            }
            self.note_queue_depth();
        }
        // Drain any buffered repository deposits before the run ends.
        if let Some(sink) = &mut self.urr_sink {
            sink.flush();
        }
        self.flush_journal();
        // Publish the final (empty) depth so the gauge's last value
        // matches the per-event publication behaviour.
        self.telemetry
            .gauge("sim.queue_depth", self.queue.len() as i64);
        self.metrics.rep_timeouts = protocol.rep_timeouts();
        self.metrics
    }
}

/// Convenience: runs `protocol` against `scenario` and returns metrics.
pub fn run(scenario: &Scenario, protocol: &mut dyn Protocol) -> SimMetrics {
    Simulation::new(scenario).run(protocol)
}

/// Runs `protocol` against `scenario` with telemetry attached.
///
/// Equivalent to [`run`] in every observable simulation output; the
/// telemetry handle only records what happened.
pub fn run_with_telemetry(
    scenario: &Scenario,
    protocol: &mut dyn Protocol,
    telemetry: Telemetry,
) -> SimMetrics {
    Simulation::new(scenario)
        .with_telemetry(telemetry)
        .run(protocol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use mirage_deploy::{Balanced, FrontLoading, NoStaging};

    /// 4 clusters × 3 machines; cluster 2 carries problem "p".
    fn small_scenario() -> Scenario {
        ScenarioBuilder::new()
            .clusters(4, 3, 1)
            .problem_in_clusters("p", &[2])
            .build()
    }

    #[test]
    fn nostaging_finishes_and_counts_overhead() {
        let s = small_scenario();
        let mut p = NoStaging::new(s.plan.clone());
        let m = run(&s, &mut p);
        assert!(p.done());
        // All 3 machines of the problem cluster tested the faulty
        // release: overhead = population of the problem.
        assert_eq!(m.failed_tests, 3);
        assert_eq!(m.releases_shipped, 1);
        assert_eq!(m.passed_count(), 12);
        // Healthy machines pass at download+test = 15.
        assert_eq!(m.pass_time_named(&s.plan, "c00-m00000"), Some(15));
        // Problem machines: fail at 15, fix done at 515, retest at 530.
        assert_eq!(m.pass_time_named(&s.plan, "c02-m00000"), Some(530));
        assert_eq!(m.completion_time, Some(530));
    }

    #[test]
    fn balanced_overhead_is_one_per_problem() {
        let s = small_scenario();
        let mut p = Balanced::new(s.plan.clone(), 1.0);
        let m = run(&s, &mut p);
        assert!(p.done());
        // Only the problem cluster's representative failed.
        assert_eq!(m.failed_tests, 1);
        assert_eq!(
            m.problems_discovered_named(&s.problems),
            vec!["p".to_string()]
        );
        // Clusters 0,1 complete before the problem cluster stalls:
        // c0: rep 15, nonreps 30. c1: 45/60. c2 rep fails at 75;
        // fix at 575; rep passes 590; nonreps 605. c3: 620/635.
        assert_eq!(m.pass_time_named(&s.plan, "c00-m00001"), Some(30));
        assert_eq!(m.pass_time_named(&s.plan, "c01-m00001"), Some(60));
        assert_eq!(m.pass_time_named(&s.plan, "c02-m00000"), Some(590));
        assert_eq!(m.pass_time_named(&s.plan, "c02-m00001"), Some(605));
        assert_eq!(m.completion_time, Some(635));
    }

    #[test]
    fn frontloading_front_loads_debugging() {
        let s = small_scenario();
        let mut p = FrontLoading::new(s.plan.clone(), 1.0);
        let m = run(&s, &mut p);
        assert!(p.done());
        // Phase 1: all 4 reps test at 15; c2's rep fails; fix at 515;
        // re-test passes at 530. Phase 2 (desc distance: c3, c2, c1, c0):
        // c3 non-reps 545, c2 560, c1 575, c0 590.
        assert_eq!(m.failed_tests, 1);
        assert_eq!(m.pass_time_named(&s.plan, "c03-m00001"), Some(545));
        assert_eq!(m.pass_time_named(&s.plan, "c02-m00001"), Some(560));
        assert_eq!(m.pass_time_named(&s.plan, "c00-m00001"), Some(590));
        assert_eq!(m.completion_time, Some(590));
    }

    /// Telemetry must be deterministic-neutral: an instrumented run
    /// produces bit-identical metrics to an uninstrumented one, for
    /// every protocol, and the recorder's own counters agree with the
    /// metrics it observed.
    #[test]
    fn instrumented_run_is_bit_identical() {
        use std::sync::Arc;

        use mirage_telemetry::Registry;

        type ProtocolFactory = Box<dyn Fn() -> Box<dyn Protocol>>;

        let s = small_scenario();
        let protocols: Vec<(&str, ProtocolFactory)> = vec![
            (
                "NoStaging",
                Box::new(|| Box::new(NoStaging::new(small_scenario().plan))),
            ),
            (
                "Balanced",
                Box::new(|| Box::new(Balanced::new(small_scenario().plan, 1.0))),
            ),
            (
                "FrontLoading",
                Box::new(|| Box::new(FrontLoading::new(small_scenario().plan, 1.0))),
            ),
        ];
        for (name, make) in protocols {
            let plain = run(&s, make().as_mut());
            let registry = Arc::new(Registry::new(4096));
            let instrumented = run_with_telemetry(
                &s,
                make().as_mut(),
                Telemetry::from_registry(Arc::clone(&registry)),
            );
            assert_eq!(plain, instrumented, "{name} diverged under instrumentation");

            let snap = registry.snapshot();
            assert_eq!(
                snap.counters["sim.tests_failed"] as usize, plain.failed_tests,
                "{name}"
            );
            assert_eq!(
                snap.counters["sim.releases_shipped"] as u32, plain.releases_shipped,
                "{name}"
            );
            assert_eq!(
                snap.counters["sim.tests_passed"] as usize,
                plain.passed_count(),
                "{name}"
            );
            assert!(snap.gauges["sim.queue_depth"].high_water >= 1, "{name}");
            assert_eq!(snap.spans["sim.run"].count, 1, "{name}");
        }
    }

    /// The queue-depth gauge is published only on high-water rises now,
    /// but the *recorded* high-water (and final value) must match what
    /// per-event publication recorded.
    #[test]
    fn queue_depth_high_water_is_unchanged() {
        use std::sync::Arc;

        use mirage_telemetry::Registry;

        let s = small_scenario();
        let registry = Arc::new(Registry::new(4096));
        let _ = run_with_telemetry(
            &s,
            &mut NoStaging::new(s.plan.clone()),
            Telemetry::from_registry(Arc::clone(&registry)),
        );
        let snap = registry.snapshot();
        let gauge = &snap.gauges["sim.queue_depth"];
        // NoStaging notifies all 12 machines up front — the depth peaks
        // at 12 immediately and only drains afterwards (the one FixDone
        // arrives after 7 TestDones have already popped).
        assert_eq!(gauge.high_water, 12);
        // The final publication reports the drained queue, exactly as
        // the per-event version's last publication did.
        assert_eq!(gauge.value, 0);
    }

    #[test]
    fn healthy_fleet_needs_no_fixes() {
        let s = ScenarioBuilder::new().clusters(3, 4, 1).build();
        let mut p = Balanced::new(s.plan.clone(), 1.0);
        let m = run(&s, &mut p);
        assert_eq!(m.failed_tests, 0);
        assert_eq!(m.releases_shipped, 0);
        assert_eq!(m.passed_count(), 12);
        // Sequential: cluster k completes at 30(k+1).
        assert_eq!(m.completion_time, Some(90));
    }

    #[test]
    fn misplaced_machine_fails_at_nonrep_stage() {
        let s = ScenarioBuilder::new()
            .clusters(2, 4, 1)
            .misplaced_machine(0, "odd")
            .build();
        let mut p = Balanced::new(s.plan.clone(), 1.0);
        let m = run(&s, &mut p);
        // The misplaced machine fails once; everyone eventually passes.
        assert_eq!(m.failed_tests, 1);
        assert_eq!(m.passed_count(), 8);
        // Cluster 0 rep passes at 15; non-reps test at 30: two pass, the
        // misplaced fails. Fix at 530; it retests at 545. With threshold
        // 1.0 cluster 1 waits: rep 560, nonreps 575.
        assert_eq!(m.completion_time, Some(575));
    }

    #[test]
    fn threshold_lets_deployment_pass_misplaced_machines() {
        let s = ScenarioBuilder::new()
            .clusters(2, 4, 1)
            .misplaced_machine(0, "odd")
            .threshold(0.75)
            .build();
        let mut p = Balanced::new(s.plan.clone(), s.threshold);
        let m = run(&s, &mut p);
        // Cluster 1 proceeds at 30 without waiting for the fix: rep 45,
        // non-reps 60. The misplaced machine still completes at 545.
        assert_eq!(m.pass_time_named(&s.plan, "c01-m00003"), Some(60));
        assert_eq!(m.completion_time, Some(545));
    }

    #[test]
    fn multiple_problems_fix_sequentially() {
        let s = ScenarioBuilder::new()
            .clusters(3, 2, 1)
            .problem_in_clusters("p0", &[0])
            .problem_in_clusters("p1", &[1])
            .problem_in_clusters("p2", &[2])
            .build();
        let mut p = NoStaging::new(s.plan.clone());
        let m = run(&s, &mut p);
        // All three problems discovered at t=15; fixes at 515, 1015, 1515;
        // final passes at 1530. Each failed machine is re-notified only
        // when *its* problem is fixed, so overhead = m = 6 (the paper's
        // NoStaging overhead) rather than one failure per release wave.
        assert_eq!(m.releases_shipped, 3);
        assert_eq!(m.failed_tests, 6);
        assert_eq!(m.completion_time, Some(1530));
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use mirage_deploy::{Balanced, NoStaging};

    /// The paper-scale scenario must simulate quickly (it backs Fig 10).
    #[test]
    fn paper_scale_scenario_runs() {
        let s = ScenarioBuilder::new()
            .clusters(20, 5_000, 1)
            .problem_in_clusters("prevalent", &[14, 15, 16])
            .problem_in_clusters("rare-a", &[17])
            .problem_in_clusters("rare-b", &[18])
            .build();
        let mut nostaging = NoStaging::new(s.plan.clone());
        let m = run(&s, &mut nostaging);
        assert_eq!(m.failed_tests, 25_000);
        assert_eq!(m.passed_count(), 100_000);

        let mut balanced = Balanced::new(s.plan.clone(), 1.0);
        let m = run(&s, &mut balanced);
        assert_eq!(m.failed_tests, 3);
        assert_eq!(m.passed_count(), 100_000);
    }

    /// A 1,000,000-machine Figure-10-style run must be routine. Gated
    /// behind `--ignored` so plain `cargo test` stays fast; CI exercises
    /// it in release mode.
    #[test]
    #[ignore = "1M-machine run; exercised via cargo test --release -- --ignored"]
    fn million_machine_scenario_runs() {
        let s = ScenarioBuilder::new()
            .clusters(100, 10_000, 1)
            .problem_in_clusters("prevalent", &[70, 71, 72])
            .problem_in_clusters("rare-a", &[85])
            .problem_in_clusters("rare-b", &[90])
            .build();
        assert_eq!(s.machine_count(), 1_000_000);

        let mut balanced = Balanced::new(s.plan.clone(), 1.0);
        let m = run(&s, &mut balanced);
        // Overhead is p: one representative per *problem* (Table 4) —
        // later prevalent-problem clusters receive the fixed release.
        assert_eq!(m.failed_tests, 3);
        assert_eq!(m.passed_count(), 1_000_000);
        assert!(m.completion_time.is_some());

        let mut nostaging = NoStaging::new(s.plan.clone());
        let m = run(&s, &mut nostaging);
        // Overhead is the full population of every fault.
        assert_eq!(m.failed_tests, 50_000);
        assert_eq!(m.passed_count(), 1_000_000);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use mirage_deploy::{Balanced, NoStaging};

    #[test]
    fn offline_machines_are_late_arrivals() {
        // One machine of cluster 0 is offline until t=200; with
        // threshold 0.75 the deployment proceeds without it.
        let s = ScenarioBuilder::new()
            .clusters(2, 4, 1)
            .offline_machines(0, 1, 200)
            .threshold(0.75)
            .build();
        let m = run(&s, &mut Balanced::new(s.plan.clone(), s.threshold));
        // Everyone, including the late arrival, eventually passes.
        assert_eq!(m.passed_count(), 8);
        let offline = &s.offline_machine_names()[0];
        assert_eq!(
            m.pass_time_named(&s.plan, offline),
            Some(215),
            "online at 200 + cycle 15"
        );
        // The second cluster did not wait for it: its rep passed at 45.
        assert_eq!(m.pass_time_named(&s.plan, "c01-m00000"), Some(45));
    }

    #[test]
    fn offline_machine_blocks_full_threshold() {
        // With threshold 1.0 the first cluster cannot complete until the
        // late arrival reports, delaying the second cluster.
        let s = ScenarioBuilder::new()
            .clusters(2, 4, 1)
            .offline_machines(0, 1, 200)
            .build();
        let m = run(&s, &mut Balanced::new(s.plan.clone(), 1.0));
        assert!(m.pass_time_named(&s.plan, "c01-m00000").unwrap() > 200);
    }

    #[test]
    fn missed_detection_lets_problems_escape() {
        let s = ScenarioBuilder::new()
            .clusters(2, 4, 1)
            .problem_in_clusters("p", &[1])
            .missed_detections(1, 2)
            .build();
        let m = run(&s, &mut NoStaging::new(s.plan.clone()));
        // Two problem machines "pass" with the fault integrated; the
        // other two fail and drive a fix.
        assert_eq!(m.escaped_problems, 2);
        assert_eq!(m.failed_tests, 2);
        assert_eq!(m.releases_shipped, 1);
        assert_eq!(m.passed_count(), 8);
    }

    #[test]
    fn perfect_testing_has_no_escapes() {
        let s = ScenarioBuilder::new()
            .clusters(2, 4, 1)
            .problem_in_clusters("p", &[1])
            .build();
        let m = run(&s, &mut NoStaging::new(s.plan.clone()));
        assert_eq!(m.escaped_problems, 0);
    }
}
