//! The event queue: a calendar (bucket) queue over discrete [`SimTime`].
//!
//! Simulation events are tiny [`Copy`] values keyed by dense interned
//! ids, so the queue stores them inline — no slab, no free list, no
//! per-event allocation. Ordering uses the *calendar queue* structure:
//! a power-of-two wheel of `WHEEL` buckets indexed by `time % WHEEL`,
//! each bucket a `Vec` drained front-to-back (FIFO within a timestamp
//! for free), plus a sorted overflow map for events scheduled further
//! than `WHEEL` ticks ahead. `schedule` is O(1) amortised; `pop`
//! is O(1) amortised for the dense event streams a deployment run
//! produces (machine cycles of ~15 ticks, fix delays of ~500 — both far
//! inside the wheel horizon).
//!
//! The previous `BinaryHeap`+slab implementation survives as
//! [`crate::runner::reference::HeapEventQueue`] for the equivalence
//! property tests.

use std::collections::BTreeMap;

use mirage_deploy::{MachineId, ProblemId, TestOutcome};

/// Simulated time, in the paper's abstract "time units".
pub type SimTime = u64;

/// Number of wheel buckets (one simulated tick each). Power of two so
/// `time % WHEEL` compiles to a mask. 2048 comfortably covers the
/// paper's longest single delay (fix = 500 ticks).
const WHEEL: usize = 2048;

/// Events processed by the simulation. A small `Copy` value: the queue
/// and the runner pass events by value with no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A machine finished downloading and testing a release.
    TestDone {
        /// The machine that tested.
        machine: MachineId,
        /// The release it tested.
        release: u32,
    },
    /// The vendor finished fixing a problem.
    FixDone {
        /// The problem that was fixed.
        problem: ProblemId,
    },
    /// A test report arriving at the vendor over the (possibly lossy,
    /// delaying, duplicating) report channel. Only scheduled when a
    /// fault plan is active; on reliable channels reports are delivered
    /// synchronously inside `TestDone` handling, preserving the
    /// zero-fault event stream bit-for-bit.
    ReportDelivery {
        /// The machine whose report this is.
        machine: MachineId,
        /// The release the report is about.
        release: u32,
        /// The reported outcome.
        outcome: TestOutcome,
    },
    /// Vendor-side retry timer: if `machine` still owes a report for
    /// `release` when this fires, the notification is re-sent with
    /// exponential backoff. Only scheduled when a fault plan is active.
    RetryCheck {
        /// The machine being watched.
        machine: MachineId,
        /// The release whose report is awaited.
        release: u32,
        /// How many retries have already been sent (backoff exponent).
        attempt: u32,
    },
    /// Periodic protocol timer (drives `Protocol::on_tick` stall
    /// detection). Only scheduled when a fault plan is active.
    Tick,
}

/// One wheel slot: events at a single timestamp, drained via `head`
/// so same-time pops are O(1) without shifting the vector.
#[derive(Debug, Clone)]
struct Bucket<T> {
    events: Vec<T>,
    head: usize,
}

impl<T> Default for Bucket<T> {
    fn default() -> Self {
        Bucket {
            events: Vec::new(),
            head: 0,
        }
    }
}

impl<T> Bucket<T> {
    fn pending(&self) -> usize {
        self.events.len() - self.head
    }
}

/// A deterministic time-ordered calendar event queue.
///
/// Events at equal times are processed in insertion order (FIFO), which
/// keeps simulations reproducible — the queue preserves this even for
/// events that cross the wheel/overflow boundary (see `schedule`).
///
/// # Invariants
///
/// * every wheel event's time lies in `[cursor, cursor + WHEEL)`, so
///   each bucket holds events of exactly one timestamp;
/// * every overflow key was `>= cursor + WHEEL` when inserted; keys
///   that drift inside the horizon as `cursor` advances are migrated
///   into the wheel at the start of each `pop`, *before* the wheel
///   could acquire same-time events (a same-time wheel insert while the
///   overflow entry exists is redirected to the overflow entry).
#[derive(Debug)]
pub struct EventQueue<T: Copy = Event> {
    buckets: Vec<Bucket<T>>,
    /// Next timestamp to drain; only advances.
    cursor: SimTime,
    /// Events currently in the wheel.
    wheel_len: usize,
    /// Far-future events: time → FIFO batch.
    overflow: BTreeMap<SimTime, Vec<T>>,
    /// Total pending events (wheel + overflow).
    len: usize,
}

impl<T: Copy> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            buckets: (0..WHEEL).map(|_| Bucket::default()).collect(),
            cursor: 0,
            wheel_len: 0,
            overflow: BTreeMap::new(),
            len: 0,
        }
    }
}

impl<T: Copy> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    ///
    /// Times earlier than the queue's current position are clamped to
    /// "now" (the simulation never schedules into the past; the clamp
    /// makes the queue total rather than panicking in release builds).
    pub fn schedule(&mut self, time: SimTime, event: T) {
        debug_assert!(time >= self.cursor, "scheduling into the past");
        let time = time.max(self.cursor);
        self.len += 1;
        if !self.overflow.is_empty() {
            // FIFO preservation across the boundary: if this timestamp
            // already has an overflow batch, later same-time events must
            // queue *behind* it, not jump ahead via the wheel.
            if let Some(batch) = self.overflow.get_mut(&time) {
                batch.push(event);
                return;
            }
        }
        if time < self.cursor + WHEEL as SimTime {
            self.buckets[(time % WHEEL as SimTime) as usize]
                .events
                .push(event);
            self.wheel_len += 1;
        } else {
            self.overflow.entry(time).or_default().push(event);
        }
    }

    /// Moves overflow batches that now fall inside the wheel horizon
    /// into their buckets.
    fn migrate(&mut self) {
        while let Some((&t, _)) = self.overflow.first_key_value() {
            if t >= self.cursor + WHEEL as SimTime {
                break;
            }
            let batch = self.overflow.pop_first().expect("checked non-empty").1;
            let bucket = &mut self.buckets[(t % WHEEL as SimTime) as usize];
            debug_assert!(
                bucket.pending() == 0,
                "migration target bucket not empty (invariant violation)"
            );
            self.wheel_len += batch.len();
            if bucket.events.is_empty() {
                bucket.events = batch;
                bucket.head = 0;
            } else {
                bucket.events.extend(batch);
            }
        }
    }

    /// Pops the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.len == 0 {
            return None;
        }
        self.migrate();
        loop {
            if self.wheel_len == 0 {
                // Jump the cursor straight to the first far-future batch
                // instead of scanning empty buckets.
                let (&t, _) = self
                    .overflow
                    .first_key_value()
                    .expect("len > 0 but both queues empty");
                self.cursor = t;
                self.migrate();
                continue;
            }
            let bucket = &mut self.buckets[(self.cursor % WHEEL as SimTime) as usize];
            if bucket.head < bucket.events.len() {
                let event = bucket.events[bucket.head];
                bucket.head += 1;
                if bucket.head == bucket.events.len() {
                    bucket.events.clear();
                    bucket.head = 0;
                }
                self.wheel_len -= 1;
                self.len -= 1;
                return Some((self.cursor, event));
            }
            self.cursor += 1;
            if !self.overflow.is_empty() {
                self.migrate();
            }
        }
    }

    /// Positions the cursor on the earliest pending timestamp and
    /// returns it without popping (`None` when the queue is empty).
    /// Amortised O(1): any cursor advancement done here is work the
    /// next `pop`/`pop_bucket` would have done anyway.
    pub fn next_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        self.migrate();
        loop {
            if self.wheel_len == 0 {
                let (&t, _) = self
                    .overflow
                    .first_key_value()
                    .expect("len > 0 but both queues empty");
                self.cursor = t;
                self.migrate();
                continue;
            }
            if self.buckets[(self.cursor % WHEEL as SimTime) as usize].pending() > 0 {
                return Some(self.cursor);
            }
            self.cursor += 1;
            if !self.overflow.is_empty() {
                self.migrate();
            }
        }
    }

    /// Drains every event at the earliest pending timestamp into `out`
    /// (appended in FIFO order) and returns that timestamp. The
    /// calendar invariant — each wheel bucket holds events of exactly
    /// one timestamp — makes this one bucket copy instead of per-event
    /// pops.
    pub fn pop_bucket(&mut self, out: &mut Vec<T>) -> Option<SimTime> {
        let t = self.next_time()?;
        let bucket = &mut self.buckets[(t % WHEEL as SimTime) as usize];
        let n = bucket.pending();
        out.extend_from_slice(&bucket.events[bucket.head..]);
        bucket.events.clear();
        bucket.head = 0;
        self.wheel_len -= n;
        self.len -= n;
        Some(t)
    }

    /// Empties the queue for reuse, keeping every bucket's allocation
    /// (the arena-run fast path: a reused queue schedules into warmed
    /// buckets).
    pub fn reset(&mut self) {
        for bucket in &mut self.buckets {
            bucket.events.clear();
            bucket.head = 0;
        }
        self.cursor = 0;
        self.wheel_len = 0;
        self.overflow.clear();
        self.len = 0;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_done(machine: u32) -> Event {
        Event::TestDone {
            machine: MachineId(machine),
            release: 0,
        }
    }

    fn machine_of(e: Event) -> u32 {
        match e {
            Event::TestDone { machine, .. } => machine.0,
            other => panic!("expected TestDone, got {other:?}"),
        }
    }

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule(10, test_done(1));
        q.schedule(5, test_done(0));
        q.schedule(20, test_done(2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().0, 5);
        assert_eq!(q.pop().unwrap().0, 10);
        assert_eq!(q.pop().unwrap().0, 20);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        q.schedule(5, test_done(0));
        q.schedule(5, test_done(1));
        q.schedule(5, test_done(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| machine_of(e))
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn mixed_event_kinds() {
        let mut q = EventQueue::new();
        q.schedule(
            100,
            Event::FixDone {
                problem: ProblemId(0),
            },
        );
        q.schedule(15, test_done(0));
        assert!(matches!(q.pop().unwrap().1, Event::TestDone { .. }));
        assert!(matches!(q.pop().unwrap().1, Event::FixDone { .. }));
    }

    #[test]
    fn far_future_goes_through_overflow() {
        let mut q = EventQueue::new();
        // Far beyond the wheel horizon.
        q.schedule(1_000_000, test_done(9));
        q.schedule(3, test_done(0));
        assert_eq!(q.pop().unwrap(), (3, test_done(0)));
        // The cursor jumps straight to the overflow batch.
        assert_eq!(q.pop().unwrap(), (1_000_000, test_done(9)));
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_preserved_across_wheel_overflow_boundary() {
        let mut q = EventQueue::new();
        // t=5000 is beyond the horizon at cursor 0 → overflow.
        q.schedule(5000, test_done(0));
        q.schedule(1, test_done(7));
        // Advance the cursor so 5000 is now inside the horizon.
        assert_eq!(q.pop().unwrap().0, 1);
        // A later same-time schedule must queue BEHIND the overflow
        // batch even though 5000 is now wheel-eligible.
        q.schedule(5000, test_done(1));
        q.schedule(5000, test_done(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| machine_of(e))
            .collect();
        assert_eq!(order, vec![0, 1, 2], "insertion order across boundary");
    }

    #[test]
    fn wheel_wraps_across_many_cycles() {
        let mut q = EventQueue::new();
        // March time far past several wheel revolutions.
        let mut expected = Vec::new();
        let mut t = 0u64;
        for i in 0..50u32 {
            t += 700; // crosses bucket-0 wrap repeatedly
            q.schedule(t, test_done(i));
            expected.push((t, i));
        }
        for (t, i) in expected {
            assert_eq!(q.pop().unwrap(), (t, test_done(i)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_at_current_time() {
        // A popped event may schedule another at the same timestamp
        // (zero-length cycles); it must come out after already-pending
        // same-time events.
        let mut q = EventQueue::new();
        q.schedule(4, test_done(0));
        q.schedule(4, test_done(1));
        assert_eq!(machine_of(q.pop().unwrap().1), 0);
        q.schedule(4, test_done(2));
        assert_eq!(machine_of(q.pop().unwrap().1), 1);
        assert_eq!(machine_of(q.pop().unwrap().1), 2);
    }

    #[test]
    fn next_time_peeks_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(9, test_done(0));
        q.schedule(5_000, test_done(1)); // overflow at cursor 0
        assert_eq!(q.next_time(), Some(9));
        assert_eq!(q.len(), 2, "peek pops nothing");
        assert_eq!(q.pop().unwrap().0, 9);
        assert_eq!(q.next_time(), Some(5_000), "cursor jumps through overflow");
        assert_eq!(q.pop().unwrap().0, 5_000);
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn pop_bucket_drains_one_timestamp_in_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(7, test_done(0));
        q.schedule(7, test_done(1));
        q.schedule(8, test_done(2));
        let mut out = Vec::new();
        assert_eq!(q.pop_bucket(&mut out), Some(7));
        assert_eq!(
            out.iter().map(|&e| machine_of(e)).collect::<Vec<_>>(),
            [0, 1]
        );
        assert_eq!(q.len(), 1, "later timestamps stay queued");
        // Same-time events scheduled after a drain form the next batch.
        q.schedule(8, test_done(3));
        out.clear();
        assert_eq!(q.pop_bucket(&mut out), Some(8));
        assert_eq!(
            out.iter().map(|&e| machine_of(e)).collect::<Vec<_>>(),
            [2, 3]
        );
        assert_eq!(q.pop_bucket(&mut out), None);
    }

    #[test]
    fn generic_payloads_and_reset_reuse() {
        // The queue is generic over any `Copy` payload — the parallel
        // driver stores `(seq, event)` pairs and per-shard records.
        let mut q: EventQueue<(u64, u32)> = EventQueue::new();
        q.schedule(3, (10, 1));
        q.schedule(3, (11, 2));
        q.schedule(2_500, (12, 3));
        let mut out = Vec::new();
        assert_eq!(q.pop_bucket(&mut out), Some(3));
        assert_eq!(out, vec![(10, 1), (11, 2)]);
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
        // A reset queue starts over at time 0.
        q.schedule(1, (0, 9));
        assert_eq!(q.pop(), Some((1, (0, 9))));
    }

    /// Randomised model check: the calendar queue must agree with a
    /// `BinaryHeap` ordered by `(time, insertion seq)` on every pop.
    #[test]
    fn matches_heap_model_on_random_workloads() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Seeded xorshift: deterministic, no external crates.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };

        let mut q = EventQueue::new();
        let mut model: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..5_000 {
            let r = rng();
            if r % 3 != 0 || model.is_empty() {
                // Schedule at now + jittered delay; ~1 in 8 far-future.
                let delay = if r % 8 == 0 {
                    2048 + (r >> 8) % 10_000
                } else {
                    (r >> 8) % 600
                };
                let t = now + delay;
                let m = (r >> 40) as u32;
                q.schedule(t, test_done(m));
                model.push(Reverse((t, seq, m)));
                seq += 1;
            } else {
                let Reverse((t, _, m)) = model.pop().unwrap();
                let (qt, qe) = q.pop().expect("model non-empty");
                assert_eq!((qt, machine_of(qe)), (t, m));
                now = t;
            }
            assert_eq!(q.len(), model.len());
        }
        while let Some(Reverse((t, _, m))) = model.pop() {
            let (qt, qe) = q.pop().expect("model non-empty");
            assert_eq!((qt, machine_of(qe)), (t, m));
        }
        assert!(q.is_empty());
    }
}
