//! The event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time, in the paper's abstract "time units".
pub type SimTime = u64;

/// Events processed by the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A machine finished downloading and testing a release.
    TestDone {
        /// The machine that tested.
        machine: String,
        /// The release it tested.
        release: u32,
    },
    /// The vendor finished fixing a problem.
    FixDone {
        /// The problem that was fixed.
        problem: String,
    },
}

/// A deterministic time-ordered event queue.
///
/// Events at equal times are processed in insertion order (FIFO), which
/// keeps simulations reproducible.
///
/// Event payloads live in a slab (`store`); the heap orders only
/// `(time, seq, slot)` triples. Slots freed by [`EventQueue::pop`] are
/// recycled through a free list, so the slab's footprint is bounded by
/// the maximum number of *simultaneously pending* events rather than by
/// the total number ever scheduled — on a 100k-machine run with
/// millions of schedule/pop cycles the difference is the whole heap.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    store: Vec<Option<Event>>,
    free: Vec<usize>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let idx = match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.store[idx].is_none(), "free slot still occupied");
                self.store[idx] = Some(event);
                idx
            }
            None => {
                self.store.push(Some(event));
                self.store.len() - 1
            }
        };
        self.heap.push(Reverse((time, self.seq, idx)));
        self.seq += 1;
    }

    /// Pops the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let Reverse((time, _, idx)) = self.heap.pop()?;
        let event = self.store[idx].take().expect("event already taken");
        self.free.push(idx);
        Some((time, event))
    }

    /// Number of slab slots currently allocated (pending + recyclable).
    ///
    /// Exposed for diagnostics and the slot-reuse regression test; the
    /// invariant is `store_slots() <= ` peak [`EventQueue::len`].
    pub fn store_slots(&self) -> usize {
        self.store.len()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_done(m: &str) -> Event {
        Event::TestDone {
            machine: m.into(),
            release: 0,
        }
    }

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule(10, test_done("b"));
        q.schedule(5, test_done("a"));
        q.schedule(20, test_done("c"));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().0, 5);
        assert_eq!(q.pop().unwrap().0, 10);
        assert_eq!(q.pop().unwrap().0, 20);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        q.schedule(5, test_done("first"));
        q.schedule(5, test_done("second"));
        q.schedule(5, test_done("third"));
        let order: Vec<String> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TestDone { machine, .. } => machine,
                Event::FixDone { problem } => problem,
            })
            .collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn popped_slots_are_recycled() {
        // Regression test: popped events used to leave their `store`
        // slot occupied by `None` forever, so the slab grew by one slot
        // per event ever scheduled. With the free list the slab is
        // bounded by the peak number of pending events.
        let mut q = EventQueue::new();
        for round in 0..1_000u64 {
            q.schedule(round, test_done("a"));
            q.schedule(round, test_done("b"));
            let (t1, _) = q.pop().unwrap();
            let (t2, _) = q.pop().unwrap();
            assert_eq!((t1, t2), (round, round));
        }
        assert!(q.is_empty());
        assert!(
            q.store_slots() <= 2,
            "slab leaked: {} slots for 2 peak pending events",
            q.store_slots()
        );
    }

    #[test]
    fn recycled_slots_preserve_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(1, test_done("x"));
        q.pop().unwrap();
        // These reuse the freed slot; FIFO order must still hold.
        q.schedule(5, test_done("first"));
        q.schedule(5, test_done("second"));
        let order: Vec<String> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TestDone { machine, .. } => machine,
                Event::FixDone { problem } => problem,
            })
            .collect();
        assert_eq!(order, vec!["first", "second"]);
    }

    #[test]
    fn mixed_event_kinds() {
        let mut q = EventQueue::new();
        q.schedule(
            100,
            Event::FixDone {
                problem: "p".into(),
            },
        );
        q.schedule(15, test_done("m"));
        assert!(matches!(q.pop().unwrap().1, Event::TestDone { .. }));
        assert!(matches!(q.pop().unwrap().1, Event::FixDone { .. }));
    }
}
