//! Discrete-event simulation of staged deployment (paper §4.3.1).
//!
//! The paper evaluates its deployment protocols with an event-driven
//! simulator whose inputs are the number and sizes of clusters, the
//! clustering quality, representatives per cluster, problem placement,
//! and the times to download, test, and fix an upgrade. This crate is
//! that simulator: a calendar (bucket) event queue ([`engine`]) drives
//! the *real* protocol implementations from `mirage-deploy` against a
//! [`scenario`](ScenarioBuilder), while [`metrics`] collects per-machine
//! pass times, per-cluster latency CDFs, and the upgrade overhead (number
//! of machines that tested a faulty upgrade).
//!
//! The data plane is fully interned: events are small `Copy` values
//! over dense [`mirage_deploy::MachineId`]/[`mirage_deploy::ProblemId`]
//! ids, and the inner loop is allocation free. The pre-interning
//! string-keyed driver is retained under [`runner::reference`] for
//! equivalence tests and benchmarks.
//!
//! The vendor model matches the paper's: each distinct problem takes
//! `fix_time` to debug; fixes are worked on one at a time in report
//! order; each completed fix ships as a new release which failed machines
//! re-test.
//!
//! A scenario built with [`ScenarioBuilder::with_urr`] additionally
//! deposits every vendor-received outcome into a shared
//! [`mirage_report::Urr`] through the buffered, fully interned
//! [`urr_sink`] bridge, so a simulation run leaves behind a queryable
//! Upgrade Report Repository (paper §3.4 meets §4.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod engine;
pub mod faults;
pub mod metrics;
pub mod parallel;
pub mod rollout;
pub mod runner;
pub mod scenario;
pub mod urr_sink;

pub use engine::{Event, EventQueue, SimTime};
pub use faults::{FaultPlan, FaultRng, FaultSpec, RngLanes};
pub use metrics::{latency_cdf, ClusterLatency, SimMetrics};
pub use parallel::{
    resolve_workers, run_parallel, run_parallel_auto, run_parallel_in, run_parallel_with_telemetry,
    SimArena, MAX_WORKERS,
};
pub use rollout::{run_rollout, run_rollout_with_telemetry};
pub use runner::{run, run_with_telemetry, Simulation};
pub use scenario::{Scenario, ScenarioBuilder, Timings};
pub use urr_sink::UrrSink;
