//! Simulator → Upgrade Report Repository wiring.
//!
//! When a scenario is built with [`crate::ScenarioBuilder::with_urr`],
//! every test outcome the vendor *receives* is also deposited into the
//! attached [`mirage_report::Urr`] as a structured report, so a
//! million-machine deployment run produces a queryable repository the
//! vendor can interrogate afterwards (top-k failure groups, per-cluster
//! failure rates, signature drill-downs).
//!
//! The sink speaks the repository's fully interned batch protocol: the
//! fleet's machine names, the scenario's problem names (which double as
//! failure signatures), and the `("upgrade", "r{n}")` release pairs are
//! interned **once** at construction / first sight, and the simulation
//! loop then accumulates `Copy` [`InternedReport`] records that are
//! flushed through [`mirage_report::Urr::deposit_interned_batch`] every
//! `BATCH` records (and once at run end). The simulator's inner loop
//! therefore never allocates a string for the repository.
//!
//! The sink is strictly observational: it is consulted only where the
//! vendor already handles a received report, deposits nothing into the
//! simulation, and when no repository is attached the driver carries a
//! `None` and the hot loop is bit-identical to the unwired simulator
//! (the 48-case reference-equivalence properties run with the knob
//! disabled).

use std::sync::Arc;

use mirage_deploy::{MachineId, ProblemId};
use mirage_report::{
    DurableUrr, InternedOutcome, InternedReport, MachineRef, ReleaseId, SigId, Urr,
};

use crate::scenario::Scenario;

/// Records per flush batch. Large enough to amortise shard locking,
/// small enough to keep the buffer cache-resident.
const BATCH: usize = 4096;

/// Buffered, pre-interned bridge from the simulation loop to a shared
/// [`Urr`].
#[derive(Debug)]
pub struct UrrSink {
    urr: Arc<Urr>,
    /// When the scenario attached a durable repository
    /// ([`crate::ScenarioBuilder::with_durable_urr`]), flushes are
    /// journaled through it instead of deposited directly, so the
    /// campaign's repository is crash-recoverable.
    durable: Option<Arc<DurableUrr>>,
    /// Repository machine ref per [`MachineId`] (plan order).
    machine_refs: Vec<MachineRef>,
    /// Cluster id per [`MachineId`] (plan order).
    machine_cluster: Vec<u32>,
    /// Repository signature per [`ProblemId`].
    sig_ids: Vec<SigId>,
    /// Repository release per simulated release number (grown lazily as
    /// fixes ship).
    release_ids: Vec<ReleaseId>,
    /// Interned `("upgrade", "prior")` release for rollback
    /// confirmations (the `PRIOR_RELEASE` sentinel), created on first
    /// sight so rollback-free runs never intern it.
    prior_release_id: Option<ReleaseId>,
    buf: Vec<InternedReport>,
}

impl UrrSink {
    /// Builds a sink for `scenario`, bulk-interning the fleet's names,
    /// problem signatures, and the initial release.
    pub fn new(scenario: &Scenario, urr: Arc<Urr>) -> Self {
        let plan = &scenario.plan;
        let n = scenario.machine_count();
        let machine_refs =
            urr.intern_machines((0..n).map(|i| plan.machine_name(MachineId(i as u32))));
        let mut machine_cluster = vec![0u32; n];
        for cluster in &plan.clusters {
            for m in &cluster.members {
                machine_cluster[m.index()] = cluster.id as u32;
            }
        }
        let sig_ids = (0..scenario.problems.len())
            .map(|p| urr.intern_signature(scenario.problems.name(ProblemId(p as u16))))
            .collect();
        let release_ids = vec![urr.intern_release("upgrade", "r0")];
        UrrSink {
            urr,
            durable: scenario.durable.clone(),
            machine_refs,
            machine_cluster,
            sig_ids,
            release_ids,
            prior_release_id: None,
            buf: Vec::with_capacity(BATCH),
        }
    }

    /// The repository release for simulated release number `release`.
    /// The `PRIOR_RELEASE` rollback sentinel (`u32::MAX`) maps to a
    /// dedicated `("upgrade", "prior")` release rather than growing the
    /// dense table to it.
    fn release_id(&mut self, release: u32) -> ReleaseId {
        if release == u32::MAX {
            return *self
                .prior_release_id
                .get_or_insert_with(|| self.urr.intern_release("upgrade", "prior"));
        }
        while self.release_ids.len() <= release as usize {
            let version = format!("r{}", self.release_ids.len());
            self.release_ids
                .push(self.urr.intern_release("upgrade", &version));
        }
        self.release_ids[release as usize]
    }

    /// Records one vendor-received outcome; `problem` is `None` for a
    /// pass. Flushes when the batch fills.
    pub fn record(&mut self, machine: MachineId, release: u32, problem: Option<ProblemId>) {
        let release = self.release_id(release);
        let outcome = match problem {
            None => InternedOutcome::Success,
            Some(p) => InternedOutcome::Failure(self.sig_ids[p.index()]),
        };
        self.buf.push(InternedReport {
            machine: self.machine_refs[machine.index()],
            cluster: self.machine_cluster[machine.index()],
            release,
            outcome,
        });
        if self.buf.len() >= BATCH {
            self.flush();
        }
    }

    /// Deposits any buffered records — journaled through the durable
    /// layer when the scenario attached one.
    ///
    /// # Panics
    ///
    /// Panics if a durable repository's backing store fails (a
    /// simulation cannot meaningfully continue once its journal is
    /// gone; the in-memory backend is infallible).
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            match &self.durable {
                Some(durable) => {
                    durable
                        .deposit_interned_batch(&self.buf)
                        .expect("urr journal write failed");
                }
                None => {
                    self.urr.deposit_interned_batch(&self.buf);
                }
            }
            self.buf.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioBuilder;

    #[test]
    fn sink_interns_fleet_and_batches_deposits() {
        let urr = Arc::new(Urr::with_shards(2));
        let scenario = ScenarioBuilder::new()
            .clusters(2, 3, 1)
            .problem_in_clusters("p", &[1])
            .build();
        let mut sink = UrrSink::new(&scenario, Arc::clone(&urr));
        let p = scenario.problems.id("p").unwrap();
        sink.record(MachineId(0), 0, None);
        sink.record(MachineId(3), 0, Some(p));
        sink.record(MachineId(4), 1, Some(p));
        assert_eq!(urr.stats().total, 0, "buffered until flush");
        sink.flush();
        let stats = urr.stats();
        assert_eq!((stats.successes, stats.failures), (1, 2));
        let groups = urr.failure_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].signature, "p");
        assert_eq!(groups[0].clusters, vec![1]);
        assert_eq!(groups[0].machines, vec!["c01-m00000", "c01-m00001"]);
        let summaries = urr.release_summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].version, "r0");
        assert_eq!(summaries[1].version, "r1");
        // Flushing twice is a no-op.
        sink.flush();
        assert_eq!(urr.stats().total, 3);
    }
}
