//! The retained string-keyed simulation driver.
//!
//! This module preserves the pre-interning data plane end to end: a
//! `BinaryHeap`-plus-slab event queue moving `String`-payload events,
//! a driver whose per-machine state lives in `BTreeMap<String, _>`, and
//! the string-keyed protocols from [`mirage_deploy::reference`]. It
//! exists for two jobs:
//!
//! 1. **Equivalence.** [`run_reference`] converts its name-keyed
//!    results into the same id-indexed [`SimMetrics`] the fast driver
//!    produces, so seeded property tests can `assert_eq!` the two
//!    drivers bit for bit across random scenarios and protocols.
//! 2. **Benchmarking.** `repro sim-perf` measures both drivers on the
//!    same scenarios; the committed `BENCH_sim.json` quantifies what
//!    the interned data plane buys.
//!
//! Nothing here is on any production path — keep it boring and keep it
//! byte-for-byte faithful to the original implementation.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use mirage_deploy::reference::{NamedCommand, NamedOutcome, NamedPlan, NamedProtocol, NamedReport};
use mirage_deploy::Release;

use crate::engine::SimTime;
use crate::metrics::SimMetrics;
use crate::scenario::Scenario;

/// Events processed by the reference simulation (string payloads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NamedEvent {
    /// A machine finished downloading and testing a release.
    TestDone {
        /// The machine that tested.
        machine: String,
        /// The release it tested.
        release: u32,
    },
    /// The vendor finished fixing a problem.
    FixDone {
        /// The problem that was fixed.
        problem: String,
    },
}

/// The original deterministic time-ordered event queue: a
/// `BinaryHeap` over `(time, seq, slot)` triples with event payloads
/// in a free-listed slab.
///
/// Events at equal times are processed in insertion order (FIFO), which
/// keeps simulations reproducible — the calendar queue in
/// [`crate::engine`] preserves exactly this contract.
#[derive(Debug, Default)]
pub struct HeapEventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    store: Vec<Option<NamedEvent>>,
    free: Vec<usize>,
    seq: u64,
}

impl HeapEventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: NamedEvent) {
        let idx = match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.store[idx].is_none(), "free slot still occupied");
                self.store[idx] = Some(event);
                idx
            }
            None => {
                self.store.push(Some(event));
                self.store.len() - 1
            }
        };
        self.heap.push(Reverse((time, self.seq, idx)));
        self.seq += 1;
    }

    /// Pops the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, NamedEvent)> {
        let Reverse((time, _, idx)) = self.heap.pop()?;
        let event = self.store[idx].take().expect("event already taken");
        self.free.push(idx);
        Some((time, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A string-keyed view of a [`Scenario`], as the original driver
/// consumed it.
#[derive(Debug, Clone)]
pub struct NamedScenario {
    /// String-keyed plan for the reference protocols.
    pub plan: NamedPlan,
    /// Machine name → problem name (absent = healthy).
    pub machine_problem: BTreeMap<String, String>,
    /// Machine name → offline horizon.
    pub offline_until: BTreeMap<String, SimTime>,
    /// Machines whose testing misses their problem.
    pub missed_detection: BTreeSet<String>,
    /// Time constants.
    pub timings: crate::scenario::Timings,
    /// Advancement threshold.
    pub threshold: f64,
    /// The interned scenario this view was derived from, kept so the
    /// final metrics can be re-keyed by dense ids.
    source: Scenario,
}

impl NamedScenario {
    /// Renders an interned scenario into the string-keyed shape.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        let plan = NamedPlan::from_plan(&scenario.plan);
        let mut machine_problem = BTreeMap::new();
        let mut offline_until = BTreeMap::new();
        let mut missed_detection = BTreeSet::new();
        for id in scenario.plan.machines.ids() {
            let name = scenario.plan.machine_name(id);
            if let Some(p) = scenario.machine_problem[id.index()] {
                machine_problem.insert(name.to_string(), scenario.problems.name(p).to_string());
            }
            let until = scenario.offline_until[id.index()];
            if until > 0 {
                offline_until.insert(name.to_string(), until);
            }
            if scenario.missed_detection.contains(id) {
                missed_detection.insert(name.to_string());
            }
        }
        NamedScenario {
            plan,
            machine_problem,
            offline_until,
            missed_detection,
            timings: scenario.timings,
            threshold: scenario.threshold,
            source: scenario.clone(),
        }
    }
}

/// The original string-keyed driver state.
struct ReferenceSimulation<'a> {
    scenario: &'a NamedScenario,
    queue: HeapEventQueue,
    now: SimTime,
    fixed_by_release: Vec<BTreeSet<String>>,
    fix_queue: VecDeque<String>,
    fixing: Option<String>,
    known_problems: BTreeSet<String>,
    machine_pass_time: BTreeMap<String, SimTime>,
    failed_tests: usize,
    total_tests: usize,
    releases_shipped: u32,
    completion_time: Option<SimTime>,
    problems_discovered: Vec<String>,
    escaped_problems: usize,
}

impl<'a> ReferenceSimulation<'a> {
    fn new(scenario: &'a NamedScenario) -> Self {
        ReferenceSimulation {
            scenario,
            queue: HeapEventQueue::new(),
            now: 0,
            fixed_by_release: vec![BTreeSet::new()],
            fix_queue: VecDeque::new(),
            fixing: None,
            known_problems: BTreeSet::new(),
            machine_pass_time: BTreeMap::new(),
            failed_tests: 0,
            total_tests: 0,
            releases_shipped: 0,
            completion_time: None,
            problems_discovered: Vec::new(),
            escaped_problems: 0,
        }
    }

    fn latest_release(&self) -> Release {
        Release((self.fixed_by_release.len() - 1) as u32)
    }

    fn passes(&self, machine: &str, release: u32) -> bool {
        match self.scenario.machine_problem.get(machine) {
            None => true,
            Some(problem) => self.fixed_by_release[release as usize].contains(problem),
        }
    }

    fn exec(&mut self, commands: Vec<NamedCommand>) {
        for cmd in commands {
            match cmd {
                NamedCommand::Notify { machines, release } => {
                    for m in machines {
                        self.total_tests += 1;
                        let start = self
                            .scenario
                            .offline_until
                            .get(&m)
                            .copied()
                            .unwrap_or(0)
                            .max(self.now);
                        self.queue.schedule(
                            start + self.scenario.timings.machine_cycle(),
                            NamedEvent::TestDone {
                                machine: m,
                                release: release.0,
                            },
                        );
                    }
                }
                NamedCommand::Complete => {
                    if self.completion_time.is_none() {
                        self.completion_time = Some(self.now);
                    }
                }
            }
        }
    }

    fn start_next_fix(&mut self) {
        if self.fixing.is_none() {
            if let Some(problem) = self.fix_queue.pop_front() {
                self.queue.schedule(
                    self.now + self.scenario.timings.fix,
                    NamedEvent::FixDone {
                        problem: problem.clone(),
                    },
                );
                self.fixing = Some(problem);
            }
        }
    }

    fn handle_test_done(
        &mut self,
        protocol: &mut dyn NamedProtocol,
        machine: String,
        release: u32,
    ) {
        let mut passed = self.passes(&machine, release);
        if !passed && self.scenario.missed_detection.contains(&machine) {
            passed = true;
            self.escaped_problems += 1;
        }
        let outcome = if passed {
            self.machine_pass_time
                .entry(machine.clone())
                .or_insert(self.now);
            NamedOutcome::Pass
        } else {
            self.failed_tests += 1;
            let problem = self.scenario.machine_problem[&machine].clone();
            if self.known_problems.insert(problem.clone()) {
                self.problems_discovered.push(problem.clone());
                self.fix_queue.push_back(problem.clone());
                self.start_next_fix();
            }
            NamedOutcome::Fail { problem }
        };
        let report = NamedReport {
            machine,
            release: Release(release),
            outcome,
        };
        let commands = protocol.on_report(&report);
        self.exec(commands);
        if let NamedOutcome::Fail { problem } = &report.outcome {
            let latest = self.latest_release();
            if latest.0 > release && self.fixed_by_release[latest.0 as usize].contains(problem) {
                let fixed = self.fixed_by_release[latest.0 as usize].clone();
                let commands = protocol.on_release(latest, &fixed);
                self.exec(commands);
            }
        }
    }

    fn handle_fix_done(&mut self, protocol: &mut dyn NamedProtocol, problem: String) {
        debug_assert_eq!(self.fixing.as_deref(), Some(problem.as_str()));
        self.fixing = None;
        let mut fixed = self.fixed_by_release.last().cloned().unwrap_or_default();
        fixed.insert(problem);
        self.fixed_by_release.push(fixed);
        self.releases_shipped += 1;
        self.start_next_fix();
        let release = self.latest_release();
        let fixed = self.fixed_by_release[release.0 as usize].clone();
        let commands = protocol.on_release(release, &fixed);
        self.exec(commands);
    }

    fn run(mut self, protocol: &mut dyn NamedProtocol) -> SimMetrics {
        let commands = protocol.start();
        self.exec(commands);
        while let Some((time, event)) = self.queue.pop() {
            self.now = time;
            match event {
                NamedEvent::TestDone { machine, release } => {
                    self.handle_test_done(protocol, machine, release)
                }
                NamedEvent::FixDone { problem } => self.handle_fix_done(protocol, problem),
            }
        }
        self.into_metrics()
    }

    /// Re-keys the name-indexed results by dense ids so callers can
    /// `assert_eq!` against the fast driver's [`SimMetrics`].
    fn into_metrics(self) -> SimMetrics {
        let source = &self.scenario.source;
        let mut machine_pass_time = vec![None; source.plan.machine_count()];
        for (name, t) in &self.machine_pass_time {
            let id = source
                .plan
                .machine_id(name)
                .expect("reference driver produced a machine outside the plan");
            machine_pass_time[id.index()] = Some(*t);
        }
        let problems_discovered = self
            .problems_discovered
            .iter()
            .map(|p| {
                source
                    .problems
                    .id(p)
                    .expect("reference driver discovered a problem outside the scenario")
            })
            .collect();
        SimMetrics {
            machine_pass_time,
            failed_tests: self.failed_tests,
            total_tests: self.total_tests,
            releases_shipped: self.releases_shipped,
            completion_time: self.completion_time,
            problems_discovered,
            escaped_problems: self.escaped_problems,
            // The reference driver models a reliable channel only; the
            // fault counters stay zero, which is exactly what the
            // zero-fault equivalence property asserts against.
            ..SimMetrics::default()
        }
    }
}

/// Runs a string-keyed protocol against a string-keyed scenario with
/// the original heap-queue driver, returning id-indexed [`SimMetrics`]
/// for direct comparison with [`crate::runner::run`].
pub fn run_reference(scenario: &NamedScenario, protocol: &mut dyn NamedProtocol) -> SimMetrics {
    ReferenceSimulation::new(scenario).run(protocol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use crate::scenario::ScenarioBuilder;
    use mirage_deploy::reference::{NamedBalanced, NamedFrontLoading, NamedNoStaging};
    use mirage_deploy::{Balanced, FrontLoading, NoStaging};

    fn small_scenario() -> Scenario {
        ScenarioBuilder::new()
            .clusters(4, 3, 1)
            .problem_in_clusters("p", &[2])
            .build()
    }

    #[test]
    fn heap_queue_orders_and_fifos() {
        let mut q = HeapEventQueue::new();
        let td = |m: &str| NamedEvent::TestDone {
            machine: m.into(),
            release: 0,
        };
        q.schedule(10, td("late"));
        q.schedule(5, td("first"));
        q.schedule(5, td("second"));
        assert_eq!(q.len(), 3);
        let order: Vec<(SimTime, String)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                NamedEvent::TestDone { machine, .. } => (t, machine),
                NamedEvent::FixDone { problem } => (t, problem),
            })
            .collect();
        assert_eq!(
            order,
            vec![
                (5, "first".to_string()),
                (5, "second".to_string()),
                (10, "late".to_string())
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn named_scenario_round_trips_knobs() {
        let s = ScenarioBuilder::new()
            .clusters(2, 4, 1)
            .problem_in_clusters("p", &[1])
            .offline_machines(0, 1, 200)
            .missed_detections(1, 1)
            .threshold(0.75)
            .build();
        let named = NamedScenario::from_scenario(&s);
        assert_eq!(named.plan.machine_count(), 8);
        assert_eq!(named.machine_problem.len(), 4);
        assert_eq!(named.offline_until.len(), 1);
        assert_eq!(named.missed_detection.len(), 1);
        assert_eq!(named.threshold, 0.75);
    }

    /// The reference driver + reference protocols reproduce the fast
    /// driver's metrics exactly on the canonical small scenario.
    #[test]
    fn reference_driver_matches_fast_driver() {
        let s = small_scenario();
        let named = NamedScenario::from_scenario(&s);

        let fast = runner::run(&s, &mut NoStaging::new(s.plan.clone()));
        let slow = run_reference(&named, &mut NamedNoStaging::new(named.plan.clone()));
        assert_eq!(fast, slow, "NoStaging");

        let fast = runner::run(&s, &mut Balanced::new(s.plan.clone(), 1.0));
        let slow = run_reference(&named, &mut NamedBalanced::new(named.plan.clone(), 1.0));
        assert_eq!(fast, slow, "Balanced");

        let fast = runner::run(&s, &mut FrontLoading::new(s.plan.clone(), 1.0));
        let slow = run_reference(&named, &mut NamedFrontLoading::new(named.plan.clone(), 1.0));
        assert_eq!(fast, slow, "FrontLoading");
    }
}
