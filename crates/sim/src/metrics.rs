//! Simulation metrics: latency CDFs and upgrade overhead.

use std::collections::BTreeMap;

use mirage_deploy::DeployPlan;

use crate::engine::SimTime;

/// Per-cluster upgrade latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterLatency {
    /// Cluster id.
    pub cluster: usize,
    /// Time when the cluster's threshold fraction of machines had
    /// integrated the upgrade, or `None` if it never did.
    pub time: Option<SimTime>,
}

/// Aggregate results of one simulation run.
///
/// Derives `PartialEq`/`Eq` so determinism tests can assert that two
/// runs (e.g. instrumented vs uninstrumented) produced identical
/// results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimMetrics {
    /// First successful-integration time per machine.
    pub machine_pass_time: BTreeMap<String, SimTime>,
    /// Number of failed tests — the paper's *upgrade overhead* (each
    /// failure is a machine inconvenienced by a faulty upgrade).
    pub failed_tests: usize,
    /// Total tests executed (downloads + validations).
    pub total_tests: usize,
    /// Number of corrected releases the vendor shipped.
    pub releases_shipped: u32,
    /// Time the protocol reported completion (all machines passed).
    pub completion_time: Option<SimTime>,
    /// Distinct problems discovered, in discovery order.
    pub problems_discovered: Vec<String>,
    /// Faulty integrations that escaped detection (imperfect testing).
    pub escaped_problems: usize,
}

impl SimMetrics {
    /// Computes each cluster's latency: the time the threshold fraction
    /// of its members first had the upgrade integrated.
    ///
    /// This is the quantity plotted in the paper's Figures 10 and 11
    /// ("fraction of clusters" vs time); note clusters are scored against
    /// the *reference* plan even for protocols (NoStaging) that ignore
    /// cluster structure.
    pub fn cluster_latencies(&self, plan: &DeployPlan, threshold: f64) -> Vec<ClusterLatency> {
        plan.clusters
            .iter()
            .map(|c| {
                let needed = ((c.members.len() as f64) * threshold).ceil().max(1.0) as usize;
                let mut times: Vec<SimTime> = c
                    .members
                    .iter()
                    .filter_map(|m| self.machine_pass_time.get(m).copied())
                    .collect();
                times.sort_unstable();
                ClusterLatency {
                    cluster: c.id,
                    time: times.get(needed - 1).copied(),
                }
            })
            .collect()
    }
}

impl SimMetrics {
    /// Per-*machine* latency CDF points `(time, fraction of machines)`.
    ///
    /// The paper plots per-cluster latency because its clusters are all
    /// equal-sized; with heterogeneous clusters the per-machine CDF is
    /// the fairer view. `total` is the fleet size (machines that never
    /// passed keep the CDF below 1.0).
    pub fn machine_latency_cdf(&self, total: usize) -> Vec<(SimTime, f64)> {
        if total == 0 {
            return Vec::new();
        }
        let mut times: Vec<SimTime> = self.machine_pass_time.values().copied().collect();
        times.sort_unstable();
        let mut points: Vec<(SimTime, f64)> = Vec::new();
        for (i, t) in times.iter().enumerate() {
            let fraction = (i + 1) as f64 / total as f64;
            if let Some((lt, lf)) = points.last_mut() {
                if *lt == *t {
                    *lf = fraction;
                    continue;
                }
            }
            points.push((*t, fraction));
        }
        points
    }
}

/// Turns cluster latencies into CDF points `(time, fraction)`.
///
/// Clusters that never completed are omitted (the CDF then tops out
/// below 1.0).
pub fn latency_cdf(latencies: &[ClusterLatency]) -> Vec<(SimTime, f64)> {
    let total = latencies.len();
    if total == 0 {
        return Vec::new();
    }
    let mut times: Vec<SimTime> = latencies.iter().filter_map(|l| l.time).collect();
    times.sort_unstable();
    let mut points = Vec::new();
    for (i, t) in times.iter().enumerate() {
        let fraction = (i + 1) as f64 / total as f64;
        // Collapse duplicate timestamps to the highest fraction.
        if let Some(last) = points.last_mut() {
            let (lt, lf): &mut (SimTime, f64) = last;
            if *lt == *t {
                *lf = fraction;
                continue;
            }
        }
        points.push((*t, fraction));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_deploy::DeployCluster;

    fn plan2() -> DeployPlan {
        DeployPlan {
            clusters: vec![
                DeployCluster {
                    id: 0,
                    members: vec!["a".into(), "b".into()],
                    reps: vec!["a".into()],
                    distance: 0.0,
                },
                DeployCluster {
                    id: 1,
                    members: vec!["c".into(), "d".into()],
                    reps: vec!["c".into()],
                    distance: 1.0,
                },
            ],
        }
    }

    #[test]
    fn cluster_latency_takes_threshold_member() {
        let mut m = SimMetrics::default();
        m.machine_pass_time.insert("a".into(), 10);
        m.machine_pass_time.insert("b".into(), 30);
        m.machine_pass_time.insert("c".into(), 20);
        // d never passed.
        let lat = m.cluster_latencies(&plan2(), 1.0);
        assert_eq!(lat[0].time, Some(30));
        assert_eq!(lat[1].time, None, "cluster 1 incomplete at threshold 1.0");
        let lat = m.cluster_latencies(&plan2(), 0.5);
        assert_eq!(lat[0].time, Some(10));
        assert_eq!(lat[1].time, Some(20));
    }

    #[test]
    fn machine_cdf_counts_fleet_fraction() {
        let mut m = SimMetrics::default();
        m.machine_pass_time.insert("a".into(), 15);
        m.machine_pass_time.insert("b".into(), 15);
        m.machine_pass_time.insert("c".into(), 500);
        // Fleet of 4; one machine never passed.
        let cdf = m.machine_latency_cdf(4);
        assert_eq!(cdf, vec![(15, 0.5), (500, 0.75)]);
        assert!(m.machine_latency_cdf(0).is_empty());
    }

    #[test]
    fn cdf_shape() {
        let lat = vec![
            ClusterLatency {
                cluster: 0,
                time: Some(10),
            },
            ClusterLatency {
                cluster: 1,
                time: Some(10),
            },
            ClusterLatency {
                cluster: 2,
                time: Some(40),
            },
            ClusterLatency {
                cluster: 3,
                time: None,
            },
        ];
        let cdf = latency_cdf(&lat);
        assert_eq!(cdf, vec![(10, 0.5), (40, 0.75)]);
        assert!(latency_cdf(&[]).is_empty());
    }
}
