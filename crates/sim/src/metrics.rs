//! Simulation metrics: latency CDFs and upgrade overhead.
//!
//! Metrics are id-indexed: per-machine pass times live in a dense
//! `Vec<Option<SimTime>>` keyed by [`MachineId`], and discovered
//! problems are [`ProblemId`]s. Name-keyed views are available at the
//! boundary via the `*_named` helpers, which take the plan/table that
//! owns the names.

use std::collections::BTreeMap;

use mirage_deploy::{DeployPlan, MachineId, ProblemId, ProblemTable};

use crate::engine::SimTime;

/// Per-cluster upgrade latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterLatency {
    /// Cluster id.
    pub cluster: usize,
    /// Time when the cluster's threshold fraction of machines had
    /// integrated the upgrade, or `None` if it never did.
    pub time: Option<SimTime>,
}

/// Aggregate results of one simulation run.
///
/// Derives `PartialEq`/`Eq` so determinism and reference-equivalence
/// tests can assert that two runs (e.g. instrumented vs uninstrumented,
/// or interned vs string-keyed reference driver) produced identical
/// results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimMetrics {
    /// First successful-integration time per machine, indexed by
    /// [`MachineId`] (`None` = the machine never passed).
    pub machine_pass_time: Vec<Option<SimTime>>,
    /// Number of failed tests — the paper's *upgrade overhead* (each
    /// failure is a machine inconvenienced by a faulty upgrade).
    pub failed_tests: usize,
    /// Total tests executed (downloads + validations).
    pub total_tests: usize,
    /// Number of corrected releases the vendor shipped.
    pub releases_shipped: u32,
    /// Time the protocol reported completion (all machines passed).
    pub completion_time: Option<SimTime>,
    /// Distinct problems discovered, in discovery order.
    pub problems_discovered: Vec<ProblemId>,
    /// Faulty integrations that escaped detection (imperfect testing).
    pub escaped_problems: usize,
    /// Messages (notifications or reports) dropped by the fault
    /// injector. Zero on the reliable-channel fast path.
    pub msgs_dropped: u64,
    /// Messages duplicated in flight by the fault injector.
    pub msgs_duplicated: u64,
    /// Re-notifications the vendor sent after missing a report.
    pub retries_sent: u64,
    /// Machines the protocol waived after its rep-timeout expired.
    pub rep_timeouts: u64,
    /// Revert-confirmation time per machine after a rollback, indexed
    /// by [`MachineId`]. Empty unless a rollout controller rolled the
    /// campaign back (so runs without rollback compare bit-identical
    /// to pre-rollout metrics).
    pub machine_revert_time: Vec<Option<SimTime>>,
}

impl SimMetrics {
    /// Number of machines that passed at least once.
    pub fn passed_count(&self) -> usize {
        self.machine_pass_time
            .iter()
            .filter(|t| t.is_some())
            .count()
    }

    /// Number of machines whose revert to the prior release was
    /// confirmed after a rollback.
    pub fn reverted_count(&self) -> usize {
        self.machine_revert_time
            .iter()
            .filter(|t| t.is_some())
            .count()
    }

    /// True when every machine in a fleet of `total` passed at least
    /// once. Under fault injection this is the convergence criterion:
    /// churned machines count once they rejoin and pass, waived
    /// machines only if a late report eventually lands.
    pub fn converged(&self, total: usize) -> bool {
        self.passed_count() == total
    }

    /// Pass time of a single machine id, if it passed.
    #[inline]
    pub fn pass_time(&self, machine: MachineId) -> Option<SimTime> {
        self.machine_pass_time
            .get(machine.index())
            .copied()
            .flatten()
    }

    /// Pass time of a named machine (boundary helper).
    pub fn pass_time_named(&self, plan: &DeployPlan, machine: &str) -> Option<SimTime> {
        self.pass_time(plan.machine_id(machine)?)
    }

    /// Name-keyed view of the pass times (boundary helper for
    /// rendering and tests).
    pub fn machine_pass_time_named(&self, plan: &DeployPlan) -> BTreeMap<String, SimTime> {
        self.machine_pass_time
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (plan.machine_name(MachineId(i as u32)).to_string(), t)))
            .collect()
    }

    /// Discovered problem names in discovery order (boundary helper).
    pub fn problems_discovered_named(&self, problems: &ProblemTable) -> Vec<String> {
        self.problems_discovered
            .iter()
            .map(|&p| problems.name(p).to_string())
            .collect()
    }

    /// The latest pass time across the fleet, if any machine passed.
    pub fn max_pass_time(&self) -> Option<SimTime> {
        self.machine_pass_time.iter().flatten().copied().max()
    }

    /// Computes each cluster's latency: the time the threshold fraction
    /// of its members first had the upgrade integrated.
    ///
    /// This is the quantity plotted in the paper's Figures 10 and 11
    /// ("fraction of clusters" vs time); note clusters are scored against
    /// the *reference* plan even for protocols (NoStaging) that ignore
    /// cluster structure.
    pub fn cluster_latencies(&self, plan: &DeployPlan, threshold: f64) -> Vec<ClusterLatency> {
        plan.clusters
            .iter()
            .map(|c| {
                let needed = ((c.members.len() as f64) * threshold).ceil().max(1.0) as usize;
                let mut times: Vec<SimTime> = c
                    .members
                    .iter()
                    .filter_map(|&m| self.pass_time(m))
                    .collect();
                times.sort_unstable();
                ClusterLatency {
                    cluster: c.id,
                    time: times.get(needed - 1).copied(),
                }
            })
            .collect()
    }

    /// Per-*machine* latency CDF points `(time, fraction of machines)`.
    ///
    /// The paper plots per-cluster latency because its clusters are all
    /// equal-sized; with heterogeneous clusters the per-machine CDF is
    /// the fairer view. `total` is the fleet size (machines that never
    /// passed keep the CDF below 1.0).
    pub fn machine_latency_cdf(&self, total: usize) -> Vec<(SimTime, f64)> {
        if total == 0 {
            return Vec::new();
        }
        let mut times: Vec<SimTime> = self.machine_pass_time.iter().flatten().copied().collect();
        times.sort_unstable();
        let mut points: Vec<(SimTime, f64)> = Vec::new();
        for (i, t) in times.iter().enumerate() {
            let fraction = (i + 1) as f64 / total as f64;
            if let Some((lt, lf)) = points.last_mut() {
                if *lt == *t {
                    *lf = fraction;
                    continue;
                }
            }
            points.push((*t, fraction));
        }
        points
    }
}

/// Turns cluster latencies into CDF points `(time, fraction)`.
///
/// Clusters that never completed are omitted (the CDF then tops out
/// below 1.0).
pub fn latency_cdf(latencies: &[ClusterLatency]) -> Vec<(SimTime, f64)> {
    let total = latencies.len();
    if total == 0 {
        return Vec::new();
    }
    let mut times: Vec<SimTime> = latencies.iter().filter_map(|l| l.time).collect();
    times.sort_unstable();
    let mut points = Vec::new();
    for (i, t) in times.iter().enumerate() {
        let fraction = (i + 1) as f64 / total as f64;
        // Collapse duplicate timestamps to the highest fraction.
        if let Some(last) = points.last_mut() {
            let (lt, lf): &mut (SimTime, f64) = last;
            if *lt == *t {
                *lf = fraction;
                continue;
            }
        }
        points.push((*t, fraction));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan2() -> DeployPlan {
        DeployPlan::from_named([
            (["a", "b"].as_slice(), 1usize, 0.0),
            (["c", "d"].as_slice(), 1usize, 1.0),
        ])
    }

    /// Metrics with pass times set for the named machines.
    fn metrics(plan: &DeployPlan, passes: &[(&str, SimTime)]) -> SimMetrics {
        let mut m = SimMetrics {
            machine_pass_time: vec![None; plan.machine_count()],
            ..SimMetrics::default()
        };
        for (name, t) in passes {
            let id = plan.machine_id(name).unwrap();
            m.machine_pass_time[id.index()] = Some(*t);
        }
        m
    }

    #[test]
    fn cluster_latency_takes_threshold_member() {
        let p = plan2();
        let m = metrics(&p, &[("a", 10), ("b", 30), ("c", 20)]);
        // d never passed.
        let lat = m.cluster_latencies(&p, 1.0);
        assert_eq!(lat[0].time, Some(30));
        assert_eq!(lat[1].time, None, "cluster 1 incomplete at threshold 1.0");
        let lat = m.cluster_latencies(&p, 0.5);
        assert_eq!(lat[0].time, Some(10));
        assert_eq!(lat[1].time, Some(20));
    }

    #[test]
    fn cluster_latency_of_empty_cluster_is_none() {
        // An empty cluster can never reach any threshold: the `needed`
        // floor of one member has nobody to satisfy it.
        let p =
            DeployPlan::from_named([(vec!["a"], 1usize, 0.0), (Vec::<&str>::new(), 1usize, 1.0)]);
        let m = metrics(&p, &[("a", 5)]);
        let lat = m.cluster_latencies(&p, 1.0);
        assert_eq!(lat[0].time, Some(5));
        assert_eq!(lat[1].time, None, "empty cluster never completes");
        let lat = m.cluster_latencies(&p, 0.0);
        assert_eq!(lat[1].time, None, "even at threshold 0.0 (floored to one)");
    }

    #[test]
    fn cluster_latency_with_never_passing_machine() {
        // Threshold 1.0 requires everyone; a single never-passing member
        // holds the whole cluster at None forever.
        let p = DeployPlan::from_named([(["a", "b", "c"], 1usize, 0.0)]);
        let m = metrics(&p, &[("a", 10), ("c", 40)]);
        assert_eq!(m.cluster_latencies(&p, 1.0)[0].time, None);
        // But lower thresholds are satisfied by the passers alone.
        assert_eq!(m.cluster_latencies(&p, 0.5)[0].time, Some(40));
        assert_eq!(m.cluster_latencies(&p, 0.25)[0].time, Some(10));
    }

    #[test]
    fn cluster_latency_threshold_ceil() {
        // 4 members at threshold 0.75 → ceil(3.0) = 3 needed; at 1.0 →
        // 4 needed. The ceil keeps fractional thresholds conservative.
        let p = DeployPlan::from_named([(["a", "b", "c", "d"], 1usize, 0.0)]);
        let m = metrics(&p, &[("a", 10), ("b", 20), ("c", 30), ("d", 100)]);
        assert_eq!(m.cluster_latencies(&p, 0.75)[0].time, Some(30));
        assert_eq!(m.cluster_latencies(&p, 1.0)[0].time, Some(100));
        // 0.70 of 4 = 2.8 → ceil 3: same as 0.75.
        assert_eq!(m.cluster_latencies(&p, 0.70)[0].time, Some(30));
    }

    #[test]
    fn machine_cdf_counts_fleet_fraction() {
        let p = DeployPlan::from_named([(["a", "b", "c", "d"], 1usize, 0.0)]);
        let m = metrics(&p, &[("a", 15), ("b", 15), ("c", 500)]);
        // Fleet of 4; one machine never passed.
        let cdf = m.machine_latency_cdf(4);
        assert_eq!(cdf, vec![(15, 0.5), (500, 0.75)]);
        assert!(m.machine_latency_cdf(0).is_empty());
    }

    #[test]
    fn boundary_helpers_render_names() {
        let p = plan2();
        let m = metrics(&p, &[("b", 30), ("c", 20)]);
        assert_eq!(m.passed_count(), 2);
        assert_eq!(m.pass_time_named(&p, "b"), Some(30));
        assert_eq!(m.pass_time_named(&p, "a"), None);
        assert_eq!(m.pass_time_named(&p, "zzz"), None);
        assert_eq!(m.max_pass_time(), Some(30));
        let named = m.machine_pass_time_named(&p);
        assert_eq!(named.len(), 2);
        assert_eq!(named["c"], 20);

        let mut problems = ProblemTable::new();
        let prev = problems.intern("prevalent");
        let m = SimMetrics {
            problems_discovered: vec![prev],
            ..SimMetrics::default()
        };
        assert_eq!(
            m.problems_discovered_named(&problems),
            vec!["prevalent".to_string()]
        );
    }

    #[test]
    fn cdf_shape() {
        let lat = vec![
            ClusterLatency {
                cluster: 0,
                time: Some(10),
            },
            ClusterLatency {
                cluster: 1,
                time: Some(10),
            },
            ClusterLatency {
                cluster: 2,
                time: Some(40),
            },
            ClusterLatency {
                cluster: 3,
                time: None,
            },
        ];
        let cdf = latency_cdf(&lat);
        assert_eq!(cdf, vec![(10, 0.5), (40, 0.75)]);
        assert!(latency_cdf(&[]).is_empty());
    }
}
